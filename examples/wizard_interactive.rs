//! The six-step wizard of the demo (paper Fig. 2), driven programmatically
//! with user overrides at every step:
//!
//! 1. choose sources  2. adjust matching  3. adjust duplicate definition
//! 4. confirm duplicates  5. specify resolution functions  6. browse result
//!
//! Run with: `cargo run --example wizard_interactive`

use hummer::core::{Hummer, HummerConfig, ResolutionSpec, Wizard, WizardPhase};
use hummer::engine::table;
use hummer::fusion::FunctionRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Step 1: choose sources -----------------------------------------
    let mut hummer = Hummer::new();
    hummer.repository_mut().register_table(
        "Library",
        table! {
            "Library" => ["Title", "Author", "Year"];
            ["The Trial", "Franz Kafka", 1925],
            ["The Castle", "Franz Kafka", 1926],
            ["Ulysses", "James Joyce", 1922],
        },
    )?;
    hummer.repository_mut().register_table(
        "BookShop",
        table! {
            "BookShop" => ["Book", "Writer", "Published", "Price"];
            ["The Trial", "F. Kafka", 1925, 12.99],
            ["Ulysses", "James Joyce", 1922, 18.50],
            ["Dubliners", "James Joyce", 1914, 9.99],
        },
    )?;
    println!(
        "Step 1 — sources: {:?}\n",
        hummer
            .repository()
            .list()
            .iter()
            .map(|s| s.alias.clone())
            .collect::<Vec<_>>()
    );

    let mut wizard = Wizard::start(
        hummer.repository(),
        &["Library", "BookShop"],
        HummerConfig::default(),
    )?;

    // ---- Step 2: adjust matching -----------------------------------------
    assert_eq!(wizard.phase(), WizardPhase::AdjustMatching);
    println!("Step 2 — proposed correspondences:");
    for m in wizard.match_results() {
        for c in &m.correspondences {
            println!("  {c}");
        }
    }
    // The user notices "Published" ≈ "Year" was too weak and adds it by hand.
    let adjusted = &mut wizard.match_results_mut()?[0];
    if adjusted.for_left("Year").is_none() {
        adjusted.add("Year", "Published", 1.0);
        println!("  [user] added Year ≈ Published");
    }
    let integrated = wizard.confirm_matching()?;
    println!(
        "  -> integrated table: {} rows, schema {:?}\n",
        integrated.len(),
        integrated.schema().names()
    );

    // ---- Step 3: adjust duplicate definition -------------------------------
    println!("Step 3 — duplicate definition:");
    let cfg = wizard.detector_config_mut()?;
    cfg.attributes = Some(vec!["Title".into(), "Author".into(), "Year".into()]);
    cfg.threshold = 0.75;
    cfg.unsure_threshold = 0.55;
    println!("  [user] compare on Title, Author, Year; θ = 0.75\n");
    wizard.run_detection()?;

    // ---- Step 4: confirm duplicates ---------------------------------------
    println!("Step 4 — detected duplicates:");
    let det = wizard.detection().unwrap();
    for p in &det.pairs {
        println!(
            "  sure: rows {} & {} (sim {:.3})",
            p.left, p.right, p.similarity
        );
    }
    for p in &det.unsure {
        println!(
            "  unsure: rows {} & {} (sim {:.3})",
            p.left, p.right, p.similarity
        );
    }
    // The user confirms all unsure pairs that share a title.
    let unsure: Vec<_> = wizard.detection().unwrap().unsure.clone();
    for p in unsure {
        wizard.detection_mut()?.confirm_unsure(p.left, p.right);
        println!("  [user] confirmed rows {} & {}", p.left, p.right);
    }
    wizard.confirm_duplicates()?;
    println!(
        "  -> {} distinct books\n",
        wizard.detection().unwrap().object_count()
    );

    // ---- Step 5: specify resolution functions ------------------------------
    println!("Step 5 — resolution functions:");
    wizard.set_resolution("Author", ResolutionSpec::named("longest"))?; // full names win
    wizard.set_resolution("Price", ResolutionSpec::named("min"))?; // cheapest offer
    println!("  Author: LONGEST, Price: MIN, rest: COALESCE\n");

    // ---- Step 6: browse result --------------------------------------------
    let outcome = wizard.finish(&FunctionRegistry::standard())?;
    println!("Step 6 — clean & consistent result set:");
    println!("{}", outcome.result.pretty());
    println!("Conflicts resolved: {}", outcome.conflict_count);
    for c in &outcome.sample_conflicts {
        println!(
            "  {} in cluster {}: {:?} -> {}",
            c.column, c.cluster, c.values, c.resolved
        );
    }
    Ok(())
}
