//! The disaster-registry scenario (paper §1): after the 2004 tsunami,
//! "data about damages, missing persons, hospital treatments etc. is often
//! collected multiple times (causing duplicates) at different levels of
//! detail (causing schematic heterogeneity) and with different levels of
//! accuracy (causing data conflicts). Fusing such data [...] can help speed
//! up the recovery process."
//!
//! Three registries — a field team, a hospital list, relatives' reports —
//! are fused with `MOST RECENT` status (by sighting date) and `VOTE` for
//! the village. Lineage shows which source each surviving value came from.
//!
//! Run with: `cargo run --example disaster_registry`

use hummer::core::{Hummer, ResolutionSpec};
use hummer::datagen::scenarios::disaster_registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = disaster_registry(60, 26122004);

    let mut hummer = Hummer::new();
    for s in &world.sources {
        hummer
            .repository_mut()
            .register_table(s.table.name().to_string(), s.table.clone())?;
        println!(
            "{:<16} {:>3} records, schema {:?}",
            s.table.name(),
            s.table.len(),
            s.table.schema().names()
        );
    }

    let out = hummer.fuse_sources(
        &["FieldTeam", "HospitalList", "MissingReports"],
        &[
            // Status should reflect the latest sighting.
            (
                "Status".to_string(),
                ResolutionSpec::with_args("mostrecent", vec!["LastSeen".into()]),
            ),
            // Villages are error-prone; majority wins.
            ("Village".to_string(), ResolutionSpec::named("vote")),
            // Keep the latest date itself.
            ("LastSeen".to_string(), ResolutionSpec::named("max")),
        ],
    )?;

    println!(
        "\n{} raw records fused into {} persons; {} conflicts resolved",
        out.integrated.len(),
        out.result.len(),
        out.conflict_count
    );

    let preview = hummer::engine::ops::limit(&out.result, 8);
    println!("\n{}", preview.pretty());

    // The color-coding view: provenance of each cell of the first rows.
    println!("Value lineage (first 4 persons):");
    let cols = out.result.schema().names();
    for row in 0..out.result.len().min(4) {
        let mut parts: Vec<String> = Vec::new();
        for (c, col) in cols.iter().enumerate() {
            let cell = out.lineage.cell(row, c);
            let marker = if cell.had_conflict { "*" } else { "" };
            parts.push(format!("{col}←{}{marker}", cell.color()));
        }
        println!("  row {row}: {}", parts.join("  "));
    }
    println!("(* = a conflict was resolved for this value)");

    // Score duplicate detection against the gold standard.
    let pr = hummer::datagen::cluster_pair_metrics(
        &out.detection.cluster_ids,
        &world.gold_union_entity_ids(),
    );
    println!(
        "\nduplicate detection: precision {:.2}, recall {:.2}, F1 {:.2}",
        pr.precision,
        pr.recall,
        pr.f1()
    );
    Ok(())
}
