//! Quickstart: the paper's running example (§2.1), end to end.
//!
//! Two student tables under different, unaligned schemas; one Fuse By
//! query; HumMer matches the schemas, unions the data, and resolves the
//! age conflict with `max` ("assuming students only get older").
//!
//! Run with: `cargo run --example quickstart`

use hummer::core::Hummer;
use hummer::engine::table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut hummer = Hummer::new();

    // The EE department's roster — the preferred schema.
    hummer.repository_mut().register_table(
        "EE_Student",
        table! {
            "EE_Student" => ["Name", "Age", "City"];
            ["John Smith", 24, "Berlin"],
            ["Mary Jones", 22, "Hamburg"],
            ["Peter Miller", 27, "Munich"],
        },
    )?;

    // The CS department uses different labels and column order.
    hummer.repository_mut().register_table(
        "CS_Students",
        table! {
            "CS_Students" => ["Town", "FullName", "Years"];
            ["Berlin", "John Smith", 25],
            ["Hamburg", "Mary Jones", 22],
            ["London", "Ada Lovelace", 28],
        },
    )?;

    println!("Registered sources:");
    for s in hummer.repository().list() {
        println!("  {} {:?} ({} rows)", s.alias, s.columns, s.rows);
    }

    // The paper's example query. Note it speaks only the EE schema —
    // schema matching maps FullName→Name, Years→Age, Town→City
    // automatically before execution.
    let sql = "SELECT Name, RESOLVE(Age, max), RESOLVE(City) \
               FUSE FROM EE_Student, CS_Students \
               FUSE BY (Name) \
               ORDER BY Name";
    println!("\nQuery:\n  {sql}\n");

    let out = hummer.query(sql)?;
    println!("Fused result ({} students):", out.table.len());
    println!("{}", out.table.pretty());

    if let Some(info) = &out.fusion {
        println!("Conflicts resolved: {}", info.conflict_count);
        for c in &info.sample_conflicts {
            println!(
                "  cluster {}: {} had {:?} -> resolved to {}",
                c.cluster, c.column, c.values, c.resolved
            );
        }
    }
    Ok(())
}
