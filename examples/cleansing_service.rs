//! The online data-cleansing service scenario (paper §1): "users of such a
//! service simply submit sets of heterogeneous and dirty data and receive a
//! consistent and clean data set in response."
//!
//! A single CSV dump full of near-duplicate customer records goes in; a
//! deduplicated, conflict-free table comes out — via CSV, as a service
//! would work.
//!
//! Run with: `cargo run --example cleansing_service`

use hummer::core::{Hummer, ResolutionSpec};
use hummer::datagen::scenarios::cleansing_service;
use hummer::engine::csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A customer "uploads" dirty CSV (here: generated, then serialized).
    let world = cleansing_service(50, 7);
    let uploaded_csv = csv::write_csv_str(&world.sources[0].table);
    println!(
        "Received {} bytes of dirty CSV ({} records)…",
        uploaded_csv.len(),
        world.sources[0].table.len()
    );

    // The service side: register, cleanse, return clean CSV.
    let mut hummer = Hummer::new();
    hummer
        .repository_mut()
        .register_csv_str("upload", &uploaded_csv)?;

    let out = hummer.fuse_sources(
        &["upload"],
        &[
            // Keep the most complete variant of the name.
            ("Name".to_string(), ResolutionSpec::named("longest")),
            // Majority vote on the city.
            ("City".to_string(), ResolutionSpec::named("vote")),
        ],
    )?;

    let cleaned_csv = csv::write_csv_str(&out.result);
    println!(
        "Cleansed: {} records -> {} distinct customers, {} conflicts resolved",
        out.integrated.len(),
        out.result.len(),
        out.conflict_count
    );

    println!("\nDetection work: {:?}", out.detection.stats);
    println!(
        "Sure duplicate pairs: {}, unsure cases flagged for review: {}",
        out.detection.pairs.len(),
        out.detection.unsure.len()
    );

    // Quality report against the (normally unknown) gold standard.
    let pr = hummer::datagen::cluster_pair_metrics(
        &out.detection.cluster_ids,
        &world.gold_union_entity_ids(),
    );
    println!(
        "Dedup quality: precision {:.2}, recall {:.2}, F1 {:.2}",
        pr.precision,
        pr.recall,
        pr.f1()
    );

    println!("\nFirst lines of the returned clean CSV:");
    for line in cleaned_csv.lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
