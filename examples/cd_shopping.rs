//! The CD-shopping scenario (paper §1): "a customer shopping for CDs might
//! want to supply only the different sites to search on. The entire
//! integration process [...] is performed under the covers", including
//! "possibly favoring the data of the cheapest store".
//!
//! Three synthetic shop catalogs with heterogeneous labels are generated,
//! fused automatically, and the price conflict is resolved by `min`
//! (cheapest offer wins) while the title takes the longest (most complete)
//! variant.
//!
//! Run with: `cargo run --example cd_shopping`

use hummer::core::{Hummer, HummerConfig, MatcherConfig, ResolutionSpec, SniffConfig};
use hummer::datagen::scenarios::cd_shopping;
use hummer::datagen::{cluster_pair_metrics, correspondence_metrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate three overlapping shop catalogs with known gold standard.
    let world = cd_shopping(40, 2005);

    let mut hummer = Hummer::with_config(HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    });
    for s in &world.sources {
        hummer
            .repository_mut()
            .register_table(s.table.name().to_string(), s.table.clone())?;
        println!(
            "{:<14} {:>3} CDs, schema {:?}",
            s.table.name(),
            s.table.len(),
            s.table.schema().names()
        );
    }

    // Fuse: cheapest price, longest title, first-seen for the rest.
    let out = hummer.fuse_sources(
        &["CDPalace", "DiscountDiscs", "MusicMile"],
        &[
            ("Price".to_string(), ResolutionSpec::named("min")),
            ("Title".to_string(), ResolutionSpec::named("longest")),
        ],
    )?;

    println!(
        "\n{} offers fused into {} distinct CDs ({} conflicts resolved)",
        out.integrated.len(),
        out.result.len(),
        out.conflict_count
    );
    println!("\nFirst rows of the fused catalog:");
    let preview = hummer::engine::ops::limit(&out.result, 8);
    println!("{}", preview.pretty());

    // Because the world is synthetic we can score the pipeline.
    for (i, m) in out.match_results.iter().enumerate() {
        let predicted: Vec<(String, String)> = m
            .correspondences
            .iter()
            .map(|c| (c.right_column.clone(), c.left_column.clone()))
            .collect();
        let gold: Vec<(String, String)> = world.gold_renames[i + 1]
            .iter()
            .filter(|(l, c)| !l.eq_ignore_ascii_case(c)) // only real renames
            .map(|(l, c)| (l.clone(), c.clone()))
            .collect();
        let pr = correspondence_metrics(&predicted, &gold);
        println!(
            "schema matching vs {:<14} P={:.2} R={:.2} F1={:.2}",
            m.right_table,
            pr.precision,
            pr.recall,
            pr.f1()
        );
    }
    let pr = cluster_pair_metrics(&out.detection.cluster_ids, &world.gold_union_entity_ids());
    println!(
        "duplicate detection            P={:.2} R={:.2} F1={:.2}",
        pr.precision,
        pr.recall,
        pr.f1()
    );
    println!(
        "stage times: match {:?}, transform {:?}, detect {:?}, fuse {:?}",
        out.timings.matching, out.timings.transformation, out.timings.detection, out.timings.fusion
    );
    Ok(())
}
