//! Incremental updates: prepare → query → delta → re-query, with timing.
//!
//! HumMer's sources are autonomous and evolving; this example shows the
//! delta subsystem keeping prepared artifacts and a fused view current
//! under row-level changes at a cost proportional to the *change* — and
//! verifies (as the whole subsystem guarantees) that the incremental
//! result is byte-identical to a from-scratch recompute.
//!
//! Run with: `cargo run --release --example incremental`

use hummer::core::{prepare_tables, HummerConfig, MatcherConfig, Parallelism, SniffConfig};
use hummer::datagen::scenarios::cd_shopping;
use hummer::delta::{concat_mappings, FusedView, RowMapping, TableDelta};
use hummer::engine::{Table, Value};
use hummer::fusion::{FunctionRegistry, ResolutionSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three CD-shop catalogs with heterogeneous labels and conflicting
    // prices — a realistic evolving-sources world.
    let world = cd_shopping(400, 7);
    let mut tables: Vec<Table> = world.sources.iter().map(|s| s.table.clone()).collect();
    let config = HummerConfig {
        matcher: MatcherConfig {
            sniff: SniffConfig {
                top_k: 10,
                min_similarity: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let registry = FunctionRegistry::standard();

    // 1. Prepare: match → transform → detect (the expensive, cacheable part).
    let t0 = Instant::now();
    let refs: Vec<&Table> = tables.iter().collect();
    let prepared = prepare_tables(&refs, &config)?;
    println!(
        "prepare        {:6.1} ms   ({} union rows, {} objects)",
        t0.elapsed().as_secs_f64() * 1e3,
        prepared.integrated.len(),
        prepared.detection.object_count()
    );

    // 2. Query: a fused view resolving price conflicts by `min`.
    let resolutions = vec![("Price".to_string(), ResolutionSpec::named("min"))];
    let t0 = Instant::now();
    let mut view = FusedView::new(
        &prepared.annotated,
        &prepared.detection,
        &resolutions,
        &registry,
        Parallelism::sequential(),
    )?;
    println!(
        "fuse (cold)    {:6.1} ms   ({} fused rows)",
        t0.elapsed().as_secs_f64() * 1e3,
        view.table().len()
    );

    // 3. Delta: the first catalog corrects three artist names. (Text
    //    updates touch only the changed rows' evidence, so the delta path
    //    stays delta-sized; numeric updates additionally re-weight rows
    //    sharing the changed values' evidence buckets, and inserts/deletes
    //    amortize across corpus-statistics window crossings — see
    //    ARCHITECTURE.md, "The delta subsystem".)
    let catalog = &tables[0];
    let artist_col = catalog.resolve("Artist")?;
    let mut delta = TableDelta::new(catalog.name());
    for row in 0..3 {
        let mut values = catalog.rows()[row].values().to_vec();
        values[artist_col] = Value::text(format!("{} (corrected)", values[artist_col]));
        delta = delta.update(row, values);
    }
    println!(
        "delta          {} update(s) against `{}`",
        delta.counts().updated,
        delta.table
    );

    let (updated_catalog, source_map) = delta.apply(&tables[0])?;
    tables[0] = updated_catalog;
    let mut maps = vec![source_map];
    for t in &tables[1..] {
        maps.push(RowMapping::identity(t.len()));
    }
    let mapping = concat_mappings(&maps)?;

    // 4. Apply incrementally: only dirty rows re-score, only affected
    //    clusters re-cluster, only dirty clusters re-fuse.
    let refs: Vec<&Table> = tables.iter().collect();
    let t0 = Instant::now();
    let (upgraded, report) = prepared.apply_delta(&refs, &mapping, &config)?;
    let stats = view.apply_delta(
        &upgraded.annotated,
        &upgraded.detection,
        &mapping,
        &registry,
    )?;
    let delta_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "delta-apply    {:6.1} ms   ({} dirty rows, {} pairs re-scored, {} carried; \
         {} clusters re-fused, {} reused)",
        delta_ms,
        report.detection.dirty_rows,
        report.detection.scored_pairs,
        report.detection.carried_pairs,
        stats.fusion.recomputed,
        stats.fusion.reused
    );

    // 5. Re-query and verify against a from-scratch rebuild.
    let t0 = Instant::now();
    let scratch = prepare_tables(&refs, &config)?;
    let scratch_view = FusedView::new(
        &scratch.annotated,
        &scratch.detection,
        &resolutions,
        &registry,
        Parallelism::sequential(),
    )?;
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "from-scratch   {:6.1} ms   (the cost the delta path avoided: {:.1}x)",
        scratch_ms,
        scratch_ms / delta_ms.max(1e-9)
    );
    assert_eq!(
        view.table().rows(),
        scratch_view.table().rows(),
        "incremental fused view must be byte-identical to a rebuild"
    );
    println!(
        "verified       incremental == from-scratch, bit for bit ({} fused rows)",
        view.table().len()
    );
    Ok(())
}
