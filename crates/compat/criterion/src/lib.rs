//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset `crates/bench/benches/components.rs` uses:
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark closure is
//! warmed up, then timed over `sample_size` samples; mean and median
//! nanoseconds per iteration are printed to stdout. There are no plots,
//! baselines, or statistical regressions — the `exp*` binaries are the
//! primary quantitative artifacts; this keeps `cargo bench` meaningful
//! without a registry.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// When `cargo test` drives a `harness = false` bench it passes `--test`:
/// run every closure exactly once (smoke check) instead of timing it.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn __set_test_mode_from_args() {
    if std::env::args().any(|a| a == "--test") {
        TEST_MODE.store(true, Ordering::Relaxed);
    }
}

/// Re-export so benches can use `criterion::black_box` if they prefer it.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 30,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifier carrying a function name and a displayed parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in real criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.rendered, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// No-op in the stand-in; real criterion writes reports here.
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if TEST_MODE.load(Ordering::Relaxed) {
            let mut bencher = Bencher {
                elapsed_ns: 0.0,
                iters: 0,
            };
            f(&mut bencher);
            return;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        // One warmup sample, discarded.
        let mut bencher = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed_ns: 0.0,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples_ns.push(bencher.elapsed_ns / bencher.iters as f64);
            }
        }
        if samples_ns.is_empty() {
            return;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        println!(
            "bench {label:<50} median {:>12} mean {:>12}",
            format_ns(median),
            format_ns(mean)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count so one sample takes
    /// at least ~2 ms of wall-clock.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if TEST_MODE.load(Ordering::Relaxed) {
            let start = Instant::now();
            std_black_box(routine());
            self.elapsed_ns = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 2_000 || iters >= 1 << 20 {
                self.elapsed_ns = elapsed.as_nanos() as f64;
                self.iters = iters;
                return;
            }
            iters *= 2;
        }
    }
}

/// Collect benchmark functions into one runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: run each group. Ignores harness CLI flags that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (timed run); `cargo test` passes
            // `--test` (single smoke iteration per benchmark).
            $crate::__set_test_mode_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_scales() {
        let mut b = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.iters >= 1);
        assert!(b.elapsed_ns > 0.0);
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut calls = 0u32;
        g.bench_function("f", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(calls >= 3); // warmup + 2 samples
    }
}
