//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the strategy-combinator subset that HumMer's property
//! suites (`tests/pipeline_properties.rs`, `crates/textsim/tests/properties.rs`)
//! rely on:
//!
//! * `Strategy` with `prop_map` / `prop_flat_map` / `boxed`
//! * numeric-range strategies, `Just`, regex-literal string strategies
//!   (the `[class]{m,n}` / `.{m,n}` subset), `prop::collection::vec`
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   and `prop_assert_ne!` macros, plus `ProptestConfig::with_cases`
//!
//! Semantics: each test runs `cases` deterministic random samples. There is
//! **no shrinking** — a failure reports the case number and the assertion
//! message. Determinism means failures are reproducible run-over-run.

use std::fmt;
use std::sync::Arc;

pub mod test_runner {
    //! The deterministic RNG driving strategy sampling — a thin wrapper
    //! over the workspace `rand` shim's `StdRng` so the generator logic
    //! lives in one place.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic generator with a fixed per-process seed.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator with a fixed seed: every `proptest!` run samples the
        /// same inputs, so failures reproduce.
        pub fn deterministic() -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(0xB10C_5EED_CAFE_F00D),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// The wrapped generator, for reusing `rand`'s range sampling.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }
}

use test_runner::TestRng;

/// Error carried out of a failing property body by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is run on.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each sampled value and sample from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; total weight must be non-zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// Range sampling delegates to the workspace `rand` shim.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng.rng())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng.rng())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A string literal is a strategy via a small regex subset: a sequence of
/// `.` / `[class]` atoms, each optionally quantified `{m}` or `{m,n}`.
/// Covers every pattern the HumMer suites use (e.g. `"[a-z ]{1,30}"`,
/// `".{0,80}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string_from_pattern(self, rng)
    }
}

/// `.` draws from printable ASCII plus a few multibyte characters so unicode
/// paths (char-counting, lowercasing) stay exercised.
const DOT_EXTRAS: [char; 6] = ['é', 'ß', 'λ', 'Ж', '中', '😀'];

fn string_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let class: Vec<char> = match c {
            '.' => Vec::new(), // sentinel: sampled specially below
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let hi = chars.next().unwrap();
                            let lo = prev.take().unwrap();
                            for code in (lo as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        }
                        Some(other) => {
                            if let Some(p) = prev.replace(other) {
                                set.push(p);
                            }
                        }
                        None => panic!("unterminated [class] in pattern {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty [class] in pattern {pattern:?}");
                set
            }
            other => vec![other],
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            let parts: Vec<&str> = spec.split(',').collect();
            let min: usize = parts[0]
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in pattern {pattern:?}"));
            let max: usize = parts
                .get(1)
                .map(|p| p.trim().parse().expect("bad quantifier upper bound"))
                .unwrap_or(min);
            (min, max)
        } else {
            (1, 1)
        };
        let n = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        for _ in 0..n {
            if class.is_empty() {
                // `.` — printable ASCII most of the time, multibyte sometimes.
                if rng.below(8) == 0 {
                    out.push(DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]);
                } else {
                    out.push((0x20u8 + rng.below(0x5F) as u8) as char);
                }
            } else {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
    }
    out
}

pub mod collection {
    //! `prop::collection` — sized `Vec` strategies.

    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property suite needs, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Weighted (or unweighted) choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Assert a condition inside a property body; failure aborts only this case
/// with a message (no panic unwinding mid-strategy).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!`-style equality check with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `prop_assert!`-style inequality check.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: $crate::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("property {} failed on case #{case}: {err}", stringify!($name));
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` deterministic samples (default 96, or `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[a-z ]{0,30}", &mut rng);
            assert!(t.chars().count() <= 30);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
            let d = Strategy::generate(&".{0,12}", &mut rng);
            assert!(d.chars().count() <= 12);
        }
    }

    #[test]
    fn oneof_weights_and_ranges() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = prop_oneof![
            2 => (0i64..10).prop_map(|x| x),
            1 => Just(99i64),
        ];
        let mut saw_just = false;
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((0..10).contains(&v) || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_len(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn flat_map_width(pair in (1usize..4).prop_flat_map(|w| {
            prop::collection::vec(0i64..100, w).prop_map(move |v| (w, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }
}
