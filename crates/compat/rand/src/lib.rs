//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace-local crate supplies the small slice of the `rand` 0.8 API
//! that HumMer actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is SplitMix64 — statistically solid for test-data synthesis
//! and benchmarking, deterministic per seed, and **not** cryptographically
//! secure. If the workspace ever gains registry access, deleting
//! `crates/compat/` and pointing the manifests at the real crates is a
//! drop-in swap.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = hi_w - lo_w + i128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is ≤ span/2^64 — irrelevant for the tiny spans
                // used in data generation.
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let r = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                // `lo + (hi-lo)*unit` can round up to exactly `hi`; keep the
                // half-open contract of `gen_range(lo..hi)`.
                if !inclusive && r >= hi {
                    hi.next_down().max(lo)
                } else {
                    r
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Draw uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    /// Deterministic non-cryptographic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&x));
            let y: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
