//! Per-cell lineage of a fused table.
//!
//! The demo color-codes each value of the result "to represent their
//! individual lineage (one color per source relation, mixed colors for
//! merged values)" (paper §3). This module records, for every output cell,
//! which input tuples and which sources contributed, and whether a real
//! conflict was resolved to produce it.

use std::collections::BTreeSet;

/// Lineage of a single output cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellLineage {
    /// Input-table row indices that contributed the value.
    pub row_indices: Vec<usize>,
    /// Distinct source aliases of those rows (sorted).
    pub sources: Vec<String>,
    /// True when more than one distinct non-null value was present — i.e.
    /// a data conflict was resolved here.
    pub had_conflict: bool,
}

impl CellLineage {
    /// The cell's "color": a single source alias when one source supplied
    /// the value, a `+`-joined combination for merged values, `∅` for
    /// sourceless cells (all-null clusters or synthesized values with no
    /// provenance).
    pub fn color(&self) -> String {
        match self.sources.len() {
            0 => "∅".to_string(),
            1 => self.sources[0].clone(),
            _ => self.sources.join("+"),
        }
    }

    /// True when the value came from exactly one source.
    pub fn is_pure(&self) -> bool {
        self.sources.len() == 1
    }
}

/// Lineage for a whole fused table (row-major, parallel to the table).
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    columns: Vec<String>,
    cells: Vec<Vec<CellLineage>>,
}

impl Lineage {
    /// Create lineage storage for the given output columns.
    pub fn new(columns: Vec<String>) -> Self {
        Lineage {
            columns,
            cells: Vec::new(),
        }
    }

    /// Append one output row's lineage (must match the column count).
    pub fn push_row(&mut self, row: Vec<CellLineage>) {
        assert_eq!(row.len(), self.columns.len(), "lineage arity mismatch");
        self.cells.push(row);
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no rows are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Lineage of cell (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> &CellLineage {
        &self.cells[row][col]
    }

    /// Total number of resolved conflicts across the table.
    pub fn conflict_count(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|c| c.had_conflict)
            .count()
    }

    /// Number of resolved conflicts in one column (by index).
    pub fn conflicts_in_column(&self, col: usize) -> usize {
        self.cells.iter().filter(|r| r[col].had_conflict).count()
    }

    /// All distinct sources appearing anywhere in the lineage (sorted).
    pub fn all_sources(&self) -> Vec<String> {
        let set: BTreeSet<&String> = self
            .cells
            .iter()
            .flatten()
            .flat_map(|c| c.sources.iter())
            .collect();
        set.into_iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(sources: &[&str], conflict: bool) -> CellLineage {
        CellLineage {
            row_indices: (0..sources.len()).collect(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
            had_conflict: conflict,
        }
    }

    #[test]
    fn color_coding() {
        assert_eq!(cell(&[], false).color(), "∅");
        assert_eq!(cell(&["A"], false).color(), "A");
        assert_eq!(cell(&["A", "B"], true).color(), "A+B");
        assert!(cell(&["A"], false).is_pure());
        assert!(!cell(&["A", "B"], false).is_pure());
    }

    #[test]
    fn conflict_counting() {
        let mut l = Lineage::new(vec!["x".into(), "y".into()]);
        l.push_row(vec![cell(&["A"], false), cell(&["A", "B"], true)]);
        l.push_row(vec![cell(&["B"], true), cell(&["B"], false)]);
        assert_eq!(l.conflict_count(), 2);
        assert_eq!(l.conflicts_in_column(0), 1);
        assert_eq!(l.conflicts_in_column(1), 1);
        assert_eq!(l.all_sources(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "lineage arity mismatch")]
    fn arity_checked() {
        let mut l = Lineage::new(vec!["x".into()]);
        l.push_row(vec![]);
    }
}
