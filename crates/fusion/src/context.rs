//! The *query context* a conflict resolution function sees.
//!
//! Paper §2.4: "the concept of conflict resolution is more general than the
//! concept of aggregation, because it uses the entire query context to
//! resolve conflicts. The query context consists not only of the conflicting
//! values themselves, but also of the corresponding tuples, all the
//! remaining column values, and other metadata, such as column name or table
//! name."

use hummer_engine::{Row, Schema, Value};

/// Everything a resolution function may consult when merging one column of
/// one duplicate cluster.
#[derive(Debug)]
pub struct ConflictContext<'a> {
    /// Name of the table being fused.
    pub table_name: &'a str,
    /// Schema of the (pre-fusion) table.
    pub schema: &'a Schema,
    /// Name of the column being resolved.
    pub column: &'a str,
    /// Index of that column.
    pub column_index: usize,
    /// The cluster's full tuples, in input order.
    pub rows: Vec<&'a Row>,
    /// Source alias per tuple (from the `sourceID` column), when present.
    pub source_ids: Vec<Option<String>>,
}

impl<'a> ConflictContext<'a> {
    /// The conflicting values themselves (this column of every tuple,
    /// `NULL`s included), in input order.
    pub fn values(&self) -> Vec<&'a Value> {
        self.rows.iter().map(|r| &r[self.column_index]).collect()
    }

    /// The non-`NULL` values with the index of the tuple that supplied each.
    pub fn non_null_values(&self) -> Vec<(usize, &'a Value)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let v = &r[self.column_index];
                (!v.is_null()).then_some((i, v))
            })
            .collect()
    }

    /// Whether this column is in *conflict*: more than one distinct
    /// non-null value across the cluster.
    pub fn is_conflict(&self) -> bool {
        let non_null = self.non_null_values();
        match non_null.split_first() {
            None => false,
            Some(((_, first), rest)) => rest.iter().any(|(_, v)| !v.group_eq(first)),
        }
    }

    /// The value another column takes in tuple `row` (for functions like
    /// `MOST RECENT` that consult companion attributes).
    pub fn companion_value(&self, row: usize, column: &str) -> Option<&'a Value> {
        let idx = self.schema.index_of(column)?;
        self.rows.get(row).map(|r| &r[idx])
    }

    /// Tuple indices supplied by the given source alias.
    pub fn rows_from_source(&self, source: &str) -> Vec<usize> {
        self.source_ids
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_deref()
                    .is_some_and(|alias| alias.eq_ignore_ascii_case(source))
                    .then_some(i)
            })
            .collect()
    }

    /// Number of tuples in the cluster.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the cluster is empty (does not occur during fusion but
    /// keeps the API total).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{row, Schema};

    fn schema() -> Schema {
        Schema::of_names(&["Name", "Age", "sourceID"]).unwrap()
    }

    fn rows() -> Vec<Row> {
        vec![
            row!["John", 33, "A"],
            row!["John", 34, "B"],
            row!["John", (), "C"],
        ]
    }

    fn ctx<'a>(schema: &'a Schema, rows: &'a [Row], col: usize) -> ConflictContext<'a> {
        ConflictContext {
            table_name: "T",
            schema,
            column: schema.column(col).name.as_str(),
            column_index: col,
            rows: rows.iter().collect(),
            source_ids: rows.iter().map(|r| r[2].as_text()).collect(),
        }
    }

    #[test]
    fn values_preserve_order_and_nulls() {
        let s = schema();
        let r = rows();
        let c = ctx(&s, &r, 1);
        let vals = c.values();
        assert_eq!(vals.len(), 3);
        assert!(vals[2].is_null());
    }

    #[test]
    fn non_null_values_carry_row_indices() {
        let s = schema();
        let r = rows();
        let c = ctx(&s, &r, 1);
        let nn = c.non_null_values();
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
    }

    #[test]
    fn conflict_detection() {
        let s = schema();
        let r = rows();
        assert!(ctx(&s, &r, 1).is_conflict()); // 33 vs 34
        assert!(!ctx(&s, &r, 0).is_conflict()); // all "John"
    }

    #[test]
    fn null_against_value_is_not_conflict() {
        let s = schema();
        let r = vec![row!["John", 33, "A"], row!["John", (), "B"]];
        assert!(!ctx(&s, &r, 1).is_conflict()); // subsumption, not conflict
    }

    #[test]
    fn companion_and_source_lookup() {
        let s = schema();
        let r = rows();
        let c = ctx(&s, &r, 1);
        assert_eq!(c.companion_value(1, "Name"), Some(&Value::text("John")));
        assert_eq!(c.companion_value(1, "nope"), None);
        assert_eq!(c.rows_from_source("b"), vec![1]);
        assert!(c.rows_from_source("zz").is_empty());
    }
}
