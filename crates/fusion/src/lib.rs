//! # hummer-fusion — conflict resolution and data fusion
//!
//! The third phase of HumMer and its least-commoditized contribution (paper
//! §2.4): merging each duplicate cluster into "a single, consistent, and
//! clean representation" while resolving contradictions between sources.
//!
//! * [`context`] — the *query context* handed to resolution functions: not
//!   just the conflicting values but the full tuples, companion columns,
//!   source ids, and table/column metadata;
//! * [`functions`] — the paper's function catalog: `CHOOSE(source)`,
//!   `COALESCE`, `FIRST`/`LAST`, `VOTE`, `GROUP`, (annotated) `CONCAT`,
//!   `SHORTEST`/`LONGEST`, `MOST RECENT`, and the SQL aggregates
//!   `MIN`/`MAX`/`SUM`/`AVG`/`MEDIAN`/`COUNT`;
//! * [`registry`] — name → function resolution with user extensibility;
//! * [`mod@fuse`] — the fusion operator: group by the object key, resolve each
//!   column, collect conflict samples;
//! * [`lineage`] — per-cell provenance (the demo's color-coding: "one color
//!   per source relation, mixed colors for merged values").
//!
//! Duplicate clusters are disjoint, so [`FusionSpec::with_parallelism`]
//! lets [`fuse()`] resolve them on several threads; results merge in
//! first-appearance order and are bit-identical at every degree.
//!
//! ## Example
//!
//! ```
//! use hummer_engine::table;
//! use hummer_fusion::{fuse, FusionSpec, FunctionRegistry, ResolutionSpec};
//!
//! // SELECT Name, RESOLVE(Age, max) FUSE FROM ... FUSE BY (Name)
//! let students = table! {
//!     "Students" => ["Name", "Age"];
//!     ["Alice", 22],
//!     ["Alice", 23],
//!     ["Bob", 24],
//! };
//! let spec = FusionSpec::by_key(vec!["Name"])
//!     .resolve("Age", ResolutionSpec::named("max"));
//! let fused = fuse(&students, &spec, &FunctionRegistry::standard()).unwrap();
//! assert_eq!(fused.table.len(), 2); // one tuple per student
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod error;
pub mod functions;
pub mod fuse;
pub mod incremental;
pub mod lineage;
pub mod registry;

pub use context::ConflictContext;
pub use error::FusionError;
pub use functions::{
    ByLength, Choose, Coalesce, Concat, First, Group, Last, MostRecent, NumericAggregate,
    ResolutionFunction, Resolved, TieBreak, Vote,
};
pub use fuse::{fuse, FusedTable, FusionSpec, SampleConflict, MAX_SAMPLE_CONFLICTS};
pub use hummer_par::Parallelism;
pub use incremental::{
    fuse_incremental, fuse_memo, ClusterPlan, FusionMemo, IncrementalFusionStats,
};
pub use lineage::{CellLineage, Lineage};
pub use registry::{FunctionRegistry, ResolutionSpec};
