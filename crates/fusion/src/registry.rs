//! Name-based registry of resolution functions.
//!
//! Fuse By queries name functions textually (`RESOLVE(Age, max)`,
//! `RESOLVE(Price, choose('cheapstore'))`); the registry turns a
//! [`ResolutionSpec`] into a boxed function. Custom functions can be
//! registered, which is the extensibility hook the paper promises
//! ("HumMer is extensible and new functions can be added", §2.4).

use crate::error::FusionError;
use crate::functions::{
    ByLength, Choose, Coalesce, Concat, First, Group, Last, MostRecent, NumericAggregate,
    ResolutionFunction, TieBreak, Vote,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed `RESOLVE` call: function name plus textual arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionSpec {
    /// Function name, case-insensitive.
    pub function: String,
    /// Positional arguments (source alias, recency column, separator, …).
    pub args: Vec<String>,
}

impl ResolutionSpec {
    /// A spec with no arguments.
    pub fn named(function: impl Into<String>) -> Self {
        ResolutionSpec {
            function: function.into(),
            args: Vec::new(),
        }
    }

    /// A spec with arguments.
    pub fn with_args(function: impl Into<String>, args: Vec<String>) -> Self {
        ResolutionSpec {
            function: function.into(),
            args,
        }
    }
}

/// Factory signature: turn the argument list into a ready function.
pub type FunctionFactory =
    Arc<dyn Fn(&[String]) -> Result<Arc<dyn ResolutionFunction>, FusionError> + Send + Sync>;

/// The registry mapping function names to factories.
#[derive(Clone)]
pub struct FunctionRegistry {
    factories: HashMap<String, FunctionFactory>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("functions", &names)
            .finish()
    }
}

fn no_args(name: &str, args: &[String]) -> Result<(), FusionError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(FusionError::BadArgument(format!(
            "{name} takes no arguments, got {}",
            args.len()
        )))
    }
}

impl FunctionRegistry {
    /// A registry pre-loaded with every function from paper §2.4.
    pub fn standard() -> Self {
        let mut r = FunctionRegistry {
            factories: HashMap::new(),
        };
        r.register("coalesce", |args| {
            no_args("COALESCE", args)?;
            Ok(Arc::new(Coalesce))
        });
        r.register("first", |args| {
            no_args("FIRST", args)?;
            Ok(Arc::new(First))
        });
        r.register("last", |args| {
            no_args("LAST", args)?;
            Ok(Arc::new(Last))
        });
        r.register("vote", |args| {
            let tie_break = match args.first().map(|s| s.to_ascii_lowercase()) {
                None => TieBreak::FirstSeen,
                Some(s) if s == "first" => TieBreak::FirstSeen,
                Some(s) if s == "least" => TieBreak::Least,
                Some(s) if s == "greatest" => TieBreak::Greatest,
                Some(other) => {
                    return Err(FusionError::BadArgument(format!(
                        "VOTE tie-break must be first|least|greatest, got `{other}`"
                    )))
                }
            };
            Ok(Arc::new(Vote { tie_break }))
        });
        r.register("group", |args| {
            no_args("GROUP", args)?;
            Ok(Arc::new(Group))
        });
        r.register("concat", |args| {
            let separator = args.first().cloned().unwrap_or_else(|| " | ".into());
            Ok(Arc::new(Concat {
                separator,
                annotated: false,
            }))
        });
        r.register("annotatedconcat", |args| {
            let separator = args.first().cloned().unwrap_or_else(|| " | ".into());
            Ok(Arc::new(Concat {
                separator,
                annotated: true,
            }))
        });
        r.register("shortest", |args| {
            no_args("SHORTEST", args)?;
            Ok(Arc::new(ByLength { longest: false }))
        });
        r.register("longest", |args| {
            no_args("LONGEST", args)?;
            Ok(Arc::new(ByLength { longest: true }))
        });
        r.register("choose", |args| match args {
            [source] => Ok(Arc::new(Choose {
                source: source.clone(),
            })),
            _ => Err(FusionError::BadArgument(
                "CHOOSE requires exactly one argument: the source alias".into(),
            )),
        });
        r.register("mostrecent", |args| match args {
            [col] => Ok(Arc::new(MostRecent {
                recency_column: col.clone(),
            })),
            _ => Err(FusionError::BadArgument(
                "MOST RECENT requires exactly one argument: the recency column".into(),
            )),
        });
        for agg in [
            NumericAggregate::Min,
            NumericAggregate::Max,
            NumericAggregate::Sum,
            NumericAggregate::Avg,
            NumericAggregate::Median,
            NumericAggregate::Count,
        ] {
            r.register(agg.name().to_string(), move |args| {
                no_args(agg.name(), args)?;
                Ok(Arc::new(agg))
            });
        }
        r
    }

    /// Register (or replace) a factory under a case-insensitive name.
    pub fn register<N, F, R>(&mut self, name: N, factory: F)
    where
        N: Into<String>,
        F: Fn(&[String]) -> Result<Arc<R>, FusionError> + Send + Sync + 'static,
        R: ResolutionFunction + 'static,
    {
        let f: FunctionFactory =
            Arc::new(move |args| factory(args).map(|f| f as Arc<dyn ResolutionFunction>));
        self.factories.insert(name.into().to_ascii_lowercase(), f);
    }

    /// Instantiate a function from a spec. An unknown name errors with the
    /// full list of registered functions, so a typo in a `RESOLVE` clause
    /// tells the user what *would* have worked.
    pub fn build(&self, spec: &ResolutionSpec) -> Result<Arc<dyn ResolutionFunction>, FusionError> {
        let key = spec.function.to_ascii_lowercase();
        match self.factories.get(&key) {
            Some(factory) => factory(&spec.args),
            None => Err(FusionError::UnknownFunction(format!(
                "{} (available: {})",
                spec.function,
                self.names().join(", ")
            ))),
        }
    }

    /// Whether a function name is known.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(&name.to_ascii_lowercase())
    }

    /// Registered function names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ConflictContext;
    use crate::functions::Resolved;
    use hummer_engine::{row, Row, Schema, Value};

    #[test]
    fn standard_names_present() {
        let r = FunctionRegistry::standard();
        for name in [
            "coalesce",
            "first",
            "last",
            "vote",
            "group",
            "concat",
            "annotatedconcat",
            "shortest",
            "longest",
            "choose",
            "mostrecent",
            "min",
            "max",
            "sum",
            "avg",
            "median",
            "count",
        ] {
            assert!(r.contains(name), "{name} missing");
        }
    }

    #[test]
    fn case_insensitive_lookup() {
        let r = FunctionRegistry::standard();
        assert!(r.build(&ResolutionSpec::named("MAX")).is_ok());
        assert!(r.build(&ResolutionSpec::named("Coalesce")).is_ok());
    }

    #[test]
    fn unknown_function_errors() {
        let r = FunctionRegistry::standard();
        let e = r.build(&ResolutionSpec::named("frobnicate"));
        assert!(matches!(e, Err(FusionError::UnknownFunction(_))));
    }

    #[test]
    fn unknown_function_error_lists_available_names() {
        let r = FunctionRegistry::standard();
        let msg = match r.build(&ResolutionSpec::named("frobnicate")) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("frobnicate must not resolve"),
        };
        assert!(msg.contains("frobnicate"), "{msg}");
        // Every registered name appears, sorted, so the user can pick.
        for name in r.names() {
            assert!(msg.contains(&name), "missing `{name}` in: {msg}");
        }
        assert!(msg.contains("available:"), "{msg}");
    }

    #[test]
    fn arg_validation() {
        let r = FunctionRegistry::standard();
        assert!(r.build(&ResolutionSpec::named("choose")).is_err());
        assert!(r
            .build(&ResolutionSpec::with_args("choose", vec!["src".into()]))
            .is_ok());
        assert!(r
            .build(&ResolutionSpec::with_args("max", vec!["oops".into()]))
            .is_err());
        assert!(r
            .build(&ResolutionSpec::with_args("vote", vec!["sideways".into()]))
            .is_err());
    }

    #[test]
    fn custom_function_registration() {
        struct AlwaysFortyTwo;
        impl ResolutionFunction for AlwaysFortyTwo {
            fn name(&self) -> &str {
                "fortytwo"
            }
            fn resolve(&self, _ctx: &ConflictContext<'_>) -> crate::functions::Result<Resolved> {
                Ok(Resolved::new(Value::Int(42), vec![]))
            }
        }
        let mut r = FunctionRegistry::standard();
        r.register("fortytwo", |_args| Ok(Arc::new(AlwaysFortyTwo)));
        let f = r.build(&ResolutionSpec::named("FortyTwo")).unwrap();
        let schema = Schema::of_names(&["x"]).unwrap();
        let rows: Vec<Row> = vec![row![1]];
        let ctx = ConflictContext {
            table_name: "T",
            schema: &schema,
            column: "x",
            column_index: 0,
            rows: rows.iter().collect(),
            source_ids: vec![None],
        };
        assert_eq!(f.resolve(&ctx).unwrap().value, Value::Int(42));
    }

    #[test]
    fn names_are_sorted() {
        let names = FunctionRegistry::standard().names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
