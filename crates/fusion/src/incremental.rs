//! Incremental fusion: re-resolve only dirty clusters.
//!
//! Fusion output is a pure function of each cluster in isolation — member
//! rows (in order), their source ids, and the resolution functions — plus a
//! deterministic merge in cluster order. So when a delta leaves a cluster's
//! membership and member contents untouched, its fused row, cell lineage,
//! and conflict by-products can be **reused** from a memo instead of
//! re-running the resolution functions, and the result is still
//! bit-identical to a from-scratch [`crate::fuse()`]:
//!
//! * reused values/conflict flags depend only on member-row contents, which
//!   are unchanged by assumption;
//! * lineage row indices are remapped through the delta's row mapping;
//! * a sample conflict's cluster index is rewritten to the cluster's new
//!   position.
//!
//! The caller (the delta subsystem) decides which clusters are reusable —
//! see `hummer_delta::FusedView` for the sound plan construction — and this
//! module guarantees the mechanics: recomputed clusters go through exactly
//! the same code path as [`crate::fuse()`], and the final assembly is shared
//! with it.

use crate::error::FusionError;
use crate::fuse::{FusedTable, FusionSetup, FusionSpec, ResolvedCluster};
use crate::registry::FunctionRegistry;
use hummer_engine::Table;

/// Per-cluster cached fusion output, reusable across deltas while the
/// cluster stays untouched.
#[derive(Debug, Clone)]
pub struct FusionMemo {
    clusters: Vec<ResolvedCluster>,
}

impl FusionMemo {
    /// Number of memoized clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }
}

/// What to do with one output cluster during an incremental fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPlan {
    /// Run the resolution functions (the cluster is new or dirty).
    Recompute,
    /// Reuse the memoized output of old cluster `old` (sound only when the
    /// cluster's membership and member-row contents are unchanged — the
    /// caller's responsibility).
    Reuse {
        /// Index of the cluster in the memo this one reuses.
        old: usize,
    },
}

/// Work counters of one incremental fusion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalFusionStats {
    /// Output clusters in total.
    pub clusters: usize,
    /// Clusters served from the memo.
    pub reused: usize,
    /// Clusters whose resolution functions ran.
    pub recomputed: usize,
}

/// [`crate::fuse()`] that additionally returns a [`FusionMemo`] for later
/// incremental runs.
pub fn fuse_memo(
    input: &Table,
    spec: &FusionSpec,
    registry: &FunctionRegistry,
) -> Result<(FusedTable, FusionMemo), FusionError> {
    let setup = FusionSetup::new(input, spec, registry)?;
    let resolved = setup.resolve_all(input, spec, |_| None)?;
    let memo = FusionMemo {
        clusters: resolved.clone(),
    };
    let fused = setup.assemble(input, resolved)?;
    Ok((fused, memo))
}

/// Fuse `input` reusing memoized clusters according to `plans`.
///
/// `plans` must have one entry per output cluster (key group of `input`, in
/// first-appearance order); `old_to_new[r]` maps an input-row index of the
/// memoized run to its index in `input` (`None` for deleted rows — which
/// must not appear among a reused cluster's contributors).
///
/// Output is bit-identical to [`crate::fuse()`] over `input` provided every
/// `Reuse` plan points at a genuinely unchanged cluster.
pub fn fuse_incremental(
    input: &Table,
    spec: &FusionSpec,
    registry: &FunctionRegistry,
    plans: &[ClusterPlan],
    memo: &FusionMemo,
    old_to_new: &[Option<usize>],
) -> Result<(FusedTable, FusionMemo, IncrementalFusionStats), FusionError> {
    let setup = FusionSetup::new(input, spec, registry)?;
    if plans.len() != setup.order.len() {
        return Err(FusionError::BadArgument(format!(
            "incremental fusion got {} cluster plans for {} clusters",
            plans.len(),
            setup.order.len()
        )));
    }
    // Validate reuse targets up front so the parallel resolve can treat
    // them as infallible.
    for plan in plans {
        if let ClusterPlan::Reuse { old } = plan {
            if *old >= memo.clusters.len() {
                return Err(FusionError::BadArgument(format!(
                    "reuse target {old} out of bounds (memo has {})",
                    memo.clusters.len()
                )));
            }
            for lineage in &memo.clusters[*old].cell_lineages {
                for &r in &lineage.row_indices {
                    if old_to_new.get(r).copied().flatten().is_none() {
                        return Err(FusionError::BadArgument(format!(
                            "reused cluster {old} cites deleted input row {r}"
                        )));
                    }
                }
            }
        }
    }

    let resolved = setup.resolve_all(input, spec, |cluster_idx| match plans[cluster_idx] {
        ClusterPlan::Recompute => None,
        ClusterPlan::Reuse { old } => {
            let mut cached = memo.clusters[old].clone();
            for lineage in &mut cached.cell_lineages {
                for r in &mut lineage.row_indices {
                    *r = old_to_new[*r].expect("validated above");
                }
            }
            for sample in &mut cached.samples {
                sample.cluster = cluster_idx;
            }
            Some(cached)
        }
    })?;
    let stats = IncrementalFusionStats {
        clusters: plans.len(),
        reused: plans
            .iter()
            .filter(|p| matches!(p, ClusterPlan::Reuse { .. }))
            .count(),
        recomputed: plans
            .iter()
            .filter(|p| matches!(p, ClusterPlan::Recompute))
            .count(),
    };
    let memo = FusionMemo {
        clusters: resolved.clone(),
    };
    let fused = setup.assemble(input, resolved)?;
    Ok((fused, memo, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ResolutionSpec;
    use hummer_engine::{table, Table, Value};

    fn students() -> Table {
        table! {
            "Students" => ["Name", "Age", "Semester", "sourceID", "objectID"];
            ["John Smith", 24, (), "EE", 0],
            ["John Smith", 25, 5, "CS", 0],
            ["Mary Jones", 22, (), "EE", 1],
            ["Marie Curie", 31, 9, "CS", 2],
        }
    }

    fn spec() -> FusionSpec {
        FusionSpec::by_key(vec!["objectID"])
            .drop_column("objectID")
            .drop_column("sourceID")
            .resolve("Age", ResolutionSpec::named("max"))
    }

    fn assert_fused_eq(a: &FusedTable, b: &FusedTable) {
        assert_eq!(a.table.rows(), b.table.rows());
        assert_eq!(a.conflict_count, b.conflict_count);
        assert_eq!(a.sample_conflicts, b.sample_conflicts);
        for row in 0..a.table.len() {
            for col in 0..a.table.schema().len() {
                assert_eq!(a.lineage.cell(row, col), b.lineage.cell(row, col));
            }
        }
    }

    #[test]
    fn memo_run_matches_plain_fuse() {
        let t = students();
        let registry = FunctionRegistry::standard();
        let plain = crate::fuse(&t, &spec(), &registry).unwrap();
        let (memoed, memo) = fuse_memo(&t, &spec(), &registry).unwrap();
        assert_fused_eq(&plain, &memoed);
        assert_eq!(memo.len(), 3);
        assert!(!memo.is_empty());
    }

    #[test]
    fn all_reuse_reproduces_output() {
        let t = students();
        let registry = FunctionRegistry::standard();
        let (plain, memo) = fuse_memo(&t, &spec(), &registry).unwrap();
        let identity: Vec<Option<usize>> = (0..t.len()).map(Some).collect();
        let plans = vec![
            ClusterPlan::Reuse { old: 0 },
            ClusterPlan::Reuse { old: 1 },
            ClusterPlan::Reuse { old: 2 },
        ];
        let (again, memo2, stats) =
            fuse_incremental(&t, &spec(), &registry, &plans, &memo, &identity).unwrap();
        assert_fused_eq(&plain, &again);
        assert_eq!(stats.reused, 3);
        assert_eq!(stats.recomputed, 0);
        assert_eq!(memo2.len(), 3);
    }

    #[test]
    fn dirty_cluster_recomputes_and_clean_ones_remap() {
        let t = students();
        let registry = FunctionRegistry::standard();
        let (_, memo) = fuse_memo(&t, &spec(), &registry).unwrap();
        // Delete Mary (row 2): clusters 0 and 2 survive untouched, the
        // Mary cluster disappears, a new Grace cluster appears.
        let t2 = table! {
            "Students" => ["Name", "Age", "Semester", "sourceID", "objectID"];
            ["John Smith", 24, (), "EE", 0],
            ["John Smith", 25, 5, "CS", 0],
            ["Marie Curie", 31, 9, "CS", 1],
            ["Grace Hopper", 37, 3, "EE", 2],
        };
        let old_to_new = vec![Some(0), Some(1), None, Some(2)];
        let plans = vec![
            ClusterPlan::Reuse { old: 0 }, // John cluster unchanged
            ClusterPlan::Reuse { old: 2 }, // Marie, renumbered 2 -> 1
            ClusterPlan::Recompute,        // Grace is new
        ];
        let (incremental, _, stats) =
            fuse_incremental(&t2, &spec(), &registry, &plans, &memo, &old_to_new).unwrap();
        let scratch = crate::fuse(&t2, &spec(), &registry).unwrap();
        assert_fused_eq(&incremental, &scratch);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.recomputed, 1);
        // Marie's lineage now cites new row 2.
        let name = incremental.table.resolve("Name").unwrap();
        assert_eq!(incremental.lineage.cell(1, name).row_indices, vec![2]);
        assert_eq!(incremental.table.cell(1, name), &Value::text("Marie Curie"));
    }

    #[test]
    fn plan_arity_and_bounds_validated() {
        let t = students();
        let registry = FunctionRegistry::standard();
        let (_, memo) = fuse_memo(&t, &spec(), &registry).unwrap();
        let identity: Vec<Option<usize>> = (0..t.len()).map(Some).collect();
        // Wrong plan count.
        assert!(fuse_incremental(&t, &spec(), &registry, &[], &memo, &identity).is_err());
        // Out-of-bounds reuse target.
        let plans = vec![
            ClusterPlan::Reuse { old: 9 },
            ClusterPlan::Recompute,
            ClusterPlan::Recompute,
        ];
        assert!(fuse_incremental(&t, &spec(), &registry, &plans, &memo, &identity).is_err());
        // Reused cluster citing a deleted row.
        let deleted: Vec<Option<usize>> = vec![None; t.len()];
        let plans = vec![
            ClusterPlan::Reuse { old: 0 },
            ClusterPlan::Recompute,
            ClusterPlan::Recompute,
        ];
        assert!(fuse_incremental(&t, &spec(), &registry, &plans, &memo, &deleted).is_err());
    }
}
