//! Error type for the fusion layer.

use std::fmt;

/// Errors produced during conflict resolution and fusion.
#[derive(Debug)]
pub enum FusionError {
    /// A Fuse By / fusion spec referenced an unknown resolution function.
    UnknownFunction(String),
    /// A resolution function received a bad argument (missing source,
    /// unknown recency column, wrong arity, …).
    BadArgument(String),
    /// A function was applied to values it cannot handle.
    TypeError(String),
    /// Underlying engine failure (schema, arity, expression).
    Engine(hummer_engine::EngineError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::UnknownFunction(name) => {
                write!(f, "unknown resolution function `{name}`")
            }
            FusionError::BadArgument(msg) => write!(f, "bad resolution argument: {msg}"),
            FusionError::TypeError(msg) => write!(f, "resolution type error: {msg}"),
            FusionError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for FusionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FusionError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hummer_engine::EngineError> for FusionError {
    fn from(e: hummer_engine::EngineError) -> Self {
        FusionError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FusionError::UnknownFunction("frob".into())
            .to_string()
            .contains("frob"));
        assert!(FusionError::BadArgument("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn engine_error_wraps_with_source() {
        use std::error::Error as _;
        let e: FusionError = hummer_engine::EngineError::DuplicateColumn("c".into()).into();
        assert!(e.source().is_some());
    }
}
