//! The fusion operator: collapse each duplicate cluster into one consistent
//! tuple, resolving conflicts per column.
//!
//! "Tuples with same objectID are fused into a single tuple and conflicts
//! among them are resolved according to the query specification" (paper §3).

use crate::context::ConflictContext;
use crate::error::FusionError;
use crate::functions::ResolutionFunction;
use crate::lineage::{CellLineage, Lineage};
use crate::registry::{FunctionRegistry, ResolutionSpec};
use hummer_engine::{Row, Table, Value};
use hummer_par::{par_map_indexed, Parallelism};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::Arc;

/// Name of the provenance column consulted for source annotations (added by
/// the transformation phase).
pub const SOURCE_ID_COLUMN: &str = "sourceID";

/// Bookkeeping columns whose cross-source differences are *not* data
/// conflicts: `sourceID` differs by construction whenever sources merge,
/// and `objectID` is the grouping key itself.
const NON_DATA_COLUMNS: [&str; 2] = ["sourceID", "objectID"];

/// Specification of one fusion run.
#[derive(Debug, Clone)]
pub struct FusionSpec {
    /// The object-identity columns (`FUSE BY (...)`): tuples agreeing on
    /// all of them form one cluster. Typically this is the detector's
    /// `objectID`, or a natural key like `Name`.
    pub key_columns: Vec<String>,
    /// Per-column resolution functions (`RESOLVE(col, f)`), by column name.
    pub resolutions: Vec<(String, ResolutionSpec)>,
    /// Function for every column without an explicit `RESOLVE` — the paper
    /// mandates `COALESCE` as default.
    pub default_function: ResolutionSpec,
    /// Columns to drop from the fused output (e.g. bookkeeping columns).
    pub drop_columns: Vec<String>,
    /// How many threads may resolve disjoint clusters concurrently.
    /// Clusters are independent by construction, and results merge in
    /// first-appearance order, so the degree never changes the output —
    /// only the wall-clock cost of wide fusions. Defaults to sequential.
    pub parallelism: Parallelism,
}

impl FusionSpec {
    /// Fuse by the given key columns with `COALESCE` everywhere else.
    pub fn by_key<S: Into<String>>(keys: Vec<S>) -> Self {
        FusionSpec {
            key_columns: keys.into_iter().map(Into::into).collect(),
            resolutions: Vec::new(),
            default_function: ResolutionSpec::named("coalesce"),
            drop_columns: Vec::new(),
            parallelism: Parallelism::sequential(),
        }
    }

    /// Add a `RESOLVE(column, function)` clause.
    pub fn resolve(mut self, column: impl Into<String>, spec: ResolutionSpec) -> Self {
        self.resolutions.push((column.into(), spec));
        self
    }

    /// Drop a column from the output.
    pub fn drop_column(mut self, column: impl Into<String>) -> Self {
        self.drop_columns.push(column.into());
        self
    }

    /// Resolve disjoint clusters on up to `par.get()` threads.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }
}

/// A sample of an actual conflict encountered during fusion (the wizard's
/// "sample conflicts" pane, Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConflict {
    /// Output row (cluster) index.
    pub cluster: usize,
    /// Column name.
    pub column: String,
    /// The distinct conflicting values, rendered.
    pub values: Vec<String>,
    /// The resolved value, rendered.
    pub resolved: String,
}

/// The fused table plus per-cell lineage and conflict samples.
#[derive(Debug, Clone)]
pub struct FusedTable {
    /// The clean, consistent result (one tuple per real-world object).
    pub table: Table,
    /// Per-cell lineage (same shape as `table`).
    pub lineage: Lineage,
    /// Up to [`MAX_SAMPLE_CONFLICTS`] resolved conflicts for inspection.
    pub sample_conflicts: Vec<SampleConflict>,
    /// Total number of cell-level conflicts resolved.
    pub conflict_count: usize,
    /// Output rows whose cluster merged more than one input row — the
    /// fusions that actually combined sources, as opposed to singleton
    /// pass-throughs.
    pub merged_clusters: usize,
}

/// Cap on collected [`SampleConflict`]s.
pub const MAX_SAMPLE_CONFLICTS: usize = 25;

/// One cluster's fused row plus its by-products, computed independently of
/// every other cluster (the unit of parallelism in [`fuse`], and the unit
/// of caching in [`crate::incremental`]).
#[derive(Debug, Clone)]
pub(crate) struct ResolvedCluster {
    pub(crate) values: Vec<Value>,
    pub(crate) cell_lineages: Vec<CellLineage>,
    /// Conflict samples in column order, capped at [`MAX_SAMPLE_CONFLICTS`]
    /// (the global merge keeps the first `MAX_SAMPLE_CONFLICTS` across
    /// clusters in order, so a per-cluster cap loses nothing).
    pub(crate) samples: Vec<SampleConflict>,
    pub(crate) conflicts: usize,
    /// Input rows this cluster fused.
    pub(crate) members: usize,
}

/// Fuse the cluster whose member row indices are `members` into one tuple.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_cluster(
    cluster_idx: usize,
    members: &[usize],
    input: &Table,
    out_cols: &[usize],
    row_sources: &[Option<String>],
    explicit: &HashMap<usize, Arc<dyn ResolutionFunction>>,
    default_fn: &Arc<dyn ResolutionFunction>,
) -> Result<ResolvedCluster, FusionError> {
    let member_rows: Vec<&Row> = members.iter().map(|&i| &input.rows()[i]).collect();
    let member_sources: Vec<Option<String>> =
        members.iter().map(|&i| row_sources[i].clone()).collect();

    let mut values: Vec<Value> = Vec::with_capacity(out_cols.len());
    let mut cell_lineages: Vec<CellLineage> = Vec::with_capacity(out_cols.len());
    let mut samples: Vec<SampleConflict> = Vec::new();
    let mut conflicts = 0usize;
    // One context per cluster, re-aimed per column: the member rows/sources
    // are shared by every column, and cloning them per column would put
    // O(members) String allocations inside the hottest fusion loop.
    let mut ctx = ConflictContext {
        table_name: input.name(),
        schema: input.schema(),
        column: "",
        column_index: 0,
        rows: member_rows,
        source_ids: member_sources,
    };
    for &col in out_cols {
        ctx.column = &input.schema().column(col).name;
        ctx.column_index = col;
        let is_data_column = !NON_DATA_COLUMNS
            .iter()
            .any(|b| b.eq_ignore_ascii_case(ctx.column));
        let had_conflict = is_data_column && ctx.is_conflict();
        let func = explicit.get(&col).unwrap_or(default_fn);
        let resolved = func.resolve(&ctx)?;

        if had_conflict {
            conflicts += 1;
            if samples.len() < MAX_SAMPLE_CONFLICTS {
                let mut distinct: Vec<String> = Vec::new();
                for (_, v) in ctx.non_null_values() {
                    let s = v.to_string();
                    if !distinct.contains(&s) {
                        distinct.push(s);
                    }
                }
                samples.push(SampleConflict {
                    cluster: cluster_idx,
                    column: ctx.column.to_string(),
                    values: distinct,
                    resolved: resolved.value.to_string(),
                });
            }
        }

        let mut sources: Vec<String> = resolved
            .contributors
            .iter()
            .filter_map(|&local| ctx.source_ids[local].clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        sources.sort();
        cell_lineages.push(CellLineage {
            row_indices: resolved.contributors.iter().map(|&l| members[l]).collect(),
            sources,
            had_conflict,
        });
        values.push(resolved.value);
    }
    Ok(ResolvedCluster {
        values,
        cell_lineages,
        samples,
        conflicts,
        members: members.len(),
    })
}

/// Run fusion over `input` according to `spec`, instantiating resolution
/// functions from `registry`.
///
/// Clusters are the groups of tuples agreeing on all `key_columns`
/// (`NULL` keys compare equal, so tuples with missing keys form their own
/// cluster per distinct null-pattern). Output cluster order follows first
/// appearance in the input; column order follows the input schema minus
/// dropped columns.
pub fn fuse(
    input: &Table,
    spec: &FusionSpec,
    registry: &FunctionRegistry,
) -> Result<FusedTable, FusionError> {
    let setup = FusionSetup::new(input, spec, registry)?;
    let resolved = setup.resolve_all(input, spec, |_| None)?;
    setup.assemble(input, resolved)
}

/// Everything [`fuse`] derives from the spec before touching clusters:
/// resolved columns, instantiated functions, per-row source ids, and the
/// key groups in first-appearance order. Shared with [`crate::incremental`]
/// so the incremental path groups, resolves, and assembles byte-identically.
pub(crate) struct FusionSetup {
    pub(crate) out_cols: Vec<usize>,
    pub(crate) order: Vec<Row>,
    pub(crate) groups: HashMap<Row, Vec<usize>>,
    row_sources: Vec<Option<String>>,
    explicit: HashMap<usize, Arc<dyn ResolutionFunction>>,
    default_fn: Arc<dyn ResolutionFunction>,
}

impl FusionSetup {
    pub(crate) fn new(
        input: &Table,
        spec: &FusionSpec,
        registry: &FunctionRegistry,
    ) -> Result<FusionSetup, FusionError> {
        // Resolve key and output columns.
        let key_idx: Vec<usize> = spec
            .key_columns
            .iter()
            .map(|k| input.resolve(k).map_err(FusionError::from))
            .collect::<Result<_, _>>()?;
        if key_idx.is_empty() {
            return Err(FusionError::BadArgument(
                "fusion requires at least one key column (FUSE BY)".into(),
            ));
        }
        let dropped: BTreeSet<usize> = spec
            .drop_columns
            .iter()
            .map(|c| input.resolve(c).map_err(FusionError::from))
            .collect::<Result<_, _>>()?;
        let out_cols: Vec<usize> = (0..input.schema().len())
            .filter(|i| !dropped.contains(i))
            .collect();

        // Instantiate one function per output column.
        let default_fn = registry.build(&spec.default_function)?;
        let mut explicit: HashMap<usize, Arc<dyn ResolutionFunction>> = HashMap::new();
        for (col, rspec) in &spec.resolutions {
            let idx = input.resolve(col).map_err(FusionError::from)?;
            explicit.insert(idx, registry.build(rspec)?);
        }

        // Source ids per input row, if the provenance column exists.
        let source_idx = input.schema().index_of(SOURCE_ID_COLUMN);
        let row_sources: Vec<Option<String>> = input
            .rows()
            .iter()
            .map(|r| source_idx.and_then(|i| r[i].as_text()))
            .collect();

        // Group rows by key, preserving first-appearance order.
        let mut order: Vec<Row> = Vec::new();
        let mut groups: HashMap<Row, Vec<usize>> = HashMap::new();
        for (i, row) in input.rows().iter().enumerate() {
            let key = row.project(&key_idx);
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                })
                .push(i);
        }

        Ok(FusionSetup {
            out_cols,
            order,
            groups,
            row_sources,
            explicit,
            default_fn,
        })
    }

    /// Resolve every cluster, either through `shortcut` (the incremental
    /// path's cache) or by running the resolution functions. Clusters are
    /// independent, so they run on up to `spec.parallelism` threads and
    /// merge in first-appearance order — the output is the same at every
    /// degree.
    pub(crate) fn resolve_all(
        &self,
        input: &Table,
        spec: &FusionSpec,
        shortcut: impl Fn(usize) -> Option<ResolvedCluster> + Sync,
    ) -> Result<Vec<ResolvedCluster>, FusionError> {
        let one_cluster = |cluster_idx: usize, key: &Row| match shortcut(cluster_idx) {
            Some(cached) => Ok(cached),
            None => resolve_cluster(
                cluster_idx,
                &self.groups[key],
                input,
                &self.out_cols,
                &self.row_sources,
                &self.explicit,
                &self.default_fn,
            ),
        };
        let resolved: Vec<Result<ResolvedCluster, FusionError>> =
            if spec.parallelism.is_sequential() {
                // Inline, stopping at the first error (a parallel run
                // finishes in-flight clusters before the merge surfaces the
                // same error).
                let mut acc = Vec::with_capacity(self.order.len());
                for (cluster_idx, key) in self.order.iter().enumerate() {
                    let result = one_cluster(cluster_idx, key);
                    let failed = result.is_err();
                    acc.push(result);
                    if failed {
                        break;
                    }
                }
                acc
            } else {
                par_map_indexed(spec.parallelism, &self.order, |cluster_idx, key| {
                    one_cluster(cluster_idx, key)
                })
            };
        resolved.into_iter().collect()
    }

    /// Merge resolved clusters (in first-appearance order) into the fused
    /// table, its lineage, and the global conflict sample/count.
    pub(crate) fn assemble(
        &self,
        input: &Table,
        resolved: Vec<ResolvedCluster>,
    ) -> Result<FusedTable, FusionError> {
        let out_schema = input
            .schema()
            .project(&self.out_cols)
            .map_err(FusionError::from)?;
        let out_names: Vec<String> = out_schema.names().iter().map(|s| s.to_string()).collect();
        let mut out = Table::empty(input.name(), out_schema);
        let mut lineage = Lineage::new(out_names);
        let mut samples: Vec<SampleConflict> = Vec::new();
        let mut conflict_count = 0usize;
        let mut merged_clusters = 0usize;
        for cluster in resolved {
            conflict_count += cluster.conflicts;
            if cluster.members > 1 {
                merged_clusters += 1;
            }
            for sample in cluster.samples {
                if samples.len() >= MAX_SAMPLE_CONFLICTS {
                    break;
                }
                samples.push(sample);
            }
            out.push(Row::from_values(cluster.values))
                .map_err(FusionError::from)?;
            lineage.push_row(cluster.cell_lineages);
        }
        Ok(FusedTable {
            table: out,
            lineage,
            sample_conflicts: samples,
            conflict_count,
            merged_clusters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    /// The integrated student table after matching + duplicate detection:
    /// objectID identifies clusters.
    fn students() -> Table {
        table! {
            "Students" => ["Name", "Age", "Semester", "sourceID", "objectID"];
            ["John Smith", 24, (), "EE", 0],
            ["John Smith", 25, 5, "CS", 0],
            ["Mary Jones", 22, (), "EE", 1],
            ["Marie Curie", 31, 9, "CS", 2],
        }
    }

    fn registry() -> FunctionRegistry {
        FunctionRegistry::standard()
    }

    #[test]
    fn fuses_one_tuple_per_object() {
        let spec = FusionSpec::by_key(vec!["objectID"]);
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        assert_eq!(fused.table.len(), 3);
        // Key uniqueness after fusion: no two rows share an objectID.
        let oid = fused.table.resolve("objectID").unwrap();
        let mut seen: Vec<String> = fused
            .table
            .rows()
            .iter()
            .map(|r| r[oid].to_string())
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn default_coalesce_fills_from_later_rows() {
        let spec = FusionSpec::by_key(vec!["objectID"]);
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        let sem = fused.table.resolve("Semester").unwrap();
        // John's EE row has NULL semester; CS supplies 5.
        assert_eq!(fused.table.cell(0, sem), &Value::Int(5));
    }

    #[test]
    fn explicit_resolution_overrides_default() {
        // The paper's example: RESOLVE(Age, max) — students only get older.
        let spec =
            FusionSpec::by_key(vec!["objectID"]).resolve("Age", ResolutionSpec::named("max"));
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        let age = fused.table.resolve("Age").unwrap();
        assert_eq!(fused.table.cell(0, age), &Value::Int(25));
    }

    #[test]
    fn conflicts_counted_and_sampled() {
        let spec = FusionSpec::by_key(vec!["objectID"]);
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        // Exactly one conflict: John's age 24 vs 25. (sourceID values EE/CS
        // differ too — also a conflict under the definition.)
        assert!(fused.conflict_count >= 1);
        let age_conflict = fused
            .sample_conflicts
            .iter()
            .find(|c| c.column == "Age")
            .expect("age conflict sampled");
        assert_eq!(
            age_conflict.values,
            vec!["24".to_string(), "25".to_string()]
        );
        assert_eq!(age_conflict.cluster, 0);
    }

    #[test]
    fn lineage_tracks_sources_and_conflicts() {
        let spec =
            FusionSpec::by_key(vec!["objectID"]).resolve("Age", ResolutionSpec::named("max"));
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        let age = fused.table.resolve("Age").unwrap();
        let cell = fused.lineage.cell(0, age);
        assert!(cell.had_conflict);
        assert_eq!(cell.sources, vec!["CS".to_string()]); // max came from CS
        assert_eq!(cell.row_indices, vec![1]); // input row 1
        let name = fused.table.resolve("Name").unwrap();
        assert!(!fused.lineage.cell(2, name).had_conflict);
    }

    #[test]
    fn drop_columns_removes_bookkeeping() {
        let spec = FusionSpec::by_key(vec!["objectID"])
            .drop_column("objectID")
            .drop_column("sourceID");
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        assert_eq!(
            fused.table.schema().names(),
            vec!["Name", "Age", "Semester"]
        );
    }

    #[test]
    fn natural_key_fusion_without_object_id() {
        // FUSE BY (Name) directly, as in the paper's §2.1 example.
        let t = table! {
            "S" => ["Name", "Age"];
            ["Alice", 22],
            ["Alice", 23],
            ["Bob", 24],
        };
        let spec = FusionSpec::by_key(vec!["Name"]).resolve("Age", ResolutionSpec::named("max"));
        let fused = fuse(&t, &spec, &registry()).unwrap();
        assert_eq!(fused.table.len(), 2);
        assert_eq!(fused.table.cell(0, 1), &Value::Int(23));
    }

    #[test]
    fn fusion_is_idempotent() {
        // Fusing an already-fused table changes nothing.
        let spec = FusionSpec::by_key(vec!["objectID"]);
        let once = fuse(&students(), &spec, &registry()).unwrap();
        let twice = fuse(&once.table, &spec, &registry()).unwrap();
        assert_eq!(once.table.rows(), twice.table.rows());
        assert_eq!(twice.conflict_count, 0);
    }

    #[test]
    fn missing_key_column_errors() {
        let spec = FusionSpec::by_key(vec!["nope"]);
        assert!(fuse(&students(), &spec, &registry()).is_err());
    }

    #[test]
    fn empty_key_errors() {
        let spec = FusionSpec {
            key_columns: vec![],
            ..FusionSpec::by_key(vec!["x"])
        };
        assert!(fuse(&students(), &spec, &registry()).is_err());
    }

    #[test]
    fn unknown_resolution_function_errors() {
        let spec = FusionSpec::by_key(vec!["objectID"])
            .resolve("Age", ResolutionSpec::named("frobnicate"));
        assert!(matches!(
            fuse(&students(), &spec, &registry()),
            Err(FusionError::UnknownFunction(_))
        ));
    }

    #[test]
    fn empty_table_fuses_to_empty() {
        let t = table! { "E" => ["k", "v"]; };
        let spec = FusionSpec::by_key(vec!["k"]);
        let fused = fuse(&t, &spec, &registry()).unwrap();
        assert!(fused.table.is_empty());
        assert_eq!(fused.conflict_count, 0);
    }

    #[test]
    fn null_keys_cluster_together() {
        let t = table! {
            "T" => ["k", "v"];
            [(), 1],
            [(), 2],
            ["x", 3],
        };
        let spec = FusionSpec::by_key(vec!["k"]);
        let fused = fuse(&t, &spec, &registry()).unwrap();
        assert_eq!(fused.table.len(), 2);
    }

    #[test]
    fn choose_function_with_sources() {
        let spec = FusionSpec::by_key(vec!["objectID"]).resolve(
            "Age",
            ResolutionSpec::with_args("choose", vec!["EE".into()]),
        );
        let fused = fuse(&students(), &spec, &registry()).unwrap();
        let age = fused.table.resolve("Age").unwrap();
        assert_eq!(fused.table.cell(0, age), &Value::Int(24)); // EE said 24
    }
}
