//! The conflict resolution functions of paper §2.4.
//!
//! Each function consumes a [`ConflictContext`] (the full query context) and
//! produces a [`Resolved`] value plus the indices of the tuples that
//! contributed to it — the raw material for lineage tracking.
//!
//! Functions implemented (the paper's list, plus the standard SQL
//! aggregates it mentions): `CHOOSE(source)`, `COALESCE`, `FIRST`, `LAST`,
//! `VOTE`, `GROUP`, `CONCAT`, annotated `CONCAT`, `SHORTEST`, `LONGEST`,
//! `MOST RECENT`, `MIN`, `MAX`, `SUM`, `AVG`, `MEDIAN`, `COUNT`.

use crate::context::ConflictContext;
use crate::error::FusionError;
use hummer_engine::Value;

/// Result alias for resolution functions.
pub type Result<T> = std::result::Result<T, FusionError>;

/// A resolved cell: the merged value and the cluster-tuple indices that
/// supplied it (empty when the value was synthesized, e.g. a `SUM`).
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved {
    /// The merged value.
    pub value: Value,
    /// Indices (within the cluster) of contributing tuples.
    pub contributors: Vec<usize>,
}

impl Resolved {
    /// A resolved value with contributors.
    pub fn new(value: Value, contributors: Vec<usize>) -> Self {
        Resolved {
            value,
            contributors,
        }
    }

    /// A synthesized value: derived from all tuples rather than taken from
    /// one (aggregates, concatenations).
    pub fn synthesized(value: Value, ctx: &ConflictContext<'_>) -> Self {
        Resolved {
            value,
            contributors: ctx.non_null_values().iter().map(|(i, _)| *i).collect(),
        }
    }
}

/// A conflict resolution function.
///
/// "Conflict resolution is implemented as user defined aggregation"
/// (§2.4) — implementors get the whole context, not just the value list,
/// and the registry makes the system extensible ("of course HumMer is
/// extensible and new functions can be added").
pub trait ResolutionFunction: Send + Sync {
    /// Canonical lowercase name (what Fuse By queries call).
    fn name(&self) -> &str;

    /// Merge one column of one cluster.
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved>;
}

/// How [`Vote`] breaks ties between equally frequent values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// The value whose first occurrence comes earliest (deterministic
    /// stand-in for the paper's "choosing randomly").
    #[default]
    FirstSeen,
    /// The smallest value under the engine's total order.
    Least,
    /// The largest value under the engine's total order.
    Greatest,
}

// ---------------------------------------------------------------------------
// Value-picking functions
// ---------------------------------------------------------------------------

/// `COALESCE` — the first non-null value (the Fuse By default).
#[derive(Debug, Default, Clone, Copy)]
pub struct Coalesce;

impl ResolutionFunction for Coalesce {
    fn name(&self) -> &str {
        "coalesce"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        match ctx.non_null_values().first() {
            Some(&(i, v)) => Ok(Resolved::new(v.clone(), vec![i])),
            None => Ok(Resolved::new(Value::Null, vec![])),
        }
    }
}

/// `FIRST` — the first value, "even if it is a null value".
#[derive(Debug, Default, Clone, Copy)]
pub struct First;

impl ResolutionFunction for First {
    fn name(&self) -> &str {
        "first"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        match ctx.values().first() {
            Some(v) => Ok(Resolved::new((*v).clone(), vec![0])),
            None => Ok(Resolved::new(Value::Null, vec![])),
        }
    }
}

/// `LAST` — the last value, even if null.
#[derive(Debug, Default, Clone, Copy)]
pub struct Last;

impl ResolutionFunction for Last {
    fn name(&self) -> &str {
        "last"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let vals = ctx.values();
        match vals.last() {
            Some(v) => Ok(Resolved::new((*v).clone(), vec![vals.len() - 1])),
            None => Ok(Resolved::new(Value::Null, vec![])),
        }
    }
}

/// `CHOOSE(source)` — the value supplied by a specific source.
#[derive(Debug, Clone)]
pub struct Choose {
    /// The preferred source alias.
    pub source: String,
}

impl ResolutionFunction for Choose {
    fn name(&self) -> &str {
        "choose"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let rows = ctx.rows_from_source(&self.source);
        // First non-null value from the chosen source; NULL when the source
        // contributed nothing.
        for i in rows {
            let v = &ctx.rows[i][ctx.column_index];
            if !v.is_null() {
                return Ok(Resolved::new(v.clone(), vec![i]));
            }
        }
        Ok(Resolved::new(Value::Null, vec![]))
    }
}

/// `VOTE` — the most frequent non-null value; ties broken per [`TieBreak`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Vote {
    /// Tie-breaking strategy.
    pub tie_break: TieBreak,
}

impl ResolutionFunction for Vote {
    fn name(&self) -> &str {
        "vote"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let non_null = ctx.non_null_values();
        if non_null.is_empty() {
            return Ok(Resolved::new(Value::Null, vec![]));
        }
        // Count occurrences of each distinct value, tracking contributors.
        let mut groups: Vec<(&Value, Vec<usize>)> = Vec::new();
        for (i, v) in &non_null {
            match groups.iter_mut().find(|(g, _)| g.group_eq(v)) {
                Some((_, members)) => members.push(*i),
                None => groups.push((v, vec![*i])),
            }
        }
        let max_count = groups.iter().map(|(_, m)| m.len()).max().unwrap_or(0);
        let tied: Vec<&(&Value, Vec<usize>)> = groups
            .iter()
            .filter(|(_, m)| m.len() == max_count)
            .collect();
        let winner = match self.tie_break {
            TieBreak::FirstSeen => tied[0],
            TieBreak::Least => tied
                .iter()
                .min_by(|a, b| a.0.cmp_total(b.0))
                .expect("tied is non-empty"),
            TieBreak::Greatest => tied
                .iter()
                .max_by(|a, b| a.0.cmp_total(b.0))
                .expect("tied is non-empty"),
        };
        Ok(Resolved::new(winner.0.clone(), winner.1.clone()))
    }
}

/// `SHORTEST` / `LONGEST` — the value of minimum/maximum length under the
/// character-count length measure.
#[derive(Debug, Clone, Copy)]
pub struct ByLength {
    /// True → `LONGEST`, false → `SHORTEST`.
    pub longest: bool,
}

impl ResolutionFunction for ByLength {
    fn name(&self) -> &str {
        if self.longest {
            "longest"
        } else {
            "shortest"
        }
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let non_null = ctx.non_null_values();
        let best = non_null.iter().reduce(|acc, cur| {
            let la = acc.1.to_string().chars().count();
            let lc = cur.1.to_string().chars().count();
            let better = if self.longest { lc > la } else { lc < la };
            if better {
                cur
            } else {
                acc
            }
        });
        match best {
            Some(&(i, v)) => Ok(Resolved::new(v.clone(), vec![i])),
            None => Ok(Resolved::new(Value::Null, vec![])),
        }
    }
}

/// `MOST RECENT` — "recency is evaluated with the help of another attribute
/// or other metadata": picks the value whose tuple has the greatest value in
/// `recency_column` (typically a date). Tuples with `NULL` recency lose to
/// any dated tuple; ties go to the earlier tuple.
#[derive(Debug, Clone)]
pub struct MostRecent {
    /// The companion attribute carrying recency (date or numeric).
    pub recency_column: String,
}

impl ResolutionFunction for MostRecent {
    fn name(&self) -> &str {
        "mostrecent"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        if ctx.schema.index_of(&self.recency_column).is_none() {
            return Err(FusionError::BadArgument(format!(
                "MOST RECENT: no such recency column `{}`",
                self.recency_column
            )));
        }
        let non_null = ctx.non_null_values();
        let best = non_null
            .iter()
            .map(|&(i, v)| {
                let rec = ctx
                    .companion_value(i, &self.recency_column)
                    .cloned()
                    .unwrap_or(Value::Null);
                (i, v, rec)
            })
            .max_by(|a, b| {
                // NULL recency sorts lowest; then engine order; earlier
                // tuple wins ties (max_by keeps the last maximal → compare
                // index descending as final key).
                let rec_ord = match (a.2.is_null(), b.2.is_null()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => a.2.cmp_total(&b.2),
                };
                rec_ord.then(b.0.cmp(&a.0))
            });
        match best {
            Some((i, v, _)) => Ok(Resolved::new(v.clone(), vec![i])),
            None => Ok(Resolved::new(Value::Null, vec![])),
        }
    }
}

// ---------------------------------------------------------------------------
// Value-synthesizing functions
// ---------------------------------------------------------------------------

/// `GROUP` — "returns a set of all conflicting values and leaves resolution
/// to the user". Rendered as `{v1, v2, …}` over the distinct non-null
/// values in first-seen order.
#[derive(Debug, Default, Clone, Copy)]
pub struct Group;

impl ResolutionFunction for Group {
    fn name(&self) -> &str {
        "group"
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let non_null = ctx.non_null_values();
        if non_null.is_empty() {
            return Ok(Resolved::new(Value::Null, vec![]));
        }
        let mut distinct: Vec<&Value> = Vec::new();
        for (_, v) in &non_null {
            if !distinct.iter().any(|d| d.group_eq(v)) {
                distinct.push(v);
            }
        }
        if distinct.len() == 1 {
            // No conflict: hand back the single value unchanged.
            return Ok(Resolved::new(distinct[0].clone(), vec![non_null[0].0]));
        }
        let body = distinct
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        Ok(Resolved::synthesized(
            Value::Text(format!("{{{body}}}")),
            ctx,
        ))
    }
}

/// `CONCAT` / annotated `CONCAT` — all non-null values joined by a
/// separator; the annotated form appends each value's source
/// ("including annotations, such as the data source").
#[derive(Debug, Clone)]
pub struct Concat {
    /// Separator between values.
    pub separator: String,
    /// Append `[source]` annotations.
    pub annotated: bool,
}

impl Default for Concat {
    fn default() -> Self {
        Concat {
            separator: " | ".into(),
            annotated: false,
        }
    }
}

impl ResolutionFunction for Concat {
    fn name(&self) -> &str {
        if self.annotated {
            "annotatedconcat"
        } else {
            "concat"
        }
    }
    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let non_null = ctx.non_null_values();
        if non_null.is_empty() {
            return Ok(Resolved::new(Value::Null, vec![]));
        }
        let parts: Vec<String> = non_null
            .iter()
            .map(|&(i, v)| {
                if self.annotated {
                    let src = ctx.source_ids[i].as_deref().unwrap_or("?");
                    format!("{v} [{src}]")
                } else {
                    v.to_string()
                }
            })
            .collect();
        Ok(Resolved::synthesized(
            Value::Text(parts.join(&self.separator)),
            ctx,
        ))
    }
}

/// The numeric/ordering aggregates the paper inherits from SQL:
/// `MIN`, `MAX`, `SUM`, `AVG`, `MEDIAN`, `COUNT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericAggregate {
    /// Smallest non-null value (any type, engine order).
    Min,
    /// Largest non-null value.
    Max,
    /// Sum of numeric values.
    Sum,
    /// Mean of numeric values.
    Avg,
    /// Median of numeric values (midpoint average for even counts).
    Median,
    /// Count of non-null values.
    Count,
}

impl ResolutionFunction for NumericAggregate {
    fn name(&self) -> &str {
        match self {
            NumericAggregate::Min => "min",
            NumericAggregate::Max => "max",
            NumericAggregate::Sum => "sum",
            NumericAggregate::Avg => "avg",
            NumericAggregate::Median => "median",
            NumericAggregate::Count => "count",
        }
    }

    fn resolve(&self, ctx: &ConflictContext<'_>) -> Result<Resolved> {
        let non_null = ctx.non_null_values();
        match self {
            NumericAggregate::Count => Ok(Resolved::synthesized(
                Value::Int(non_null.len() as i64),
                ctx,
            )),
            NumericAggregate::Min | NumericAggregate::Max => {
                let best = if *self == NumericAggregate::Min {
                    non_null.iter().min_by(|a, b| a.1.cmp_total(b.1))
                } else {
                    non_null.iter().max_by(|a, b| a.1.cmp_total(b.1))
                };
                match best {
                    Some(&(i, v)) => Ok(Resolved::new(v.clone(), vec![i])),
                    None => Ok(Resolved::new(Value::Null, vec![])),
                }
            }
            NumericAggregate::Sum | NumericAggregate::Avg | NumericAggregate::Median => {
                if non_null.is_empty() {
                    return Ok(Resolved::new(Value::Null, vec![]));
                }
                let mut nums = Vec::with_capacity(non_null.len());
                let mut all_int = true;
                for (_, v) in &non_null {
                    match v {
                        Value::Int(i) => nums.push(*i as f64),
                        Value::Float(f) => {
                            all_int = false;
                            nums.push(*f);
                        }
                        other => {
                            return Err(FusionError::TypeError(format!(
                                "{} over non-numeric value `{other}` in column `{}`",
                                self.name().to_uppercase(),
                                ctx.column
                            )))
                        }
                    }
                }
                let value = match self {
                    NumericAggregate::Sum => {
                        let s: f64 = nums.iter().sum();
                        if all_int {
                            Value::Int(s as i64)
                        } else {
                            Value::Float(s)
                        }
                    }
                    NumericAggregate::Avg => {
                        Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                    }
                    NumericAggregate::Median => {
                        nums.sort_by(f64::total_cmp);
                        let n = nums.len();
                        let m = if n % 2 == 1 {
                            nums[n / 2]
                        } else {
                            (nums[n / 2 - 1] + nums[n / 2]) / 2.0
                        };
                        if all_int && m.fract() == 0.0 {
                            Value::Int(m as i64)
                        } else {
                            Value::Float(m)
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(Resolved::synthesized(value, ctx))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{row, Row, Schema};

    fn schema() -> Schema {
        Schema::of_names(&["Name", "Age", "Updated", "sourceID"]).unwrap()
    }

    fn rows() -> Vec<Row> {
        vec![
            row![
                "Jon Smith",
                33,
                hummer_engine::Date::parse("2005-01-10").unwrap(),
                "A"
            ],
            row![
                "John Smith",
                34,
                hummer_engine::Date::parse("2005-03-02").unwrap(),
                "B"
            ],
            row![(), 34, (), "C"],
        ]
    }

    fn ctx<'a>(schema: &'a Schema, rows: &'a [Row], col: usize) -> ConflictContext<'a> {
        ConflictContext {
            table_name: "T",
            schema,
            column: schema.column(col).name.as_str(),
            column_index: col,
            rows: rows.iter().collect(),
            source_ids: rows.iter().map(|r| r[3].as_text()).collect(),
        }
    }

    #[test]
    fn coalesce_takes_first_non_null() {
        let s = schema();
        let r = rows();
        let out = Coalesce.resolve(&ctx(&s, &r, 0)).unwrap();
        assert_eq!(out.value, Value::text("Jon Smith"));
        assert_eq!(out.contributors, vec![0]);
    }

    #[test]
    fn coalesce_all_null_is_null() {
        let s = schema();
        let r = vec![row![(), (), (), "A"]];
        let out = Coalesce.resolve(&ctx(&s, &r, 0)).unwrap();
        assert!(out.value.is_null());
        assert!(out.contributors.is_empty());
    }

    #[test]
    fn first_takes_null_too() {
        let s = schema();
        let r = vec![row![(), 1, (), "A"], row!["x", 2, (), "B"]];
        let out = First.resolve(&ctx(&s, &r, 0)).unwrap();
        assert!(
            out.value.is_null(),
            "FIRST must take the first value even if NULL"
        );
        let last = Last.resolve(&ctx(&s, &r, 0)).unwrap();
        assert_eq!(last.value, Value::text("x"));
        assert_eq!(last.contributors, vec![1]);
    }

    #[test]
    fn choose_prefers_named_source() {
        let s = schema();
        let r = rows();
        let out = Choose { source: "B".into() }
            .resolve(&ctx(&s, &r, 1))
            .unwrap();
        assert_eq!(out.value, Value::Int(34));
        assert_eq!(out.contributors, vec![1]);
        // Source with only a NULL in this column → NULL.
        let none = Choose { source: "C".into() }
            .resolve(&ctx(&s, &r, 0))
            .unwrap();
        assert!(none.value.is_null());
        // Unknown source → NULL.
        let unk = Choose {
            source: "ZZ".into(),
        }
        .resolve(&ctx(&s, &r, 0))
        .unwrap();
        assert!(unk.value.is_null());
    }

    #[test]
    fn vote_majority_and_ties() {
        let s = schema();
        let r = rows();
        let out = Vote::default().resolve(&ctx(&s, &r, 1)).unwrap();
        assert_eq!(out.value, Value::Int(34)); // 34 appears twice
        assert_eq!(out.contributors, vec![1, 2]);

        // Tie: 33 and 34 once each → FirstSeen picks 33, Greatest picks 34.
        let r2 = vec![row!["a", 33, (), "A"], row!["b", 34, (), "B"]];
        let first = Vote {
            tie_break: TieBreak::FirstSeen,
        }
        .resolve(&ctx(&s, &r2, 1))
        .unwrap();
        assert_eq!(first.value, Value::Int(33));
        let hi = Vote {
            tie_break: TieBreak::Greatest,
        }
        .resolve(&ctx(&s, &r2, 1))
        .unwrap();
        assert_eq!(hi.value, Value::Int(34));
        let lo = Vote {
            tie_break: TieBreak::Least,
        }
        .resolve(&ctx(&s, &r2, 1))
        .unwrap();
        assert_eq!(lo.value, Value::Int(33));
    }

    #[test]
    fn shortest_longest() {
        let s = schema();
        let r = rows();
        let sh = ByLength { longest: false }
            .resolve(&ctx(&s, &r, 0))
            .unwrap();
        assert_eq!(sh.value, Value::text("Jon Smith"));
        let lo = ByLength { longest: true }.resolve(&ctx(&s, &r, 0)).unwrap();
        assert_eq!(lo.value, Value::text("John Smith"));
    }

    #[test]
    fn most_recent_follows_companion_date() {
        let s = schema();
        let r = rows();
        let f = MostRecent {
            recency_column: "Updated".into(),
        };
        let out = f.resolve(&ctx(&s, &r, 1)).unwrap();
        // Row 1 has the latest Updated and Age 34.
        assert_eq!(out.value, Value::Int(34));
        assert_eq!(out.contributors, vec![1]);
    }

    #[test]
    fn most_recent_null_recency_loses() {
        let s = schema();
        let r = vec![
            row![
                "old",
                1,
                hummer_engine::Date::parse("2001-01-01").unwrap(),
                "A"
            ],
            row!["undated", 2, (), "B"],
        ];
        let f = MostRecent {
            recency_column: "Updated".into(),
        };
        let out = f.resolve(&ctx(&s, &r, 0)).unwrap();
        assert_eq!(out.value, Value::text("old"));
    }

    #[test]
    fn most_recent_missing_column_errors() {
        let s = schema();
        let r = rows();
        let f = MostRecent {
            recency_column: "zz".into(),
        };
        assert!(f.resolve(&ctx(&s, &r, 0)).is_err());
    }

    #[test]
    fn group_renders_distinct_set() {
        let s = schema();
        let r = rows();
        let out = Group.resolve(&ctx(&s, &r, 1)).unwrap();
        assert_eq!(out.value, Value::text("{33, 34}"));
        // Single distinct value passes through un-bracketed.
        let single = vec![row!["x", 7, (), "A"], row!["y", 7, (), "B"]];
        let out1 = Group.resolve(&ctx(&s, &single, 1)).unwrap();
        assert_eq!(out1.value, Value::Int(7));
    }

    #[test]
    fn concat_plain_and_annotated() {
        let s = schema();
        let r = rows();
        let plain = Concat::default().resolve(&ctx(&s, &r, 1)).unwrap();
        assert_eq!(plain.value, Value::text("33 | 34 | 34"));
        let ann = Concat {
            separator: "; ".into(),
            annotated: true,
        }
        .resolve(&ctx(&s, &r, 1))
        .unwrap();
        assert_eq!(ann.value, Value::text("33 [A]; 34 [B]; 34 [C]"));
    }

    #[test]
    fn numeric_aggregates() {
        let s = schema();
        let r = rows();
        let c = ctx(&s, &r, 1);
        assert_eq!(
            NumericAggregate::Min.resolve(&c).unwrap().value,
            Value::Int(33)
        );
        assert_eq!(
            NumericAggregate::Max.resolve(&c).unwrap().value,
            Value::Int(34)
        );
        assert_eq!(
            NumericAggregate::Sum.resolve(&c).unwrap().value,
            Value::Int(101)
        );
        assert_eq!(
            NumericAggregate::Avg.resolve(&c).unwrap().value,
            Value::Float(101.0 / 3.0)
        );
        assert_eq!(
            NumericAggregate::Median.resolve(&c).unwrap().value,
            Value::Int(34)
        );
        assert_eq!(
            NumericAggregate::Count.resolve(&c).unwrap().value,
            Value::Int(3)
        );
    }

    #[test]
    fn median_even_count_averages() {
        let s = schema();
        let r = vec![row!["a", 1, (), "A"], row!["b", 4, (), "B"]];
        let out = NumericAggregate::Median.resolve(&ctx(&s, &r, 1)).unwrap();
        assert_eq!(out.value, Value::Float(2.5));
    }

    #[test]
    fn sum_over_text_errors() {
        let s = schema();
        let r = rows();
        let e = NumericAggregate::Sum.resolve(&ctx(&s, &r, 0));
        assert!(e.is_err());
    }

    #[test]
    fn aggregates_of_empty_cluster_are_null() {
        let s = schema();
        let r: Vec<Row> = vec![];
        let c = ConflictContext {
            table_name: "T",
            schema: &s,
            column: "Age",
            column_index: 1,
            rows: vec![],
            source_ids: vec![],
        };
        drop(r);
        assert!(NumericAggregate::Sum.resolve(&c).unwrap().value.is_null());
        assert!(NumericAggregate::Min.resolve(&c).unwrap().value.is_null());
        assert_eq!(
            NumericAggregate::Count.resolve(&c).unwrap().value,
            Value::Int(0)
        );
        assert!(Vote::default().resolve(&c).unwrap().value.is_null());
        assert!(Group.resolve(&c).unwrap().value.is_null());
        assert!(Concat::default().resolve(&c).unwrap().value.is_null());
    }
}
