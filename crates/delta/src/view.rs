//! An incrementally maintained fused view.
//!
//! [`FusedView`] pins a fusion query (resolution functions over the
//! `objectID`-annotated union) and keeps its result current across deltas
//! by re-resolving **only dirty clusters** — clusters that gained, lost, or
//! changed a member — while clean clusters are served from the fusion memo
//! with their lineage remapped. The maintained table is byte-identical to
//! fusing the updated annotated input from scratch.
//!
//! Dirtiness is decided here, conservatively and self-containedly: the view
//! snapshots the annotated input it reflects, so a cluster is reused only
//! when its (remapped) membership matches an old cluster exactly *and*
//! every member row's contents — all columns except the `objectID` label,
//! which legitimately renumbers — are equal to the snapshot. No trust in
//! the caller's bookkeeping is required for correctness.

use hummer_dupdetect::{DetectionResult, RowMapping, OBJECT_ID_COLUMN};
use hummer_engine::Table;
use hummer_fusion::fuse::SOURCE_ID_COLUMN;
use hummer_fusion::{
    fuse_incremental, fuse_memo, ClusterPlan, FunctionRegistry, FusedTable, FusionError,
    FusionMemo, FusionSpec, IncrementalFusionStats, Parallelism, ResolutionSpec,
};

/// Work counters of one [`FusedView::apply_delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedViewStats {
    /// Per-cluster reuse/recompute counts.
    pub fusion: IncrementalFusionStats,
    /// True when nothing could be reused (e.g. the union schema changed).
    pub full_refresh: bool,
}

/// A fused result kept current under deltas by dirty-cluster re-resolution.
#[derive(Debug, Clone)]
pub struct FusedView {
    resolutions: Vec<(String, ResolutionSpec)>,
    par: Parallelism,
    /// Snapshot of the annotated input the current result reflects.
    annotated: Table,
    /// Snapshot of the duplicate clusters over that input.
    clusters: Vec<Vec<usize>>,
    cluster_ids: Vec<usize>,
    memo: FusionMemo,
    fused: FusedTable,
}

impl FusedView {
    /// Build the view: fuse `annotated` by `objectID` (bookkeeping columns
    /// dropped, as the automatic pipeline does) with the given per-column
    /// resolutions, memoizing every cluster.
    pub fn new(
        annotated: &Table,
        detection: &DetectionResult,
        resolutions: &[(String, ResolutionSpec)],
        registry: &FunctionRegistry,
        par: Parallelism,
    ) -> Result<FusedView, FusionError> {
        let spec = Self::spec(resolutions, par);
        let (fused, memo) = fuse_memo(annotated, &spec, registry)?;
        Ok(FusedView {
            resolutions: resolutions.to_vec(),
            par,
            annotated: annotated.clone(),
            clusters: detection.clusters.clone(),
            cluster_ids: detection.cluster_ids.clone(),
            memo,
            fused,
        })
    }

    fn spec(resolutions: &[(String, ResolutionSpec)], par: Parallelism) -> FusionSpec {
        let mut spec = FusionSpec::by_key(vec![OBJECT_ID_COLUMN])
            .drop_column(OBJECT_ID_COLUMN)
            .drop_column(SOURCE_ID_COLUMN)
            .with_parallelism(par);
        for (col, rspec) in resolutions {
            spec = spec.resolve(col.clone(), rspec.clone());
        }
        spec
    }

    /// The maintained fused result.
    pub fn fused(&self) -> &FusedTable {
        &self.fused
    }

    /// The maintained fused table (shorthand for `fused().table`).
    pub fn table(&self) -> &Table {
        &self.fused.table
    }

    /// The resolutions the view was built with.
    pub fn resolutions(&self) -> &[(String, ResolutionSpec)] {
        &self.resolutions
    }

    /// Bring the view up to date with the post-delta `annotated` input and
    /// its `detection`, where `mapping` relates old and new rows. Only
    /// dirty clusters re-run their resolution functions; the result is
    /// byte-identical to fusing `annotated` from scratch.
    pub fn apply_delta(
        &mut self,
        annotated: &Table,
        detection: &DetectionResult,
        mapping: &RowMapping,
        registry: &FunctionRegistry,
    ) -> Result<FusedViewStats, FusionError> {
        if mapping.old_len() != self.annotated.len() || mapping.new_len() != annotated.len() {
            return Err(FusionError::BadArgument(format!(
                "row mapping shape ({} -> {}) does not match the view ({} -> {})",
                mapping.old_len(),
                mapping.new_len(),
                self.annotated.len(),
                annotated.len()
            )));
        }
        let spec = Self::spec(&self.resolutions, self.par);

        // The union schema can change when matching decisions change; then
        // old fused rows describe different columns and nothing is safe to
        // reuse.
        let same_schema = annotated.schema().names() == self.annotated.schema().names();
        let object_col = annotated.resolve(OBJECT_ID_COLUMN)?;

        let plans: Vec<ClusterPlan> = detection
            .clusters
            .iter()
            .map(|members| {
                if !same_schema {
                    return ClusterPlan::Recompute;
                }
                self.reusable_cluster(annotated, mapping, members, object_col)
                    .map_or(ClusterPlan::Recompute, |old| ClusterPlan::Reuse { old })
            })
            .collect();

        let (fused, memo, fusion_stats) = fuse_incremental(
            annotated,
            &spec,
            registry,
            &plans,
            &self.memo,
            &mapping.old_to_new,
        )?;

        self.annotated = annotated.clone();
        self.clusters = detection.clusters.clone();
        self.cluster_ids = detection.cluster_ids.clone();
        self.memo = memo;
        self.fused = fused;
        Ok(FusedViewStats {
            fusion: fusion_stats,
            full_refresh: !same_schema,
        })
    }

    /// The old cluster index this new cluster can reuse, if any: identical
    /// (remapped) membership and bit-for-bit member contents outside the
    /// `objectID` label.
    fn reusable_cluster(
        &self,
        annotated: &Table,
        mapping: &RowMapping,
        members: &[usize],
        object_col: usize,
    ) -> Option<usize> {
        let old_members: Vec<usize> = members
            .iter()
            .map(|&m| mapping.new_to_old[m])
            .collect::<Option<_>>()?;
        let old_cid = self.cluster_ids[old_members[0]];
        if self.clusters[old_cid] != old_members {
            return None;
        }
        let width = annotated.schema().len();
        if width != self.annotated.schema().len() {
            return None;
        }
        for (&new_m, &old_m) in members.iter().zip(&old_members) {
            let new_row = &annotated.rows()[new_m];
            let old_row = &self.annotated.rows()[old_m];
            for col in 0..width {
                if col == object_col {
                    continue; // cluster labels legitimately renumber
                }
                if new_row[col] != old_row[col] {
                    return None;
                }
            }
        }
        Some(old_cid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableDelta;
    use hummer_dupdetect::{annotate_object_ids, detect_delta, detect_duplicates, DetectorConfig};
    use hummer_engine::{table, Value};
    use hummer_fusion::fuse;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            threshold: 0.7,
            unsure_threshold: 0.55,
            ..Default::default()
        }
    }

    fn annotated_for(t: &Table) -> (Table, DetectionResult) {
        let d = detect_duplicates(t, &cfg()).unwrap();
        (annotate_object_ids(t, &d).unwrap(), d)
    }

    fn source() -> Table {
        table! {
            "People" => ["Name", "City", "Age", "sourceID"];
            ["John Smith", "Berlin", 34, "A"],
            ["Jon Smith", "Berlin", 34, "B"],
            ["Mary Jones", "Hamburg", 28, "A"],
            ["Peter Miller", "Munich", 45, "B"],
        }
    }

    fn assert_fused_eq(a: &FusedTable, b: &FusedTable) {
        assert_eq!(a.table.rows(), b.table.rows());
        assert_eq!(a.table.schema().names(), b.table.schema().names());
        assert_eq!(a.conflict_count, b.conflict_count);
        assert_eq!(a.sample_conflicts, b.sample_conflicts);
        for row in 0..a.table.len() {
            for col in 0..a.table.schema().len() {
                assert_eq!(a.lineage.cell(row, col), b.lineage.cell(row, col));
            }
        }
    }

    #[test]
    fn view_tracks_deltas_and_matches_scratch() {
        let registry = FunctionRegistry::standard();
        let t0 = source();
        let (a0, d0) = annotated_for(&t0);
        let resolutions = vec![("Age".to_string(), ResolutionSpec::named("max"))];
        let mut view =
            FusedView::new(&a0, &d0, &resolutions, &registry, Parallelism::sequential()).unwrap();
        assert_eq!(view.resolutions().len(), 1);
        assert_eq!(view.table().len(), 3); // Smiths fuse

        // Update Peter's age, everything else untouched.
        let delta = TableDelta::new("People").update(
            3,
            vec![
                Value::text("Peter Miller"),
                Value::text("Munich"),
                Value::Int(46),
                Value::text("B"),
            ],
        );
        let (t1, mapping) = delta.apply(&t0).unwrap();
        let (d1, _) =
            detect_delta(&t0, &d0, &t1, &mapping, &cfg(), Parallelism::sequential()).unwrap();
        let a1 = annotate_object_ids(&t1, &d1).unwrap();
        let stats = view.apply_delta(&a1, &d1, &mapping, &registry).unwrap();
        assert!(!stats.full_refresh);
        assert!(stats.fusion.reused >= 1, "{stats:?}");
        assert!(stats.fusion.recomputed >= 1);

        let spec_check = fuse(
            &a1,
            &FusedView::spec(&resolutions, Parallelism::sequential()),
            &registry,
        )
        .unwrap();
        assert_fused_eq(view.fused(), &spec_check);
    }

    #[test]
    fn delete_dissolves_only_its_cluster() {
        let registry = FunctionRegistry::standard();
        let t0 = source();
        let (a0, d0) = annotated_for(&t0);
        let mut view = FusedView::new(&a0, &d0, &[], &registry, Parallelism::sequential()).unwrap();

        let delta = TableDelta::new("People").delete(2); // drop Mary
        let (t1, mapping) = delta.apply(&t0).unwrap();
        let (d1, _) =
            detect_delta(&t0, &d0, &t1, &mapping, &cfg(), Parallelism::sequential()).unwrap();
        let a1 = annotate_object_ids(&t1, &d1).unwrap();
        let stats = view.apply_delta(&a1, &d1, &mapping, &registry).unwrap();
        let scratch = fuse(
            &a1,
            &FusedView::spec(&[], Parallelism::sequential()),
            &registry,
        )
        .unwrap();
        assert_fused_eq(view.fused(), &scratch);
        // Deleting a 6-row-table row moves the (exact) corpus counts, so
        // detection re-scores broadly — but cluster membership for the
        // Smiths and Peter is unchanged, and fusion reuses them.
        assert!(stats.fusion.reused >= 1, "{stats:?}");
    }

    #[test]
    fn mapping_shape_validated() {
        let registry = FunctionRegistry::standard();
        let t0 = source();
        let (a0, d0) = annotated_for(&t0);
        let mut view = FusedView::new(&a0, &d0, &[], &registry, Parallelism::sequential()).unwrap();
        let bad = RowMapping::identity(2);
        assert!(view.apply_delta(&a0, &d0, &bad, &registry).is_err());
    }
}
