//! Row-mapping composition across the pipeline's row spaces.
//!
//! A [`TableDelta`](crate::TableDelta) yields a [`RowMapping`] over one
//! source table, but the incremental detector works over the *integrated*
//! table — the outer union that concatenates all sources in query order.
//! [`concat_mappings`] lifts per-source mappings into that union row space.

use hummer_dupdetect::RowMapping;
use hummer_engine::Result;

/// Concatenate per-source row mappings (in source/query order) into the
/// mapping over the integrated (outer-union) table, whose rows are the
/// sources' rows back to back.
///
/// # Example
///
/// ```
/// use hummer_delta::{concat_mappings, RowMapping};
///
/// // Source 0 unchanged (2 rows); source 1 deleted its row 0 of 2.
/// let m = concat_mappings(&[
///     RowMapping::identity(2),
///     RowMapping::new(vec![None, Some(0)], 1).unwrap(),
/// ])
/// .unwrap();
/// assert_eq!(m.old_to_new, vec![Some(0), Some(1), None, Some(2)]);
/// assert_eq!(m.new_len(), 3);
/// ```
pub fn concat_mappings(per_source: &[RowMapping]) -> Result<RowMapping> {
    let total_new: usize = per_source.iter().map(|m| m.new_len()).sum();
    let mut old_to_new = Vec::with_capacity(per_source.iter().map(|m| m.old_len()).sum());
    let mut new_offset = 0usize;
    for m in per_source {
        for n in &m.old_to_new {
            old_to_new.push(n.map(|n| n + new_offset));
        }
        new_offset += m.new_len();
    }
    RowMapping::new(old_to_new, total_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_accumulate_per_source() {
        // s0: 2 rows, row 1 deleted; s1: 1 row + 1 insert; s2: identity 2.
        let m = concat_mappings(&[
            RowMapping::new(vec![Some(0), None], 1).unwrap(),
            RowMapping::new(vec![Some(0)], 2).unwrap(),
            RowMapping::identity(2),
        ])
        .unwrap();
        assert_eq!(m.old_len(), 5);
        assert_eq!(m.new_len(), 5);
        assert_eq!(m.old_to_new, vec![Some(0), None, Some(1), Some(3), Some(4)]);
        // The insert in s1 lands at union index 2.
        assert_eq!(m.new_to_old[2], None);
        assert_eq!(m.inserted(), 1);
        assert_eq!(m.deleted(), 1);
    }

    #[test]
    fn empty_input_is_empty_mapping() {
        let m = concat_mappings(&[]).unwrap();
        assert_eq!(m.old_len(), 0);
        assert_eq!(m.new_len(), 0);
    }
}
