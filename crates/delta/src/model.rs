//! The delta model: row-level changes to one source table.
//!
//! A [`TableDelta`] names a source and carries a batch of [`DeltaOp`]s. All
//! row indices refer to the table **as it was before the delta** (stable
//! addressing: the ops in one batch never shift each other's targets).
//! Application order within a batch is: updates in place, deletes, then
//! inserts appended at the end — which keeps surviving rows in their
//! original relative order, the monotonicity the incremental detector's
//! [`RowMapping`] requires.

use hummer_dupdetect::RowMapping;
use hummer_engine::{Row, Table, Value};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// One row-level change. Indices address the pre-delta table.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Append a new row (at the end of the table).
    Insert(Vec<Value>),
    /// Replace row `row`'s values in place.
    Update {
        /// Pre-delta row index.
        row: usize,
        /// The row's new values (full arity).
        values: Vec<Value>,
    },
    /// Remove row `row`.
    Delete {
        /// Pre-delta row index.
        row: usize,
    },
}

/// A batch of changes to one named source table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableDelta {
    /// The source table (catalog alias) the delta applies to.
    pub table: String,
    /// The changes, in the order they were submitted.
    pub ops: Vec<DeltaOp>,
}

/// Counts of the three op kinds in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaCounts {
    /// Rows inserted.
    pub inserted: usize,
    /// Rows updated.
    pub updated: usize,
    /// Rows deleted.
    pub deleted: usize,
}

impl DeltaCounts {
    /// Total rows touched.
    pub fn total(&self) -> usize {
        self.inserted + self.updated + self.deleted
    }
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An op addressed a row outside the table.
    RowOutOfBounds {
        /// The offending index.
        row: usize,
        /// The table's row count.
        len: usize,
    },
    /// Two ops addressed the same row.
    ConflictingOps {
        /// The doubly-addressed index.
        row: usize,
    },
    /// An inserted or updated row has the wrong number of values.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        actual: usize,
    },
    /// The delta body could not be understood (server-side parse).
    Malformed(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::RowOutOfBounds { row, len } => {
                write!(f, "delta row {row} out of bounds (table has {len} rows)")
            }
            DeltaError::ConflictingOps { row } => {
                write!(f, "delta addresses row {row} more than once")
            }
            DeltaError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "delta row has {actual} values, table has {expected} columns"
                )
            }
            DeltaError::Malformed(msg) => write!(f, "malformed delta: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl TableDelta {
    /// An empty delta against `table`.
    pub fn new(table: impl Into<String>) -> Self {
        TableDelta {
            table: table.into(),
            ops: Vec::new(),
        }
    }

    /// Append an insert op (builder style).
    pub fn insert(mut self, values: Vec<Value>) -> Self {
        self.ops.push(DeltaOp::Insert(values));
        self
    }

    /// Append an update op (builder style).
    pub fn update(mut self, row: usize, values: Vec<Value>) -> Self {
        self.ops.push(DeltaOp::Update { row, values });
        self
    }

    /// Append a delete op (builder style).
    pub fn delete(mut self, row: usize) -> Self {
        self.ops.push(DeltaOp::Delete { row });
        self
    }

    /// True when the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count the ops by kind.
    pub fn counts(&self) -> DeltaCounts {
        let mut c = DeltaCounts::default();
        for op in &self.ops {
            match op {
                DeltaOp::Insert(_) => c.inserted += 1,
                DeltaOp::Update { .. } => c.updated += 1,
                DeltaOp::Delete { .. } => c.deleted += 1,
            }
        }
        c
    }

    /// Apply the batch to `table`, producing the updated table and the
    /// [`RowMapping`] from old to new row indices.
    ///
    /// The new table keeps the schema (types re-inferred from the data,
    /// exactly as a fresh load of the updated content would) and the name.
    ///
    /// # Example
    ///
    /// ```
    /// use hummer_delta::TableDelta;
    /// use hummer_engine::{table, Value};
    ///
    /// let t = table! {
    ///     "People" => ["Name", "Age"];
    ///     ["John Smith", 24],
    ///     ["Mary Jones", 22],
    /// };
    /// let delta = TableDelta::new("People")
    ///     .update(0, vec![Value::text("John Smith"), Value::Int(25)])
    ///     .insert(vec![Value::text("Grace Hopper"), Value::Int(37)]);
    /// let (updated, mapping) = delta.apply(&t).unwrap();
    /// assert_eq!(updated.len(), 3);
    /// assert_eq!(updated.cell(0, 1), &Value::Int(25));
    /// assert_eq!(mapping.old_to_new, vec![Some(0), Some(1)]);
    /// assert_eq!(mapping.inserted(), 1);
    /// ```
    pub fn apply(&self, table: &Table) -> Result<(Table, RowMapping), DeltaError> {
        let len = table.len();
        let arity = table.schema().len();
        let mut updates: BTreeMap<usize, &Vec<Value>> = BTreeMap::new();
        let mut deletes: BTreeSet<usize> = BTreeSet::new();
        let mut inserts: Vec<&Vec<Value>> = Vec::new();
        for op in &self.ops {
            match op {
                DeltaOp::Insert(values) => {
                    if values.len() != arity {
                        return Err(DeltaError::ArityMismatch {
                            expected: arity,
                            actual: values.len(),
                        });
                    }
                    inserts.push(values);
                }
                DeltaOp::Update { row, values } => {
                    if *row >= len {
                        return Err(DeltaError::RowOutOfBounds { row: *row, len });
                    }
                    if values.len() != arity {
                        return Err(DeltaError::ArityMismatch {
                            expected: arity,
                            actual: values.len(),
                        });
                    }
                    if deletes.contains(row) || updates.insert(*row, values).is_some() {
                        return Err(DeltaError::ConflictingOps { row: *row });
                    }
                }
                DeltaOp::Delete { row } => {
                    if *row >= len {
                        return Err(DeltaError::RowOutOfBounds { row: *row, len });
                    }
                    if updates.contains_key(row) || !deletes.insert(*row) {
                        return Err(DeltaError::ConflictingOps { row: *row });
                    }
                }
            }
        }

        let new_len = len - deletes.len() + inserts.len();
        let mut rows: Vec<Row> = Vec::with_capacity(new_len);
        let mut old_to_new: Vec<Option<usize>> = Vec::with_capacity(len);
        for (i, row) in table.rows().iter().enumerate() {
            if deletes.contains(&i) {
                old_to_new.push(None);
                continue;
            }
            old_to_new.push(Some(rows.len()));
            match updates.get(&i) {
                Some(values) => rows.push(Row::from_values((*values).clone())),
                None => rows.push(row.clone()),
            }
        }
        for values in inserts {
            rows.push(Row::from_values(values.clone()));
        }

        let mut out =
            Table::new(table.name(), table.schema().clone(), rows).expect("arity validated above");
        out.infer_types();
        let mapping = RowMapping::new(old_to_new, new_len).expect("construction is monotone");
        Ok((out, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn t() -> Table {
        table! {
            "T" => ["Name", "Age"];
            ["a", 1],
            ["b", 2],
            ["c", 3],
        }
    }

    #[test]
    fn mixed_batch_applies_with_mapping() {
        let delta = TableDelta::new("T")
            .delete(1)
            .update(2, vec![Value::text("c2"), Value::Int(30)])
            .insert(vec![Value::text("d"), Value::Int(4)]);
        let (out, mapping) = delta.apply(&t()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.cell(0, 0), &Value::text("a"));
        assert_eq!(out.cell(1, 0), &Value::text("c2"));
        assert_eq!(out.cell(1, 1), &Value::Int(30));
        assert_eq!(out.cell(2, 0), &Value::text("d"));
        assert_eq!(mapping.old_to_new, vec![Some(0), None, Some(1)]);
        assert_eq!(mapping.new_to_old, vec![Some(0), Some(2), None]);
        let counts = delta.counts();
        assert_eq!((counts.inserted, counts.updated, counts.deleted), (1, 1, 1));
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn indices_address_the_pre_delta_table() {
        // Deleting 0 does not shift the meaning of "row 2".
        let delta = TableDelta::new("T")
            .delete(0)
            .update(2, vec![Value::text("z"), Value::Int(9)]);
        let (out, _) = delta.apply(&t()).unwrap();
        assert_eq!(out.cell(0, 0), &Value::text("b"));
        assert_eq!(out.cell(1, 0), &Value::text("z"));
    }

    #[test]
    fn validation_errors() {
        let e = TableDelta::new("T").delete(9).apply(&t()).unwrap_err();
        assert!(matches!(e, DeltaError::RowOutOfBounds { row: 9, len: 3 }));
        let e = TableDelta::new("T")
            .delete(1)
            .update(1, vec![Value::text("x"), Value::Int(0)])
            .apply(&t())
            .unwrap_err();
        assert!(matches!(e, DeltaError::ConflictingOps { row: 1 }));
        let e = TableDelta::new("T")
            .delete(1)
            .delete(1)
            .apply(&t())
            .unwrap_err();
        assert!(matches!(e, DeltaError::ConflictingOps { row: 1 }));
        let e = TableDelta::new("T")
            .insert(vec![Value::Int(1)])
            .apply(&t())
            .unwrap_err();
        assert!(matches!(
            e,
            DeltaError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        ));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn empty_delta_is_identity() {
        let delta = TableDelta::new("T");
        assert!(delta.is_empty());
        let (out, mapping) = delta.apply(&t()).unwrap();
        assert_eq!(out.rows(), t().rows());
        assert_eq!(mapping, RowMapping::identity(3));
    }
}
