//! # hummer-delta — delta ingestion and incremental maintenance
//!
//! HumMer serves *autonomous, evolving* sources; this crate makes evolution
//! cheap. Instead of re-running the whole pipeline when a source changes,
//! a delta flows through three incremental layers, each bit-identical to a
//! from-scratch recompute over the updated data:
//!
//! * [`model`] — the [`TableDelta`] change model (insert / update / delete
//!   of rows, stable pre-delta addressing) and its application to a table,
//!   producing the [`RowMapping`] every downstream layer consumes;
//! * [`codec`] — the binary encode/decode of a batch, which doubles as the
//!   durable store's write-ahead-log record payload;
//! * [`mapping`] — lifting per-source mappings into the integrated
//!   (outer-union) row space with [`concat_mappings`];
//! * duplicate detection — `hummer_dupdetect::detect_delta` re-scores only
//!   pairs touching dirty rows and re-clusters only affected components
//!   (re-scoring honours `DetectorConfig::layout`, so the columnar kernel
//!   serves the incremental path too — its quantized-stat caches are built
//!   from the same `TupleSimilarity`, keeping carry-over bit-compatible);
//! * [`view`] — [`FusedView`], a fused result patched in place by
//!   re-resolving only dirty clusters through `hummer_fusion`'s cluster
//!   memo.
//!
//! The pipeline-level entry point is `hummer_core`'s
//! `PreparedSources::apply_delta`, and the serving layer upgrades its
//! prepared-pipeline cache entries through `POST /tables/{name}/delta` —
//! see `ARCHITECTURE.md` ("The delta subsystem") for the dataflow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod mapping;
pub mod model;
pub mod view;

pub use codec::{decode_delta, encode_delta};
pub use hummer_dupdetect::{DeltaDetectionStats, RowMapping};
pub use mapping::concat_mappings;
pub use model::{DeltaCounts, DeltaError, DeltaOp, TableDelta};
pub use view::{FusedView, FusedViewStats};
