//! Binary encode/decode of [`TableDelta`] batches — the WAL record payload
//! of the durable catalog store.
//!
//! A logged delta *is* the write-ahead-log record: the store frames these
//! bytes (length prefix + CRC) and recovery replays them through the same
//! [`TableDelta::apply`] that served the original request, so a recovered
//! table is byte-identical to the pre-crash one. Values ride on
//! `hummer_engine::codec`'s bit-exact value encoding.

use crate::model::{DeltaError, DeltaOp, TableDelta};
use hummer_engine::codec::{read_value, write_value, ByteReader, ByteWriter};
use hummer_engine::Value;

// Op tags. Stable on disk — append new tags, never renumber.
const TAG_INSERT: u8 = 0;
const TAG_UPDATE: u8 = 1;
const TAG_DELETE: u8 = 2;

fn write_values(w: &mut ByteWriter, values: &[Value]) {
    w.put_u32(values.len() as u32);
    for v in values {
        write_value(w, v);
    }
}

fn read_values(r: &mut ByteReader<'_>) -> Result<Vec<Value>, DeltaError> {
    let count = r
        .get_count(1, "delta row arity")
        .map_err(|e| DeltaError::Malformed(e.to_string()))?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(read_value(r).map_err(|e| DeltaError::Malformed(e.to_string()))?);
    }
    Ok(values)
}

/// Encode a delta batch (target table name, op count, then the ops in
/// submission order — order matters for conflict detection on replay).
pub fn encode_delta(w: &mut ByteWriter, delta: &TableDelta) {
    w.put_str(&delta.table);
    w.put_u32(delta.ops.len() as u32);
    for op in &delta.ops {
        match op {
            DeltaOp::Insert(values) => {
                w.put_u8(TAG_INSERT);
                write_values(w, values);
            }
            DeltaOp::Update { row, values } => {
                w.put_u8(TAG_UPDATE);
                w.put_u64(*row as u64);
                write_values(w, values);
            }
            DeltaOp::Delete { row } => {
                w.put_u8(TAG_DELETE);
                w.put_u64(*row as u64);
            }
        }
    }
}

/// Decode a delta batch encoded by [`encode_delta`]. Corruption surfaces as
/// [`DeltaError::Malformed`].
pub fn decode_delta(r: &mut ByteReader<'_>) -> Result<TableDelta, DeltaError> {
    let malformed = |e: hummer_engine::EngineError| DeltaError::Malformed(e.to_string());
    let table = r.get_str("delta table name").map_err(malformed)?;
    let op_count = r.get_count(1, "delta op count").map_err(malformed)?;
    let mut delta = TableDelta::new(table);
    for _ in 0..op_count {
        let op = match r.get_u8("delta op tag").map_err(malformed)? {
            TAG_INSERT => DeltaOp::Insert(read_values(r)?),
            TAG_UPDATE => {
                let row = r.get_u64("update row index").map_err(malformed)? as usize;
                DeltaOp::Update {
                    row,
                    values: read_values(r)?,
                }
            }
            TAG_DELETE => {
                let row = r.get_u64("delete row index").map_err(malformed)? as usize;
                DeltaOp::Delete { row }
            }
            other => return Err(DeltaError::Malformed(format!("bad delta op tag {other}"))),
        };
        delta.ops.push(op);
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::Date;

    fn round_trip(delta: &TableDelta) -> TableDelta {
        let mut w = ByteWriter::new();
        encode_delta(&mut w, delta);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_delta(&mut r).unwrap();
        r.expect_end("delta").unwrap();
        back
    }

    #[test]
    fn mixed_batch_round_trips() {
        let delta = TableDelta::new("CS_Students")
            .insert(vec![
                Value::text("Grace \"the\" Hopper,\nesq."),
                Value::Int(37),
                Value::Null,
            ])
            .update(
                3,
                vec![
                    Value::Float(-0.0),
                    Value::Bool(true),
                    Value::Date(Date::new(2005, 8, 30).unwrap()),
                ],
            )
            .delete(7);
        assert_eq!(round_trip(&delta), delta);
    }

    #[test]
    fn empty_batch_round_trips() {
        let delta = TableDelta::new("T");
        assert_eq!(round_trip(&delta), delta);
    }

    #[test]
    fn op_order_is_preserved() {
        let delta = TableDelta::new("T").delete(1).delete(0);
        let back = round_trip(&delta);
        assert_eq!(back.ops, delta.ops);
    }

    #[test]
    fn truncation_errors_cleanly() {
        let delta = TableDelta::new("T")
            .insert(vec![Value::Int(1), Value::text("x")])
            .delete(0);
        let mut w = ByteWriter::new();
        encode_delta(&mut w, &delta);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let outcome = decode_delta(&mut r);
            assert!(
                outcome.is_err() || !r.is_exhausted() || cut == bytes.len(),
                "cut at {cut} silently parsed"
            );
        }
    }

    #[test]
    fn bad_tag_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_str("T");
        w.put_u32(1);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_delta(&mut r),
            Err(DeltaError::Malformed(_))
        ));
    }
}
