//! Property-based tests for the similarity measures: bounds, symmetry,
//! identity, and metric properties that every downstream component
//! (schema matching, duplicate detection) silently assumes.

use hummer_textsim::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn levenshtein_symmetric(a in ".{0,30}", b in ".{0,30}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_identity(a in ".{0,30}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    #[test]
    fn levenshtein_triangle(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer(a in ".{0,30}", b in ".{0,30}") {
        let d = levenshtein(&a, &b);
        let la = a.chars().count();
        let lb = b.chars().count();
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
    }

    #[test]
    fn damerau_never_exceeds_levenshtein(a in ".{0,20}", b in ".{0,20}") {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn levenshtein_similarity_unit_interval(a in ".{0,30}", b in ".{0,30}") {
        let s = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaro_bounds_symmetry_identity(a in "[a-z]{0,20}", b in "[a-z]{0,20}") {
        let j = jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaro(&b, &a)).abs() < 1e-12);
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in "[a-z]{1,20}", b in "[a-z]{1,20}") {
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        prop_assert!(jaro_winkler(&a, &b) <= 1.0 + 1e-12);
    }

    #[test]
    fn numeric_similarity_bounds(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let s = relative_similarity(a, b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, relative_similarity(b, a));
    }

    #[test]
    fn scaled_similarity_bounds(a in -1e3f64..1e3, b in -1e3f64..1e3, r in 0.1f64..1e4) {
        let s = scaled_similarity(a, b, r);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn qgrams_cover_string(s in "[a-z]{1,20}", q in 1usize..5) {
        let grams = qgrams(&s, q);
        prop_assert_eq!(grams.len(), s.len() + q - 1);
        for g in &grams {
            prop_assert_eq!(g.chars().count(), q);
        }
    }

    #[test]
    fn word_tokens_are_lowercase_alnum(s in ".{0,40}") {
        for t in word_tokens(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.clone(), t.to_lowercase());
        }
    }

    #[test]
    fn tfidf_cosine_bounds_and_symmetry(
        docs in prop::collection::vec("[a-z ]{0,30}", 1..8),
        a in "[a-z ]{0,30}",
        b in "[a-z ]{0,30}",
    ) {
        let corpus = Corpus::from_documents(docs.iter().map(|d| word_tokens(d)).collect::<Vec<_>>());
        let ta = word_tokens(&a);
        let tb = word_tokens(&b);
        let s = corpus.tfidf_cosine(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - corpus.tfidf_cosine(&tb, &ta)).abs() < 1e-12);
    }

    #[test]
    fn soft_tfidf_bounds_and_at_least_cosine(
        docs in prop::collection::vec("[a-z ]{1,30}", 1..8),
        a in "[a-z ]{1,30}",
        b in "[a-z ]{1,30}",
    ) {
        let corpus = Corpus::from_documents(docs.iter().map(|d| word_tokens(d)).collect::<Vec<_>>());
        let soft = SoftTfIdf::new(&corpus);
        let ta = word_tokens(&a);
        let tb = word_tokens(&b);
        let s = soft.similarity(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&s));
        // Soft matching can only add contributions relative to exact-token
        // cosine (every exact token pair has JW sim 1 ≥ θ).
        prop_assert!(s + 1e-9 >= corpus.tfidf_cosine(&ta, &tb));
    }

    #[test]
    fn soft_idf_unit_interval(
        docs in prop::collection::vec("[a-z ]{1,30}", 1..8),
        token in "[a-z]{1,8}",
    ) {
        let corpus = Corpus::from_documents(docs.iter().map(|d| word_tokens(d)).collect::<Vec<_>>());
        let s = corpus.soft_idf(&token);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
