//! Numeric distance functions (paper §2.3: duplicate detection compares
//! matched attributes "using edit distance and numerical distance
//! functions").

/// Relative numeric similarity in `[0, 1]`:
/// `1 − |a − b| / max(|a|, |b|)`, with the conventions that equal values
/// (including both zero) are fully similar and opposite-magnitude values
/// floor at 0.
pub fn relative_similarity(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 || !denom.is_finite() {
        return 0.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

/// Range-scaled similarity: `max(0, 1 − |a − b| / range)`.
///
/// Useful when the caller knows the domain width (e.g. ages span ~100
/// years, release years span a few decades) so that a fixed absolute gap
/// always costs the same amount of similarity.
pub fn scaled_similarity(a: f64, b: f64, range: f64) -> f64 {
    assert!(range > 0.0, "range must be positive");
    if a == b {
        return 1.0;
    }
    (1.0 - (a - b).abs() / range).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_fully_similar() {
        assert_eq!(relative_similarity(5.0, 5.0), 1.0);
        assert_eq!(relative_similarity(0.0, 0.0), 1.0);
        assert_eq!(scaled_similarity(3.0, 3.0, 10.0), 1.0);
    }

    #[test]
    fn relative_scales_with_magnitude() {
        // 100 vs 99 is much closer than 2 vs 1.
        assert!(relative_similarity(100.0, 99.0) > relative_similarity(2.0, 1.0));
        assert_eq!(relative_similarity(2.0, 1.0), 0.5);
    }

    #[test]
    fn relative_floors_at_zero() {
        assert_eq!(relative_similarity(5.0, -5.0), 0.0);
        assert_eq!(relative_similarity(0.0, 3.0), 0.0);
    }

    #[test]
    fn relative_symmetry() {
        for (a, b) in [(1.5, 2.5), (-3.0, 7.0), (100.0, 101.0)] {
            assert_eq!(relative_similarity(a, b), relative_similarity(b, a));
        }
    }

    #[test]
    fn scaled_behaviour() {
        assert_eq!(scaled_similarity(22.0, 23.0, 10.0), 0.9);
        assert_eq!(scaled_similarity(22.0, 42.0, 10.0), 0.0);
    }

    #[test]
    fn non_finite_inputs_are_dissimilar() {
        assert_eq!(relative_similarity(f64::INFINITY, 1.0), 0.0);
        assert_eq!(relative_similarity(f64::NAN, f64::NAN), 0.0);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        scaled_similarity(1.0, 2.0, 0.0);
    }
}
