//! SoftTFIDF — the hybrid token/character similarity of Cohen, Ravikumar &
//! Fienberg (IIWeb 2003), used by DUMAS to compare the fields of duplicate
//! tuples when deriving attribute correspondences (paper §2.2).
//!
//! Plain TF-IDF cosine requires exact token overlap, which typos destroy.
//! SoftTFIDF relaxes the match: tokens `w ∈ S` and `v ∈ T` also contribute
//! when their *secondary* similarity (Jaro-Winkler here, as in the original)
//! reaches a threshold θ (0.9 in the original; configurable here).
//!
//! The directed score is
//!
//! ```text
//! SoftTFIDF(S→T) = Σ_{w ∈ CLOSE(θ,S,T)}  V(w,S) · V(v*(w),T) · sim(w, v*(w))
//! ```
//!
//! where `v*(w) = argmax_{v ∈ T} sim(w, v)` and `V` are unit-normalized
//! TF-IDF weights. The directed score is not exactly symmetric; the
//! [`SoftTfIdf::similarity`] entry point averages both directions so callers
//! get a symmetric measure.

use crate::jaro::jaro_winkler;
use crate::tfidf::{Corpus, TfIdfVector};

/// SoftTFIDF scorer bound to a corpus.
#[derive(Debug, Clone)]
pub struct SoftTfIdf<'c> {
    corpus: &'c Corpus,
    /// Secondary-similarity threshold θ for a "close" token pair.
    theta: f64,
}

impl<'c> SoftTfIdf<'c> {
    /// Create a scorer with the canonical θ = 0.9.
    pub fn new(corpus: &'c Corpus) -> Self {
        SoftTfIdf { corpus, theta: 0.9 }
    }

    /// Create a scorer with a custom θ ∈ [0, 1].
    pub fn with_theta(corpus: &'c Corpus, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0,1]");
        SoftTfIdf { corpus, theta }
    }

    /// The threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Directed SoftTFIDF score `S → T` over token lists.
    pub fn directed(&self, s: &[String], t: &[String]) -> f64 {
        let vs = self.corpus.weight_vector(s);
        let vt = self.corpus.weight_vector(t);
        self.directed_vec(&vs, &vt, s, t)
    }

    fn directed_vec(&self, vs: &TfIdfVector, vt: &TfIdfVector, s: &[String], t: &[String]) -> f64 {
        if s.is_empty() || t.is_empty() {
            return 0.0;
        }
        // Distinct tokens of S (weights already aggregate repeats).
        let mut seen: Vec<&String> = Vec::new();
        let mut score = 0.0;
        for w in s {
            if seen.contains(&w) {
                continue;
            }
            seen.push(w);
            // Best secondary match in T.
            let mut best_sim = 0.0;
            let mut best_tok: Option<&String> = None;
            for v in t {
                let sim = if w == v { 1.0 } else { jaro_winkler(w, v) };
                if sim > best_sim {
                    best_sim = sim;
                    best_tok = Some(v);
                }
            }
            if best_sim >= self.theta {
                if let Some(v) = best_tok {
                    score += vs.weight(w) * vt.weight(v) * best_sim;
                }
            }
        }
        score.clamp(0.0, 1.0)
    }

    /// Symmetric SoftTFIDF similarity: the mean of both directed scores.
    pub fn similarity(&self, s: &[String], t: &[String]) -> f64 {
        let vs = self.corpus.weight_vector(s);
        let vt = self.corpus.weight_vector(t);
        let st = self.directed_vec(&vs, &vt, s, t);
        let ts = self.directed_vec(&vt, &vs, t, s);
        (st + ts) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_tokens;

    fn corpus() -> Corpus {
        Corpus::from_documents(vec![
            word_tokens("john smith chicago"),
            word_tokens("jon smyth chicago"),
            word_tokens("mary jones berlin"),
            word_tokens("peter miller paris"),
        ])
    }

    #[test]
    fn identical_strings_score_one() {
        let c = corpus();
        let s = SoftTfIdf::new(&c);
        let toks = word_tokens("john smith");
        assert!((s.similarity(&toks, &toks) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn typo_tokens_still_match() {
        let c = corpus();
        let soft = SoftTfIdf::new(&c);
        let a = word_tokens("john smith");
        let b = word_tokens("jon smyth");
        let hard = c.tfidf_cosine(&a, &b);
        let s = soft.similarity(&a, &b);
        assert_eq!(hard, 0.0, "plain TF-IDF sees no overlap");
        // At the canonical θ=0.9 only john/jon bridges
        // (JW(smith, smyth) = 0.893 falls just short).
        assert!(s > 0.4, "SoftTFIDF bridges john/jon: {s}");
        // A slightly laxer θ admits smith/smyth too.
        let lax = SoftTfIdf::with_theta(&c, 0.85);
        let s_lax = lax.similarity(&a, &b);
        assert!(s_lax > 0.85, "θ=0.85 bridges both token pairs: {s_lax}");
        assert!(s_lax > s);
    }

    #[test]
    fn reduces_to_cosine_when_tokens_exact() {
        let c = corpus();
        let soft = SoftTfIdf::with_theta(&c, 1.0);
        let a = word_tokens("john chicago");
        let b = word_tokens("john berlin");
        let cos = c.tfidf_cosine(&a, &b);
        // θ=1.0 admits only exact matches (jaro_winkler(x,x)=1), so the
        // directed score equals the cosine restricted to shared tokens.
        assert!((soft.similarity(&a, &b) - cos).abs() < 1e-9);
    }

    #[test]
    fn symmetric_by_construction() {
        let c = corpus();
        let s = SoftTfIdf::new(&c);
        let a = word_tokens("john smith chicago");
        let b = word_tokens("jon smyth");
        assert!((s.similarity(&a, &b) - s.similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let c = corpus();
        let s = SoftTfIdf::new(&c);
        let empty: Vec<String> = vec![];
        assert_eq!(s.similarity(&empty, &word_tokens("john")), 0.0);
        assert_eq!(s.similarity(&empty, &empty), 0.0);
    }

    #[test]
    fn bounded_unit_interval() {
        let c = corpus();
        let s = SoftTfIdf::new(&c);
        for (a, b) in [
            ("john smith", "jon smyth chicago"),
            ("mary jones", "mary jones"),
            ("a b c", "d e f"),
        ] {
            let v = s.similarity(&word_tokens(a), &word_tokens(b));
            assert!((0.0..=1.0).contains(&v), "{a} / {b} -> {v}");
        }
    }

    #[test]
    fn dissimilar_tokens_below_theta_ignored() {
        let c = corpus();
        let s = SoftTfIdf::new(&c);
        let v = s.similarity(&word_tokens("berlin"), &word_tokens("paris"));
        assert_eq!(v, 0.0);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn invalid_theta_panics() {
        let c = corpus();
        let _ = SoftTfIdf::with_theta(&c, 1.5);
    }
}
