//! # hummer-textsim — string and numeric similarity for data fusion
//!
//! A from-scratch implementation of the similarity toolkit HumMer's
//! instance-based components rely on:
//!
//! * [`edit`] — Levenshtein / Damerau-Levenshtein distance and the derived
//!   `[0,1]` similarity (field comparison in duplicate detection),
//! * [`mod@jaro`] — Jaro and Jaro-Winkler (SoftTFIDF's secondary measure),
//! * [`tokenize`] — word and padded q-gram tokenizers,
//! * [`tfidf`] — corpus statistics, TF-IDF weight vectors, cosine
//!   similarity (DUMAS's tuple-as-string ranking) and the *soft IDF* that
//!   weighs a data item's identifying power,
//! * [`softtfidf`] — SoftTFIDF (Cohen, Ravikumar & Fienberg 2003), the
//!   hybrid measure DUMAS uses for field-wise comparison of duplicates,
//! * [`numeric`] — relative and range-scaled numeric similarity.
//!
//! ## Example
//!
//! ```
//! use hummer_textsim::{tokenize::word_tokens, tfidf::Corpus, softtfidf::SoftTfIdf};
//!
//! let corpus = Corpus::from_documents(vec![
//!     word_tokens("Beatles, The - Abbey Road"),
//!     word_tokens("The Beatles: Abbey Rd."),
//!     word_tokens("Pink Floyd - The Wall"),
//! ]);
//! let soft = SoftTfIdf::new(&corpus);
//! let a = word_tokens("Beatles, The - Abbey Road");
//! let b = word_tokens("The Beatles: Abbey Rd.");
//! let sim = soft.similarity(&a, &b);
//! assert!(sim > 0.6); // near-duplicates score high despite format noise
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod edit;
pub mod jaro;
pub mod numeric;
pub mod softtfidf;
pub mod tfidf;
pub mod tokenize;

pub use edit::{
    damerau_levenshtein, levenshtein, levenshtein_chars, levenshtein_similarity,
    levenshtein_similarity_chars, EditScratch,
};
pub use jaro::{jaro, jaro_winkler};
pub use numeric::{relative_similarity, scaled_similarity};
pub use softtfidf::SoftTfIdf;
pub use tfidf::{Corpus, TfIdfVector};
pub use tokenize::{qgrams, word_tokens};
