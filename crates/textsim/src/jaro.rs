//! Jaro and Jaro-Winkler similarity.
//!
//! SoftTFIDF (Cohen, Ravikumar & Fienberg 2003) uses Jaro-Winkler as its
//! secondary, per-token similarity; the same paper found Jaro-Winkler one of
//! the best performers for name-matching tasks, which is why HumMer's schema
//! matcher compares duplicate fields with it.

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Match window: half the longer length, minus one (at least 0).
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_flags_b = vec![false; b.len()];
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == *ca {
                b_taken[j] = true;
                match_flags_b[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched sequences in order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(&match_flags_b)
        .filter(|(_, &f)| f)
        .map(|(c, _)| *c)
        .collect();
    let t = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4)
}

/// Jaro-Winkler with explicit prefix scale `p` (must satisfy
/// `p * max_prefix <= 1` to stay within `[0, 1]`) and prefix cap.
pub fn jaro_winkler_with(a: &str, b: &str, p: f64, max_prefix: usize) -> f64 {
    assert!(
        p * max_prefix as f64 <= 1.0,
        "prefix boost would exceed 1.0"
    );
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * p * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Classic examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identity_and_empty() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn disjoint_strings_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("martha", "marhta"), ("dwayne", "duane"), ("ab", "ba")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("prefixed", "prefixes");
        let jw = jaro_winkler("prefixed", "prefixes");
        assert!(jw > j);
        // No shared prefix → no boost.
        let a = jaro("xabc", "yabc");
        assert!(close(jaro_winkler("xabc", "yabc"), a));
    }

    #[test]
    fn bounded() {
        for (a, b) in [("a", "a"), ("aaaa", "aaab"), ("hello world", "helol wrold")] {
            let v = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&v), "{a} {b} -> {v}");
        }
    }

    #[test]
    #[should_panic(expected = "prefix boost")]
    fn invalid_scale_panics() {
        jaro_winkler_with("a", "a", 0.5, 4);
    }
}
