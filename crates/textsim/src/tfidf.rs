//! TF-IDF corpus statistics, weight vectors, and cosine similarity.
//!
//! DUMAS treats each tuple as one string ("from the information retrieval
//! field we adopt the well-known TFIDF similarity for comparing records",
//! paper §2.2) and ranks tuple pairs across two unaligned tables by the
//! cosine of their TF-IDF vectors. The duplicate detector reuses the corpus
//! statistics through [`Corpus::soft_idf`], the "soft version of IDF" that
//! measures the identifying power of a data item (§2.3).

use std::collections::HashMap;

/// Document-frequency statistics over a token corpus.
///
/// A *document* is any token multiset — in HumMer a whole tuple rendered as
/// a string, or a single attribute value, depending on the caller.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    doc_count: usize,
    df: HashMap<String, usize>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Build from an iterator of documents.
    pub fn from_documents<I, D>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: AsRef<[String]>,
    {
        let mut c = Corpus::new();
        for d in docs {
            c.add_document(d.as_ref());
        }
        c
    }

    /// Count one document: each *distinct* token's document frequency grows
    /// by one.
    pub fn add_document(&mut self, tokens: &[String]) {
        self.doc_count += 1;
        let mut seen: HashMap<&String, ()> = HashMap::with_capacity(tokens.len());
        for t in tokens {
            if seen.insert(t, ()).is_none() {
                *self.df.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents added.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Document frequency of a token (0 for unseen tokens).
    pub fn df(&self, token: &str) -> usize {
        self.df.get(token).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln(1 + N / (df + 1))`.
    ///
    /// The `+1` in the denominator keeps unseen tokens finite (they get the
    /// highest weight in the corpus, as an unseen token is maximally
    /// identifying).
    pub fn idf(&self, token: &str) -> f64 {
        let n = self.doc_count as f64;
        (1.0 + n / (self.df(token) as f64 + 1.0)).ln()
    }

    /// IDF squashed into `(0, 1]`: `idf(token) / ln(1 + N)`.
    ///
    /// This is the "soft IDF" the duplicate detector uses to weigh the
    /// identifying power of a data item: ≈1 for tokens unique to one
    /// document, approaching 0 for tokens in every document.
    pub fn soft_idf(&self, token: &str) -> f64 {
        if self.doc_count == 0 {
            return 1.0;
        }
        let denom = (1.0 + self.doc_count as f64).ln();
        (self.idf(token) / denom).min(1.0)
    }

    /// The unit-normalized TF-IDF vector of a document:
    /// `v(w) = ln(1 + tf(w)) · idf(w)`, then L2-normalized.
    ///
    /// Term frequencies come from a sort + run-length sweep (not a hash
    /// map), so construction, the norm below, and every dot product
    /// downstream accumulate floats in one deterministic token-sorted
    /// order; a hash-random order would make repeated runs disagree in the
    /// last ULP, breaking the pipeline's bit-reproducibility guarantee.
    pub fn weight_vector(&self, tokens: &[String]) -> TfIdfVector {
        let mut sorted: Vec<&String> = tokens.iter().collect();
        sorted.sort_unstable();
        let mut out_tokens: Vec<String> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let token = sorted[i];
            let mut run = 1;
            while i + run < sorted.len() && sorted[i + run] == token {
                run += 1;
            }
            i += run;
            out_tokens.push(token.clone());
            weights.push((1.0 + run as f64).ln() * self.idf(token));
        }
        let norm: f64 = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for w in &mut weights {
                *w /= norm;
            }
        }
        TfIdfVector {
            tokens: out_tokens,
            weights,
        }
    }

    /// Cosine similarity of two token lists under this corpus's weights.
    pub fn tfidf_cosine(&self, a: &[String], b: &[String]) -> f64 {
        self.weight_vector(a).cosine(&self.weight_vector(b))
    }
}

/// A unit-normalized sparse TF-IDF vector in columnar (SoA) form.
///
/// Tokens and weights live in two parallel arrays **sorted by token**
/// (lookup is a binary search over the token array; the dot product is a
/// merge-join sweeping both weight arrays linearly), so iteration — and
/// with it every float accumulation built on this type — has one
/// deterministic order. Do not switch this back to a hash map: the
/// sniffing dot products and the vector norm would then accumulate in a
/// per-instance random order, and two runs over identical data could
/// differ in the last ULP, which the pipeline's bit-reproducibility
/// contract (sequential == parallel, run == rerun) forbids.
#[derive(Debug, Clone, Default)]
pub struct TfIdfVector {
    /// Distinct tokens, sorted.
    tokens: Vec<String>,
    /// `weights[i]` is the weight of `tokens[i]`.
    weights: Vec<f64>,
}

impl TfIdfVector {
    /// The weight of a token (0 when absent).
    pub fn weight(&self, token: &str) -> f64 {
        self.tokens
            .binary_search_by(|t| t.as_str().cmp(token))
            .map(|i| self.weights[i])
            .unwrap_or(0.0)
    }

    /// Iterate over (token, weight) pairs in token order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.tokens
            .iter()
            .zip(&self.weights)
            .map(|(t, w)| (t.as_str(), *w))
    }

    /// The sorted token array.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The weight array, parallel to [`TfIdfVector::tokens`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for the empty vector.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Cosine similarity (dot product — both vectors are unit-normalized).
    /// Clamped to `[0, 1]` against floating-point drift.
    ///
    /// Implemented as a merge-join over the two token-sorted arrays: the
    /// matched products are accumulated in sorted-token order, which is
    /// exactly the order the previous "iterate the smaller side, binary-
    /// search the larger" formulation produced (its unmatched terms
    /// contributed `+0.0`, and both sides' weights are non-negative, so
    /// skipping the misses never changes a bit of the sum).
    pub fn cosine(&self, other: &TfIdfVector) -> f64 {
        let mut dot = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.weights[i] * other.weights[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_tokens;

    fn corpus() -> Corpus {
        Corpus::from_documents(vec![
            word_tokens("the beatles abbey road"),
            word_tokens("the beatles let it be"),
            word_tokens("pink floyd the wall"),
            word_tokens("the rolling stones"),
        ])
    }

    #[test]
    fn df_counts_distinct_per_document() {
        let mut c = Corpus::new();
        c.add_document(&word_tokens("a a b"));
        assert_eq!(c.df("a"), 1);
        assert_eq!(c.df("b"), 1);
        assert_eq!(c.df("z"), 0);
        assert_eq!(c.doc_count(), 1);
    }

    #[test]
    fn idf_orders_by_rarity() {
        let c = corpus();
        // "the" is in every document; "abbey" in one.
        assert!(c.idf("abbey") > c.idf("beatles"));
        assert!(c.idf("beatles") > c.idf("the"));
        // Unseen token gets the highest idf of all.
        assert!(c.idf("zeppelin") > c.idf("abbey"));
    }

    #[test]
    fn soft_idf_in_unit_interval() {
        let c = corpus();
        for t in ["the", "beatles", "abbey", "zeppelin"] {
            let s = c.soft_idf(t);
            assert!((0.0..=1.0).contains(&s), "{t} -> {s}");
        }
        assert!(c.soft_idf("abbey") > c.soft_idf("the"));
    }

    #[test]
    fn empty_corpus_soft_idf_is_one() {
        assert_eq!(Corpus::new().soft_idf("x"), 1.0);
    }

    #[test]
    fn vector_is_unit_normalized() {
        let c = corpus();
        let v = c.weight_vector(&word_tokens("the beatles"));
        let norm: f64 = v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let c = corpus();
        let a = word_tokens("the beatles abbey road");
        let b = word_tokens("pink floyd");
        assert!((c.tfidf_cosine(&a, &a) - 1.0).abs() < 1e-9);
        assert_eq!(c.tfidf_cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_symmetry() {
        let c = corpus();
        let a = word_tokens("the beatles abbey road");
        let b = word_tokens("beatles abbey lane");
        assert!((c.tfidf_cosine(&a, &b) - c.tfidf_cosine(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn rare_token_overlap_beats_common_token_overlap() {
        let c = corpus();
        // Sharing "abbey road" (rare) scores above sharing "the" (common).
        let base = word_tokens("abbey road the");
        let rare = word_tokens("abbey road xyz");
        let common = word_tokens("the xyz qrs");
        assert!(c.tfidf_cosine(&base, &rare) > c.tfidf_cosine(&base, &common));
    }

    #[test]
    fn empty_vector_cosine_zero() {
        let c = corpus();
        let empty: Vec<String> = vec![];
        assert_eq!(c.tfidf_cosine(&empty, &word_tokens("the")), 0.0);
        assert_eq!(c.tfidf_cosine(&empty, &empty), 0.0);
    }

    #[test]
    fn repeated_tokens_increase_weight_sublinearly() {
        let c = corpus();
        let v1 = c.weight_vector(&word_tokens("abbey"));
        let v2 = c.weight_vector(&word_tokens("abbey abbey abbey road"));
        // In v2, "abbey" still dominates but is not 3x "road"'s share of a
        // two-token split.
        assert!(v2.weight("abbey") > v2.weight("road"));
        assert!(v1.weight("abbey") > v2.weight("abbey")); // v1 is all abbey
    }

    /// Regression: weights, norms, and cosines must be *bit*-identical
    /// across repeated construction and across token input order. The
    /// original `HashMap`-backed vector accumulated the norm and dot in a
    /// per-instance random order, so two runs over identical data could
    /// differ in the last ULP — which broke the pipeline's sequential ==
    /// parallel byte-identity contract at scale (caught by
    /// `exp10_parallel`'s fingerprint check).
    #[test]
    fn vectors_are_bit_deterministic() {
        // Enough distinct tokens that hash-order effects would be near
        // certain to surface somewhere.
        let doc: Vec<String> = (0..64).map(|i| format!("tok{i}")).collect();
        let mut reversed = doc.clone();
        reversed.reverse();
        let c = Corpus::from_documents((0..8).map(|i| {
            (0..16)
                .map(|j| format!("tok{}", (i * 7 + j * 3) % 64))
                .collect::<Vec<_>>()
        }));
        let probe: Vec<String> = (0..32).map(|i| format!("tok{}", i * 2)).collect();
        let v0 = c.weight_vector(&doc);
        for _ in 0..4 {
            let vf = c.weight_vector(&doc);
            let vr = c.weight_vector(&reversed);
            let pairs0: Vec<(&str, f64)> = v0.iter().collect();
            assert_eq!(pairs0, vf.iter().collect::<Vec<_>>());
            assert_eq!(pairs0, vr.iter().collect::<Vec<_>>());
            let p = c.weight_vector(&probe);
            assert_eq!(v0.cosine(&p).to_bits(), vf.cosine(&p).to_bits());
            assert_eq!(v0.cosine(&p).to_bits(), vr.cosine(&p).to_bits());
        }
        // Iteration order is the sorted token order.
        let toks: Vec<&str> = v0.iter().map(|(t, _)| t).collect();
        let mut sorted = toks.clone();
        sorted.sort_unstable();
        assert_eq!(toks, sorted);
    }
}
