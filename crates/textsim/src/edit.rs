//! Edit-distance measures (Levenshtein and Damerau variants).
//!
//! Duplicate detection compares matched attribute values "using edit
//! distance and numerical distance functions" (paper §2.3); this module
//! provides the former, both as a raw distance and as a `[0, 1]` similarity.

/// Levenshtein distance (unit costs), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance (optimal string alignment variant:
/// adjacent transposition counts as one edit, substrings are not edited
/// twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Levenshtein similarity in `[0, 1]`: `1 − dist / max(|a|, |b|)`.
/// Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("müller", "muller"), 1);
        assert_eq!(levenshtein("北京", "北海"), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
        assert_eq!(damerau_levenshtein("smtih", "smith"), 1);
    }

    #[test]
    fn similarity_bounds_and_identity() {
        assert_eq!(levenshtein_similarity("x", "x"), 1.0);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("jonathan", "jonhatan");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["hummer", "summer", "hammer", "ham", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
