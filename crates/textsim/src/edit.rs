//! Edit-distance measures (Levenshtein and Damerau variants).
//!
//! Duplicate detection compares matched attribute values "using edit
//! distance and numerical distance functions" (paper §2.3); this module
//! provides the former, both as a raw distance and as a `[0, 1]` similarity.

/// Reusable DP buffers for [`levenshtein_chars`].
///
/// The columnar pair-scoring kernel calls the edit distance millions of
/// times per chunk; allocating the two DP rows (and re-collecting the char
/// vectors) per call dominates the cost. One scratch per worker amortizes
/// all of it.
#[derive(Debug, Clone, Default)]
pub struct EditScratch {
    prev: Vec<usize>,
    cur: Vec<usize>,
}

impl EditScratch {
    /// Fresh scratch (buffers grow on demand).
    pub fn new() -> Self {
        EditScratch::default()
    }
}

/// Levenshtein distance over pre-collected char slices, reusing `scratch`'s
/// DP rows. Identical arithmetic to [`levenshtein`] (which delegates here),
/// so results — and every similarity derived from them — agree exactly.
pub fn levenshtein_chars(a: &[char], b: &[char], scratch: &mut EditScratch) -> usize {
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    scratch.prev.clear();
    scratch.prev.extend(0..=short.len());
    scratch.cur.clear();
    scratch.cur.resize(short.len() + 1, 0);
    let (prev, cur) = (&mut scratch.prev, &mut scratch.cur);
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(prev, cur);
    }
    prev[short.len()]
}

/// Levenshtein distance (unit costs), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b, &mut EditScratch::new())
}

/// Damerau-Levenshtein distance (optimal string alignment variant:
/// adjacent transposition counts as one edit, substrings are not edited
/// twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Levenshtein similarity in `[0, 1]`: `1 − dist / max(|a|, |b|)`.
/// Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_similarity_chars(&a, &b, &mut EditScratch::new())
}

/// [`levenshtein_similarity`] over pre-collected char slices with a
/// reusable scratch — the allocation-free form the columnar kernel uses.
/// Same formula, bit for bit (char counts are the slice lengths).
pub fn levenshtein_similarity_chars(a: &[char], b: &[char], scratch: &mut EditScratch) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(a, b, scratch) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("müller", "muller"), 1);
        assert_eq!(levenshtein("北京", "北海"), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
        assert_eq!(damerau_levenshtein("smtih", "smith"), 1);
    }

    #[test]
    fn similarity_bounds_and_identity() {
        assert_eq!(levenshtein_similarity("x", "x"), 1.0);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("jonathan", "jonhatan");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["hummer", "summer", "hammer", "ham", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
