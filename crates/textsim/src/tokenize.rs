//! Tokenization for token-based similarity measures (TF-IDF, SoftTFIDF).

/// Normalize a string for comparison: lowercase, with every non-alphanumeric
/// character treated as a separator.
///
/// Token-based record comparison wants "CD-Store" and "cd store" to share
/// tokens, so normalization is deliberately aggressive.
pub fn normalize(s: &str) -> String {
    s.to_lowercase()
}

/// Split into lowercase alphanumeric word tokens.
///
/// ```
/// use hummer_textsim::tokenize::word_tokens;
/// assert_eq!(word_tokens("The Beatles - Abbey Road (1969)"),
///            vec!["the", "beatles", "abbey", "road", "1969"]);
/// ```
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Split into padded character q-grams of the normalized string.
///
/// The string is padded with `q - 1` leading and trailing `#` marks so that
/// prefixes/suffixes weigh as much as interior characters — the usual
/// construction for q-gram-based duplicate detection.
///
/// ```
/// use hummer_textsim::tokenize::qgrams;
/// assert_eq!(qgrams("ab", 2), vec!["#a", "ab", "b#"]);
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let norm = normalize(s);
    if norm.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_strip_punctuation_and_case() {
        assert_eq!(word_tokens("O'Brien, Pat"), vec!["o", "brien", "pat"]);
        assert_eq!(word_tokens(""), Vec::<String>::new());
        assert_eq!(word_tokens("  --  "), Vec::<String>::new());
    }

    #[test]
    fn words_keep_digits() {
        assert_eq!(word_tokens("track 12"), vec!["track", "12"]);
    }

    #[test]
    fn words_handle_unicode() {
        assert_eq!(word_tokens("Käse-Straße"), vec!["käse", "straße"]);
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("abc", 2), vec!["#a", "ab", "bc", "c#"]);
        assert_eq!(qgrams("a", 3), vec!["##a", "#a#", "a##"]);
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn qgrams_normalize() {
        assert_eq!(qgrams("AB", 2), qgrams("ab", 2));
    }

    #[test]
    fn qgram_count_formula() {
        // |qgrams(s, q)| = len + q - 1 for non-empty s
        let s = "hello";
        for q in 1..=4 {
            assert_eq!(qgrams(s, q).len(), s.len() + q - 1, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn qgrams_zero_q_panics() {
        qgrams("x", 0);
    }
}
