//! Heuristic selection of "interesting" attributes for duplicate detection.
//!
//! Paper §2.3: comparison should use attributes that are "(i) related to the
//! currently considered object, (ii) useable by our similarity measure, and
//! (iii) likely to distinguish duplicates from non-duplicates. We developed
//! several heuristics to select such attributes," which users may override.
//!
//! In the relational mapping all columns of the (merged) table are related
//! to the object, so the heuristics here score (ii) usability — how many
//! values are present and text/numeric — and (iii) distinguishing power —
//! how diverse the values are. Bookkeeping columns (`sourceID`, `objectID`)
//! are excluded by name.

use hummer_engine::Table;
use std::collections::HashSet;

/// Columns never used for comparison: pipeline bookkeeping.
pub const BOOKKEEPING_COLUMNS: [&str; 2] = ["sourceID", "objectID"];

/// Per-attribute heuristic scores.
#[derive(Debug, Clone)]
pub struct AttributeScore {
    /// Column index in the table.
    pub index: usize,
    /// Column name.
    pub name: String,
    /// Fraction of rows with a non-null value (coverage).
    pub coverage: f64,
    /// Distinct non-null values divided by non-null count (distinctness —
    /// identifying power proxy).
    pub distinctness: f64,
    /// Combined interestingness in `[0, 1]`.
    pub score: f64,
}

/// Configuration for attribute selection.
#[derive(Debug, Clone)]
pub struct HeuristicConfig {
    /// Minimum coverage for an attribute to be considered at all.
    pub min_coverage: f64,
    /// Minimum combined score to be selected.
    pub min_score: f64,
    /// Upper bound on the number of selected attributes (best-first).
    pub max_attributes: usize,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            min_coverage: 0.5,
            min_score: 0.15,
            max_attributes: 8,
        }
    }
}

/// Score every column of `table`.
pub fn score_attributes(table: &Table) -> Vec<AttributeScore> {
    let n = table.len().max(1) as f64;
    table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .map(|(idx, col)| {
            let mut non_null = 0usize;
            let mut distinct: HashSet<String> = HashSet::new();
            for v in table.column_values(idx) {
                if !v.is_null() {
                    non_null += 1;
                    distinct.insert(v.to_string());
                }
            }
            let coverage = non_null as f64 / n;
            let distinctness = if non_null == 0 {
                0.0
            } else {
                distinct.len() as f64 / non_null as f64
            };
            // Harmonic-style blend: an attribute must both be present and
            // distinguish. Perfectly constant columns score 0... but a
            // column with a couple of distinct values still helps a bit.
            let score = coverage * distinctness;
            AttributeScore {
                index: idx,
                name: col.name.clone(),
                coverage,
                distinctness,
                score,
            }
        })
        .collect()
}

/// Select interesting attribute indices by the heuristics, best-first.
/// Bookkeeping columns are always excluded.
pub fn select_attributes(table: &Table, cfg: &HeuristicConfig) -> Vec<usize> {
    let mut scored: Vec<AttributeScore> = score_attributes(table)
        .into_iter()
        .filter(|s| {
            !BOOKKEEPING_COLUMNS
                .iter()
                .any(|b| b.eq_ignore_ascii_case(&s.name))
        })
        .filter(|s| s.coverage >= cfg.min_coverage && s.score >= cfg.min_score)
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
    scored.truncate(cfg.max_attributes);
    let mut idx: Vec<usize> = scored.into_iter().map(|s| s.index).collect();
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn t() -> Table {
        table! {
            "T" => ["Name", "Constant", "Sparse", "sourceID"];
            ["Alice", "x", (), "A"],
            ["Bob", "x", (), "A"],
            ["Carol", "x", (), "B"],
            ["Dave", "x", 1, "B"],
        }
    }

    #[test]
    fn scores_reflect_coverage_and_distinctness() {
        let scores = score_attributes(&t());
        let name = &scores[0];
        assert_eq!(name.coverage, 1.0);
        assert_eq!(name.distinctness, 1.0);
        assert_eq!(name.score, 1.0);
        let constant = &scores[1];
        assert_eq!(constant.coverage, 1.0);
        assert_eq!(constant.distinctness, 0.25);
        let sparse = &scores[2];
        assert_eq!(sparse.coverage, 0.25);
    }

    #[test]
    fn selection_excludes_bookkeeping_and_weak_columns() {
        let selected = select_attributes(&t(), &HeuristicConfig::default());
        // Name qualifies; Constant (distinctness .25 → score .25) also
        // clears the default bar; Sparse fails coverage; sourceID excluded.
        assert!(selected.contains(&0));
        assert!(!selected.contains(&2));
        assert!(!selected.contains(&3));
    }

    #[test]
    fn max_attributes_truncates_best_first() {
        let cfg = HeuristicConfig {
            max_attributes: 1,
            ..Default::default()
        };
        let selected = select_attributes(&t(), &cfg);
        assert_eq!(selected, vec![0]); // Name has the top score
    }

    #[test]
    fn empty_table_scores_zero() {
        let t = table! { "E" => ["a"]; };
        let s = score_attributes(&t);
        assert_eq!(s[0].coverage, 0.0);
        assert_eq!(s[0].score, 0.0);
        assert!(select_attributes(&t, &HeuristicConfig::default()).is_empty());
    }

    #[test]
    fn indices_returned_sorted() {
        let selected = select_attributes(&t(), &HeuristicConfig::default());
        let mut sorted = selected.clone();
        sorted.sort_unstable();
        assert_eq!(selected, sorted);
    }
}
