//! The duplicate detector: candidate generation → filter → pairwise
//! comparison → threshold classification → transitive closure → `objectID`.

use crate::blocking::{candidate_pairs, CandidateStrategy};
use crate::columnar::{score_candidate_pairs, ColumnarMeasure, PairScorer};
use crate::heuristics::{select_attributes, HeuristicConfig};
use crate::measure::TupleSimilarity;
use crate::unionfind::UnionFind;
use hummer_engine::error::EngineError;
use hummer_engine::{Column, ColumnType, ExecutionLayout, Result, Row, Table, Value};
use hummer_par::Parallelism;

/// Name of the cluster column the detector appends: "the output of
/// duplicate detection is the same as the input relation, but enriched by
/// an objectID column for identification" (paper §2.3).
pub const OBJECT_ID_COLUMN: &str = "objectID";

/// Candidate generation specified by column *names* (resolved against the
/// input table at detection time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateSpec {
    /// Compare every pair.
    AllPairs,
    /// Sorted-neighborhood blocking over the given key columns.
    SortedNeighborhood {
        /// Key column names (sort key is their concatenated rendering).
        key: Vec<String>,
        /// Window width (≥ 2).
        window: usize,
    },
    /// Disjoint blocking over the given key columns: only rows with equal
    /// rendered keys are candidates. The candidate graph splits into
    /// per-key cliques, which is what gives the shard planner (the
    /// `hummer_shard` crate) more than one component to distribute.
    KeyEquality {
        /// Blocking key column names.
        key: Vec<String>,
    },
}

/// Resolve a [`CandidateSpec`] (column *names*) into a
/// [`CandidateStrategy`] (column *indices*) against `table`. Public so the
/// shard planner generates exactly the candidate set the detector would.
pub fn resolve_candidate_strategy(
    table: &Table,
    spec: &CandidateSpec,
) -> Result<CandidateStrategy> {
    let resolve_keys =
        |key: &[String]| -> Result<Vec<usize>> { key.iter().map(|n| table.resolve(n)).collect() };
    Ok(match spec {
        CandidateSpec::AllPairs => CandidateStrategy::AllPairs,
        CandidateSpec::SortedNeighborhood { key, window } => {
            CandidateStrategy::SortedNeighborhood {
                key_attrs: resolve_keys(key)?,
                window: *window,
            }
        }
        CandidateSpec::KeyEquality { key } => CandidateStrategy::KeyEquality {
            key_attrs: resolve_keys(key)?,
        },
    })
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Compare only these columns; `None` runs the attribute-selection
    /// heuristics (the demo's "adjust duplicate definition" step overrides
    /// this).
    pub attributes: Option<Vec<String>>,
    /// Heuristic parameters used when `attributes` is `None`.
    pub heuristics: HeuristicConfig,
    /// Candidate-pair strategy.
    pub candidates: CandidateSpec,
    /// Pairs scoring at or above this are duplicates.
    pub threshold: f64,
    /// Pairs in `[unsure_threshold, threshold)` are "unsure cases" for the
    /// user to decide (§3's three segments). Must be ≤ `threshold`.
    pub unsure_threshold: f64,
    /// Apply the cheap upper-bound filter before the full measure
    /// (§2.3: "the number of pairwise comparisons are reduced by applying a
    /// filter (upper bound to the similarity measure)").
    pub use_filter: bool,
    /// Physical layout of pair scoring. Both layouts are bit-identical
    /// (`tests/columnar_properties.rs`); [`ExecutionLayout::Row`] keeps the
    /// reference path available for equivalence checks and benchmarks.
    pub layout: ExecutionLayout,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            attributes: None,
            heuristics: HeuristicConfig::default(),
            candidates: CandidateSpec::AllPairs,
            // Calibrated against the generated scenario worlds (see
            // `tests/end_to_end.rs`): with the exact-vs-near numeric
            // weighting and the quantized corpus statistics in the measure
            // (ISSUE 4: step-function stats enable incremental detection),
            // 0.77 holds pairwise precision at ~1.0 across seeds while
            // keeping recall well above the unsure band, which catches the
            // borderline pairs for confirmation.
            threshold: 0.77,
            unsure_threshold: 0.6,
            use_filter: true,
            layout: ExecutionLayout::default(),
        }
    }
}

/// A scored row pair (`left < right`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicatePair {
    /// Smaller row index.
    pub left: usize,
    /// Larger row index.
    pub right: usize,
    /// Similarity under the tuple measure.
    pub similarity: f64,
}

/// Counters describing how much work detection did (benchmarked in E5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionStats {
    /// Candidate pairs produced by the strategy.
    pub candidates: usize,
    /// Candidates discarded by the upper-bound filter without a full
    /// comparison.
    pub filtered_out: usize,
    /// Full similarity evaluations performed.
    pub compared: usize,
    /// Edit-distance memo hits on the columnar scorer's per-worker text
    /// caches. Informational only: always 0 on the row path and dependent
    /// on chunking at higher degrees, so it is *excluded* from the
    /// layout/parallelism bit-identity contract (which covers pairs,
    /// similarities, and clusters — not work accounting).
    pub memo_hits: usize,
}

/// The detector's output, rich enough for the demo's "confirm duplicates"
/// step: users can promote unsure pairs or reject accepted ones, then
/// re-form the transitive closure with [`DetectionResult::recluster`].
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// Accepted duplicate pairs (similarity ≥ threshold).
    pub pairs: Vec<DuplicatePair>,
    /// Unsure pairs (unsure_threshold ≤ similarity < threshold).
    pub unsure: Vec<DuplicatePair>,
    /// Dense cluster id per row (the future `objectID` values).
    pub cluster_ids: Vec<usize>,
    /// Clusters of row indices (singletons included), ordered by smallest
    /// member.
    pub clusters: Vec<Vec<usize>>,
    /// Work counters.
    pub stats: DetectionStats,
    /// Names of the columns that were compared.
    pub attributes_used: Vec<String>,
}

impl DetectionResult {
    /// Promote the unsure pair `(left, right)` to a confirmed duplicate.
    /// Returns false if no such unsure pair exists. Call
    /// [`DetectionResult::recluster`] afterwards.
    pub fn confirm_unsure(&mut self, left: usize, right: usize) -> bool {
        let (l, r) = (left.min(right), left.max(right));
        if let Some(pos) = self.unsure.iter().position(|p| p.left == l && p.right == r) {
            let p = self.unsure.remove(pos);
            self.pairs.push(p);
            true
        } else {
            false
        }
    }

    /// Reject an accepted duplicate pair (user says "not the same object").
    /// Returns false if the pair was not accepted. Call
    /// [`DetectionResult::recluster`] afterwards.
    pub fn reject_pair(&mut self, left: usize, right: usize) -> bool {
        let (l, r) = (left.min(right), left.max(right));
        let before = self.pairs.len();
        self.pairs.retain(|p| !(p.left == l && p.right == r));
        self.pairs.len() != before
    }

    /// Recompute the transitive closure from the current accepted pairs.
    pub fn recluster(&mut self) {
        let n = self.cluster_ids.len();
        let mut uf = UnionFind::new(n);
        for p in &self.pairs {
            uf.union(p.left, p.right);
        }
        self.cluster_ids = uf.cluster_ids();
        self.clusters = uf.clusters();
    }

    /// Number of detected real-world objects (clusters).
    pub fn object_count(&self) -> usize {
        self.clusters.len()
    }
}

/// Run duplicate detection over a table (single-threaded; see
/// [`detect_duplicates_par`] for the multi-threaded variant with identical
/// output).
///
/// # Example
///
/// ```
/// use hummer_dupdetect::{detect_duplicates, DetectorConfig};
/// use hummer_engine::table;
///
/// let people = table! {
///     "People" => ["Name", "City"];
///     ["John Smith", "Berlin"],
///     ["Jon Smith",  "Berlin"],   // typo duplicate
///     ["Mary Jones", "Hamburg"],
/// };
/// let cfg = DetectorConfig { threshold: 0.6, unsure_threshold: 0.5, ..Default::default() };
/// let result = detect_duplicates(&people, &cfg).unwrap();
/// assert_eq!(result.object_count(), 2); // the two Smiths cluster
/// assert_eq!(result.cluster_ids[0], result.cluster_ids[1]);
/// ```
pub fn detect_duplicates(table: &Table, cfg: &DetectorConfig) -> Result<DetectionResult> {
    detect_duplicates_par(table, cfg, Parallelism::sequential())
}

/// Resolve the comparison attributes for `table` under `cfg`: explicit
/// names, or the selection heuristics. Shared by the full detector, the
/// incremental path, and the shard executor so all three always agree.
pub fn resolve_attributes(table: &Table, cfg: &DetectorConfig) -> Result<Vec<usize>> {
    let attrs: Vec<usize> = match &cfg.attributes {
        Some(names) => names
            .iter()
            .map(|n| table.resolve(n))
            .collect::<Result<_>>()?,
        None => select_attributes(table, &cfg.heuristics),
    };
    if attrs.is_empty() {
        return Err(EngineError::Expression(
            "no usable attributes for duplicate detection (heuristics selected none)".into(),
        ));
    }
    Ok(attrs)
}

/// Score a candidate-pair list against `measure` on up to `par.get()`
/// threads, dispatching on `cfg.layout`: the row path calls the measure
/// per pair, the columnar path transposes it once and runs the block
/// kernel. Both are bit-identical; the returned pair lists are
/// **unsorted** (candidate order). Shared by [`detect_duplicates_par`],
/// the incremental detector, and the shard workers so a pair scores
/// identically on every path.
pub fn score_candidates(
    table: &Table,
    measure: &TupleSimilarity,
    cfg: &DetectorConfig,
    candidates: &[(usize, usize)],
    par: Parallelism,
) -> ScoredCandidates {
    match cfg.layout {
        ExecutionLayout::Row => {
            score_candidate_pairs(&PairScorer::Rows { table, measure }, cfg, candidates, par)
        }
        ExecutionLayout::Columnar => {
            let cm = ColumnarMeasure::from_measure(measure);
            score_candidate_pairs(&PairScorer::Columnar(&cm), cfg, candidates, par)
        }
    }
}

/// Merged output of [`score_candidate_pairs`]: the classified pairs (in
/// candidate order — unsorted) plus the filter/comparison counters.
#[derive(Debug, Clone, Default)]
pub struct ScoredCandidates {
    /// Accepted pairs (similarity ≥ threshold), candidate order.
    pub pairs: Vec<DuplicatePair>,
    /// Unsure pairs, candidate order.
    pub unsure: Vec<DuplicatePair>,
    /// Candidates discarded by the upper-bound filter.
    pub filtered_out: usize,
    /// Full similarity evaluations performed.
    pub compared: usize,
    /// Edit-distance memo hits (columnar scorer only; see
    /// [`DetectionStats::memo_hits`]).
    pub memo_hits: usize,
}

/// The canonical order of the detector's pair lists: similarity descending,
/// ties in candidate (lexicographic `(left, right)`) order — exactly what
/// the full detector's stable sort over lexicographic candidates produces.
/// A total order (ties break on `(left, right)`, which is unique), so
/// concatenating disjoint sorted lists and re-sorting is deterministic —
/// the shard combiner's merge relies on this.
pub fn sort_pairs_canonical(pairs: &mut [DuplicatePair]) {
    pairs.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
}

/// Run duplicate detection with up to `par.get()` threads scoring candidate
/// pairs concurrently.
///
/// The candidate list is split into contiguous chunks, each chunk is scored
/// on its own thread against the shared (read-only) [`TupleSimilarity`]
/// caches, and the per-chunk accepted/unsure lists are concatenated in
/// chunk order — exactly the order the sequential loop produces. The
/// transitive closure (union-find) then runs single-threaded over the
/// merged pairs. Output is therefore **bit-identical** to
/// [`detect_duplicates`] for every degree; `tests/parallel_equivalence.rs`
/// and `exp10_parallel` enforce this.
pub fn detect_duplicates_par(
    table: &Table,
    cfg: &DetectorConfig,
    par: Parallelism,
) -> Result<DetectionResult> {
    if cfg.unsure_threshold > cfg.threshold {
        return Err(EngineError::Expression(format!(
            "unsure_threshold {} exceeds threshold {}",
            cfg.unsure_threshold, cfg.threshold
        )));
    }
    let attrs = resolve_attributes(table, cfg)?;
    let attributes_used: Vec<String> = attrs
        .iter()
        .map(|&i| table.schema().column(i).name.clone())
        .collect();

    let strategy = resolve_candidate_strategy(table, &cfg.candidates)?;

    let measure = TupleSimilarity::new(table, attrs);
    let candidates = candidate_pairs(table, &strategy);
    let mut stats = DetectionStats {
        candidates: candidates.len(),
        ..Default::default()
    };

    // Score candidate chunks on up to `par` threads; the similarity caches
    // are shared read-only. Chunk results merge in candidate order, so the
    // pair lists match the sequential loop element for element.
    let scored = score_candidates(table, &measure, cfg, &candidates, par);
    stats.filtered_out = scored.filtered_out;
    stats.compared = scored.compared;
    stats.memo_hits = scored.memo_hits;
    let mut pairs = scored.pairs;
    let mut unsure = scored.unsure;
    // Canonical order: similarity descending, ties in candidate order —
    // the same comparator the incremental path uses.
    sort_pairs_canonical(&mut pairs);
    sort_pairs_canonical(&mut unsure);

    let mut result = DetectionResult {
        pairs,
        unsure,
        cluster_ids: vec![0; table.len()],
        clusters: Vec::new(),
        stats,
        attributes_used,
    };
    result.recluster();
    Ok(result)
}

/// Append the `objectID` column carrying each row's cluster id.
///
/// Rows are assembled once at their final width instead of cloning the
/// table and growing each row by a push (which reallocated every row,
/// since a cloned `Vec`'s capacity equals its length).
pub fn annotate_object_ids(table: &Table, result: &DetectionResult) -> Result<Table> {
    assert_eq!(
        table.len(),
        result.cluster_ids.len(),
        "detection result must describe this table"
    );
    let schema = table
        .schema()
        .with_column(Column::new(OBJECT_ID_COLUMN, ColumnType::Int))?;
    let rows: Vec<Row> = table
        .rows()
        .iter()
        .zip(&result.cluster_ids)
        .map(|(row, &id)| {
            let mut values = Vec::with_capacity(row.len() + 1);
            values.extend(row.values().iter().cloned());
            values.push(Value::Int(id as i64));
            Row::from_values(values)
        })
        .collect();
    Table::new(table.name(), schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn people() -> Table {
        table! {
            "People" => ["Name", "City", "Age"];
            ["John Smith", "Berlin", 34],     // 0
            ["Jon Smith", "Berlin", 34],      // 1 dup of 0
            ["John Smith", (), 34],           // 2 dup of 0 (missing city)
            ["Mary Jones", "Hamburg", 28],    // 3
            ["Mary Jones", "Hamburg", 28],    // 4 dup of 3
            ["Peter Miller", "Munich", 45],   // 5 singleton
        }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            threshold: 0.75,
            unsure_threshold: 0.55,
            ..Default::default()
        }
    }

    #[test]
    fn finds_clusters_with_transitive_closure() {
        let t = people();
        let r = detect_duplicates(&t, &cfg()).unwrap();
        assert_eq!(r.object_count(), 3);
        assert_eq!(r.cluster_ids[0], r.cluster_ids[1]);
        assert_eq!(r.cluster_ids[0], r.cluster_ids[2]);
        assert_eq!(r.cluster_ids[3], r.cluster_ids[4]);
        assert_ne!(r.cluster_ids[0], r.cluster_ids[3]);
        assert_ne!(r.cluster_ids[5], r.cluster_ids[0]);
    }

    #[test]
    fn object_id_column_annotated() {
        let t = people();
        let r = detect_duplicates(&t, &cfg()).unwrap();
        let annotated = annotate_object_ids(&t, &r).unwrap();
        assert!(annotated.schema().contains(OBJECT_ID_COLUMN));
        let oid = annotated.resolve(OBJECT_ID_COLUMN).unwrap();
        assert_eq!(annotated.cell(0, oid), annotated.cell(1, oid));
        assert_ne!(annotated.cell(0, oid), annotated.cell(5, oid));
    }

    #[test]
    fn filter_preserves_results() {
        let t = people();
        let with = detect_duplicates(
            &t,
            &DetectorConfig {
                use_filter: true,
                ..cfg()
            },
        )
        .unwrap();
        let without = detect_duplicates(
            &t,
            &DetectorConfig {
                use_filter: false,
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(with.pairs, without.pairs, "filter must be lossless");
        assert_eq!(with.cluster_ids, without.cluster_ids);
        assert!(with.stats.compared <= without.stats.compared);
        assert_eq!(without.stats.filtered_out, 0);
    }

    #[test]
    fn explicit_attributes_override_heuristics() {
        let t = people();
        let r = detect_duplicates(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Name".into()]),
                // one attribute = little evidence mass; lower bar
                threshold: 0.6,
                unsure_threshold: 0.5,
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(r.attributes_used, vec!["Name"]);
        // On name alone, rows 0 and 2 are identical.
        assert_eq!(r.cluster_ids[0], r.cluster_ids[2]);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = people();
        let r = detect_duplicates(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Nope".into()]),
                ..cfg()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn bad_thresholds_error() {
        let t = people();
        let r = detect_duplicates(
            &t,
            &DetectorConfig {
                threshold: 0.5,
                unsure_threshold: 0.9,
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn unsure_band_collects_borderline_pairs() {
        let t = table! {
            "T" => ["Name"];
            ["jonathan q smithers"],
            ["jonathan q smithert"],  // very close → sure
            ["jonathan x smothers"],  // borderline-ish
        };
        let r = detect_duplicates(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Name".into()]),
                threshold: 0.63,
                unsure_threshold: 0.55,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.pairs.is_empty());
        assert!(!r.unsure.is_empty());
    }

    #[test]
    fn confirm_and_reject_then_recluster() {
        let t = table! {
            "T" => ["Name"];
            ["jonathan q smithers"],
            ["jonathan q smithert"],
            ["jonathan x smothers"],
        };
        let mut r = detect_duplicates(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Name".into()]),
                threshold: 0.63,
                unsure_threshold: 0.55,
                ..Default::default()
            },
        )
        .unwrap();
        let u = r.unsure[0];
        assert!(r.confirm_unsure(u.left, u.right));
        r.recluster();
        assert_eq!(r.cluster_ids[u.left], r.cluster_ids[u.right]);

        let p = r.pairs[0];
        assert!(r.reject_pair(p.right, p.left)); // order-insensitive
        assert!(!r.reject_pair(p.left, p.right)); // already gone
        r.recluster();
    }

    #[test]
    fn sorted_neighborhood_on_good_key_keeps_recall() {
        let t = people();
        let blocked = detect_duplicates(
            &t,
            &DetectorConfig {
                candidates: CandidateSpec::SortedNeighborhood {
                    key: vec!["Name".into()],
                    window: 3,
                },
                ..cfg()
            },
        )
        .unwrap();
        let full = detect_duplicates(&t, &cfg()).unwrap();
        assert!(blocked.stats.candidates <= full.stats.candidates);
        // Duplicates share name prefixes here, so blocking loses nothing.
        assert_eq!(blocked.cluster_ids, full.cluster_ids);
    }

    #[test]
    fn empty_table_detects_nothing() {
        let t = table! { "E" => ["Name"]; };
        let r = detect_duplicates(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Name".into()]),
                ..cfg()
            },
        )
        .unwrap();
        assert!(r.pairs.is_empty());
        assert_eq!(r.object_count(), 0);
    }

    /// Regression (ISSUE 3 audit): clustering must not depend on the order
    /// pairs were scored/inserted — reversing the accepted-pair list and
    /// re-forming the closure yields the same `objectID`s.
    #[test]
    fn recluster_is_pair_order_independent() {
        let t = people();
        let mut r = detect_duplicates(&t, &cfg()).unwrap();
        let original_ids = r.cluster_ids.clone();
        let original_clusters = r.clusters.clone();
        r.pairs.reverse();
        r.recluster();
        assert_eq!(r.cluster_ids, original_ids);
        assert_eq!(r.clusters, original_clusters);
        // Swapping left/right roles does not matter either.
        for p in &mut r.pairs {
            std::mem::swap(&mut p.left, &mut p.right);
        }
        let swapped: Vec<(usize, usize)> = r.pairs.iter().map(|p| (p.left, p.right)).collect();
        let mut uf = UnionFind::new(t.len());
        for (a, b) in swapped {
            uf.union(a, b);
        }
        assert_eq!(uf.cluster_ids(), original_ids);
    }

    /// The parallel scorer is bit-identical to the sequential one at every
    /// degree: same pairs (values *and* order), same stats, same clusters.
    /// `memo_hits` is deliberately excluded — the columnar edit-distance
    /// memo is per-chunk, so its hit count depends on how candidates were
    /// partitioned across threads (a cache-effectiveness counter, not an
    /// output).
    #[test]
    fn parallel_detection_matches_sequential() {
        let t = people();
        let seq = detect_duplicates(&t, &cfg()).unwrap();
        for degree in 1..=8 {
            let par = detect_duplicates_par(&t, &cfg(), Parallelism::degree(degree)).unwrap();
            assert_eq!(par.pairs, seq.pairs, "degree {degree}");
            assert_eq!(par.unsure, seq.unsure, "degree {degree}");
            assert_eq!(
                par.stats.candidates, seq.stats.candidates,
                "degree {degree}"
            );
            assert_eq!(
                par.stats.filtered_out, seq.stats.filtered_out,
                "degree {degree}"
            );
            assert_eq!(par.stats.compared, seq.stats.compared, "degree {degree}");
            assert_eq!(par.cluster_ids, seq.cluster_ids, "degree {degree}");
        }
    }

    #[test]
    fn bookkeeping_columns_ignored_by_heuristics() {
        let mut t = people();
        t.add_column(Column::new("sourceID", ColumnType::Text), |i, _| {
            Value::text(format!("s{i}"))
        })
        .unwrap();
        let r = detect_duplicates(&t, &cfg()).unwrap();
        assert!(!r.attributes_used.iter().any(|a| a == "sourceID"));
    }
}
