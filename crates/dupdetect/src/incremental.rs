//! Incremental duplicate detection under source deltas.
//!
//! [`detect_delta`] maintains a [`DetectionResult`] across a change to the
//! underlying table with cost proportional to the *change*, not the corpus:
//!
//! 1. the similarity caches for the updated table are rebuilt (linear —
//!    cheap next to pair scoring) exactly as a from-scratch run would build
//!    them;
//! 2. every surviving row's cell cache is compared **bit-for-bit** against
//!    its old cache; rows with identical caches are *clean*, the rest —
//!    inserted, updated, or drifted by a corpus-statistics step — are
//!    *dirty*;
//! 3. the incremental blocking index generates candidate pairs only for
//!    dirty rows (`dirty × all`), and those are scored through the same
//!    scoring loop the full detector uses;
//! 4. classifications of clean–clean pairs are **carried over** unchanged:
//!    the measure reads nothing but the two cell caches and the attribute
//!    scales, so bit-identical inputs give bit-identical scores — carrying
//!    is not an approximation;
//! 5. the transitive closure is maintained incrementally: connected
//!    components untouched by the delta keep their union-find structure
//!    (their members are re-linked directly, no pair is re-scored or
//!    re-unioned), while components containing deleted or dirty rows are
//!    dissolved and re-clustered from the merged pair list — the "scoped
//!    re-clustering" of only the affected components.
//!
//! ## The byte-identity contract
//!
//! For every delta, the resulting `pairs`, `unsure`, `cluster_ids`,
//! `clusters`, and `attributes_used` are **bit-identical** to
//! [`crate::detect_duplicates`] run from scratch over the updated table —
//! at every parallelism degree. This leans on the quantized corpus
//! statistics of [`crate::measure`]: weights are step functions of the
//! corpus, so small deltas leave untouched rows' caches literally
//! unchanged. When a quantization boundary *is* crossed (roughly every
//! `N/32` inserted or deleted rows), every row reads new weights, the dirty
//! set becomes the whole table, and that one delta degrades to a full
//! rescore — still byte-identical, just not cheap. `DetectionResult::stats`
//! is the one field outside the contract: it reports the work *this* run
//! performed, which for a delta run is delta-sized by design.
//!
//! The caller must pass the same [`DetectorConfig`] that produced the old
//! result; changing thresholds between runs invalidates carried
//! classifications.

use crate::detector::{
    detect_duplicates_par, resolve_attributes, score_candidates, sort_pairs_canonical,
    DetectionResult, DetectionStats, DetectorConfig, DuplicatePair,
};
use crate::measure::TupleSimilarity;
use crate::unionfind::UnionFind;
use crate::CandidateSpec;
use hummer_engine::error::EngineError;
use hummer_engine::{Result, Table};
use hummer_par::Parallelism;

/// How rows of the old table relate to rows of the new table after a delta.
///
/// The mapping must be *monotone*: surviving rows keep their relative
/// order (deltas delete, update in place, and append — they never permute).
/// This is what lets carried pairs keep `left < right` and the candidate
/// order stay lexicographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMapping {
    /// For each old row: its index in the new table, or `None` if deleted.
    pub old_to_new: Vec<Option<usize>>,
    /// For each new row: its index in the old table, or `None` if inserted.
    pub new_to_old: Vec<Option<usize>>,
}

impl RowMapping {
    /// Build from the forward map and the new row count; the reverse map is
    /// derived. Errors if the forward map is out of bounds, collides, or is
    /// not monotone.
    pub fn new(old_to_new: Vec<Option<usize>>, new_len: usize) -> Result<Self> {
        let mut new_to_old: Vec<Option<usize>> = vec![None; new_len];
        let mut prev: Option<usize> = None;
        for (o, n) in old_to_new.iter().enumerate() {
            if let Some(n) = n {
                if *n >= new_len {
                    return Err(EngineError::Expression(format!(
                        "row mapping target {n} out of bounds (new length {new_len})"
                    )));
                }
                if new_to_old[*n].is_some() {
                    return Err(EngineError::Expression(format!(
                        "row mapping target {n} assigned twice"
                    )));
                }
                if prev.is_some_and(|p| p >= *n) {
                    return Err(EngineError::Expression(
                        "row mapping must be monotone (surviving rows keep their order)".into(),
                    ));
                }
                prev = Some(*n);
                new_to_old[*n] = Some(o);
            }
        }
        Ok(RowMapping {
            old_to_new,
            new_to_old,
        })
    }

    /// The identity mapping over `n` rows (an empty delta).
    pub fn identity(n: usize) -> Self {
        RowMapping {
            old_to_new: (0..n).map(Some).collect(),
            new_to_old: (0..n).map(Some).collect(),
        }
    }

    /// Old row count.
    pub fn old_len(&self) -> usize {
        self.old_to_new.len()
    }

    /// New row count.
    pub fn new_len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Number of inserted (new, unmapped) rows.
    pub fn inserted(&self) -> usize {
        self.new_to_old.iter().filter(|o| o.is_none()).count()
    }

    /// Number of deleted (old, unmapped) rows.
    pub fn deleted(&self) -> usize {
        self.old_to_new.iter().filter(|n| n.is_none()).count()
    }
}

/// Work counters for one [`detect_delta`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaDetectionStats {
    /// Rows before the delta.
    pub old_rows: usize,
    /// Rows after the delta.
    pub new_rows: usize,
    /// Rows whose similarity caches changed (inserted, updated, or drifted).
    pub dirty_rows: usize,
    /// Candidate pairs generated by the incremental blocking index.
    pub candidates: usize,
    /// Full similarity evaluations performed.
    pub compared: usize,
    /// Candidates discarded by the upper-bound filter.
    pub filtered_out: usize,
    /// Accepted pairs carried over without rescoring.
    pub carried_pairs: usize,
    /// Unsure pairs carried over without rescoring.
    pub carried_unsure: usize,
    /// Accepted pairs produced by delta scoring.
    pub scored_pairs: usize,
    /// Unsure pairs produced by delta scoring.
    pub scored_unsure: usize,
    /// Old connected components dissolved and re-clustered.
    pub affected_components: usize,
    /// Old connected components whose union-find structure was preserved.
    pub preserved_components: usize,
    /// True when the delta degraded to a full rescore (quantization
    /// boundary, attribute-selection change, or a blocking strategy with no
    /// incremental index).
    pub full_rescore: bool,
    /// Why a full rescore happened, when it did.
    pub fallback_reason: Option<String>,
}

/// Run a full detection and report it as a (degenerate) delta outcome.
fn full_rescore(
    new_table: &Table,
    mapping: &RowMapping,
    cfg: &DetectorConfig,
    par: Parallelism,
    reason: &str,
) -> Result<(DetectionResult, DeltaDetectionStats)> {
    let result = detect_duplicates_par(new_table, cfg, par)?;
    let stats = DeltaDetectionStats {
        old_rows: mapping.old_len(),
        new_rows: new_table.len(),
        dirty_rows: new_table.len(),
        candidates: result.stats.candidates,
        compared: result.stats.compared,
        filtered_out: result.stats.filtered_out,
        scored_pairs: result.pairs.len(),
        scored_unsure: result.unsure.len(),
        affected_components: result.clusters.len(),
        full_rescore: true,
        fallback_reason: Some(reason.to_string()),
        ..Default::default()
    };
    Ok((result, stats))
}

/// Incrementally update `old` (detected over `old_table`) to describe
/// `new_table`, where `mapping` relates the two tables' rows.
///
/// Output (everything except the work counters in `stats`) is
/// bit-identical to [`crate::detect_duplicates_par`] over `new_table` at
/// every degree — see the module docs for the argument. `cfg` must be the
/// configuration that produced `old`.
///
/// # Example
///
/// ```
/// use hummer_dupdetect::{detect_duplicates, detect_delta, DetectorConfig, RowMapping};
/// use hummer_engine::table;
///
/// let before = table! {
///     "People" => ["Name", "City"];
///     ["John Smith", "Berlin"],
///     ["Mary Jones", "Hamburg"],
/// };
/// let after = table! {
///     "People" => ["Name", "City"];
///     ["John Smith", "Berlin"],
///     ["Mary Jones", "Hamburg"],
///     ["Jon Smith",  "Berlin"],   // inserted typo duplicate
/// };
/// let cfg = DetectorConfig { threshold: 0.6, unsure_threshold: 0.5, ..Default::default() };
/// let old = detect_duplicates(&before, &cfg).unwrap();
/// let mapping = RowMapping::new(vec![Some(0), Some(1)], 3).unwrap();
/// let (updated, stats) = detect_delta(&before, &old, &after, &mapping, &cfg, Default::default()).unwrap();
/// assert_eq!(updated.object_count(), 2); // the Smiths cluster
/// assert_eq!(stats.new_rows, 3);
/// let scratch = detect_duplicates(&after, &cfg).unwrap();
/// assert_eq!(updated.cluster_ids, scratch.cluster_ids);
/// ```
pub fn detect_delta(
    old_table: &Table,
    old: &DetectionResult,
    new_table: &Table,
    mapping: &RowMapping,
    cfg: &DetectorConfig,
    par: Parallelism,
) -> Result<(DetectionResult, DeltaDetectionStats)> {
    if cfg.unsure_threshold > cfg.threshold {
        return Err(EngineError::Expression(format!(
            "unsure_threshold {} exceeds threshold {}",
            cfg.unsure_threshold, cfg.threshold
        )));
    }
    if mapping.old_len() != old_table.len() || mapping.new_len() != new_table.len() {
        return Err(EngineError::Expression(format!(
            "row mapping shape ({} -> {}) does not match the tables ({} -> {})",
            mapping.old_len(),
            mapping.new_len(),
            old_table.len(),
            new_table.len()
        )));
    }
    if old.cluster_ids.len() != old_table.len() {
        return Err(EngineError::Expression(
            "old detection result does not describe the old table".into(),
        ));
    }

    // Only the all-pairs strategy has an incremental index: a
    // sorted-neighborhood window shifts globally under inserts.
    if cfg.candidates != CandidateSpec::AllPairs {
        return full_rescore(
            new_table,
            mapping,
            cfg,
            par,
            "blocking strategy has no incremental candidate index",
        );
    }

    // Attribute selection must agree with the old run (same names, same
    // order) — otherwise the cell caches are not comparable.
    let attrs_new = resolve_attributes(new_table, cfg)?;
    let names_new: Vec<String> = attrs_new
        .iter()
        .map(|&i| new_table.schema().column(i).name.clone())
        .collect();
    if names_new != old.attributes_used {
        return full_rescore(new_table, mapping, cfg, par, "attribute selection changed");
    }
    let attrs_old: Vec<usize> = old
        .attributes_used
        .iter()
        .map(|n| old_table.resolve(n))
        .collect::<Result<_>>()?;

    // Rebuild both scorers exactly as a from-scratch run would; the old
    // scorer is a pure function of the old table, so this reproduces the
    // caches the old result was scored against.
    let measure_old = TupleSimilarity::new(old_table, attrs_old);
    let measure_new = TupleSimilarity::new(new_table, attrs_new);

    // Dirty rows: inserted, or cell caches not bit-identical.
    let n_new = new_table.len();
    let mut dirty = vec![false; n_new];
    for (i, o) in mapping.new_to_old.iter().enumerate() {
        dirty[i] = match o {
            None => true,
            Some(o) => !measure_new.row_cells_identical(i, &measure_old, *o),
        };
    }
    // A changed numeric comparison scale affects every numeric pair in that
    // attribute even when the cells themselves are unchanged.
    let ranges_old = measure_old.range_bits();
    let ranges_new = measure_new.range_bits();
    for (k, (ro, rn)) in ranges_old.iter().zip(&ranges_new).enumerate() {
        if ro != rn {
            for (i, d) in dirty.iter_mut().enumerate() {
                if measure_new.cell_is_numeric(i, k) {
                    *d = true;
                }
            }
        }
    }
    let dirty_rows: Vec<usize> = (0..n_new).filter(|&i| dirty[i]).collect();

    // When a corpus-statistics window crossing dirties most of the table,
    // the incremental bookkeeping (old-cache rebuild, carry-over scans)
    // costs more than it saves — cap the worst case at a plain full run.
    if 2 * dirty_rows.len() > n_new {
        return full_rescore(
            new_table,
            mapping,
            cfg,
            par,
            "delta dirtied a majority of rows (corpus-statistics window crossed)",
        );
    }

    // The incremental blocking index: all pairs with a dirty endpoint, in
    // lexicographic order (the order the full detector enumerates).
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (i, &is_dirty) in dirty.iter().enumerate() {
        if is_dirty {
            for j in (i + 1)..n_new {
                candidates.push((i, j));
            }
        } else {
            let start = dirty_rows.partition_point(|&d| d <= i);
            for &j in &dirty_rows[start..] {
                candidates.push((i, j));
            }
        }
    }

    let scored = score_candidates(new_table, &measure_new, cfg, &candidates, par);

    // Carry over every classification whose endpoints are both clean; their
    // scores are bit-identical by construction. Accepted pairs remember
    // their old component for the scoped re-clustering below.
    let mut pairs: Vec<DuplicatePair> = Vec::with_capacity(scored.pairs.len() + old.pairs.len());
    let mut carried_components: Vec<usize> = Vec::new();
    for p in &old.pairs {
        if let (Some(l), Some(r)) = (mapping.old_to_new[p.left], mapping.old_to_new[p.right]) {
            if !dirty[l] && !dirty[r] {
                debug_assert!(l < r, "monotone mapping preserves pair orientation");
                pairs.push(DuplicatePair {
                    left: l,
                    right: r,
                    similarity: p.similarity,
                });
                carried_components.push(old.cluster_ids[p.left]);
            }
        }
    }
    let carried_pairs = pairs.len();
    let mut unsure: Vec<DuplicatePair> = Vec::with_capacity(scored.unsure.len());
    for p in &old.unsure {
        if let (Some(l), Some(r)) = (mapping.old_to_new[p.left], mapping.old_to_new[p.right]) {
            if !dirty[l] && !dirty[r] {
                unsure.push(DuplicatePair {
                    left: l,
                    right: r,
                    similarity: p.similarity,
                });
            }
        }
    }
    let carried_unsure = unsure.len();

    // Incremental closure. An old component is *affected* when it lost a
    // member or contains a dirty row; everything else keeps its structure.
    let mut affected = vec![false; old.clusters.len()];
    for (o, n) in mapping.old_to_new.iter().enumerate() {
        let cid = old.cluster_ids[o];
        match n {
            None => affected[cid] = true,
            Some(n) => affected[cid] |= dirty[*n],
        }
    }
    let affected_components = affected.iter().filter(|a| **a).count();
    let mut uf = UnionFind::new(n_new);
    // Preserved components: unions applied directly along the member chain
    // (no pair consulted). No merged pair can join two preserved
    // components: accepted pairs lie within one old component by
    // transitivity, and every delta-scored pair has a dirty endpoint.
    for (cid, members) in old.clusters.iter().enumerate() {
        if affected[cid] {
            continue;
        }
        let mut prev: Option<usize> = None;
        for &m in members {
            let n = mapping.old_to_new[m].expect("unaffected components lose no members");
            if let Some(p) = prev {
                uf.union(p, n);
            }
            prev = Some(n);
        }
    }
    // Affected components re-cluster from scratch: carried pairs that lived
    // in them, plus everything the delta scored.
    for (p, cid) in pairs.iter().zip(&carried_components) {
        if affected[*cid] {
            uf.union(p.left, p.right);
        }
    }
    for p in &scored.pairs {
        uf.union(p.left, p.right);
    }

    // Merge carried and scored classifications into the canonical order.
    let scored_pairs = scored.pairs.len();
    let scored_unsure = scored.unsure.len();
    pairs.extend(scored.pairs);
    unsure.extend(scored.unsure);
    sort_pairs_canonical(&mut pairs);
    sort_pairs_canonical(&mut unsure);

    let cluster_ids = uf.cluster_ids();
    let clusters = uf.clusters();
    let stats = DeltaDetectionStats {
        old_rows: old_table.len(),
        new_rows: n_new,
        dirty_rows: dirty_rows.len(),
        candidates: candidates.len(),
        compared: scored.compared,
        filtered_out: scored.filtered_out,
        carried_pairs,
        carried_unsure,
        scored_pairs,
        scored_unsure,
        affected_components,
        preserved_components: old.clusters.len() - affected_components,
        full_rescore: false,
        fallback_reason: None,
    };
    let result = DetectionResult {
        pairs,
        unsure,
        cluster_ids,
        clusters,
        stats: DetectionStats {
            candidates: stats.candidates,
            filtered_out: stats.filtered_out,
            compared: stats.compared,
            memo_hits: 0,
        },
        attributes_used: names_new,
    };
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect_duplicates;
    use hummer_engine::{table, Row, Value};

    fn people() -> Table {
        table! {
            "People" => ["Name", "City", "Age"];
            ["John Smith", "Berlin", 34],
            ["Jon Smith", "Berlin", 34],
            ["Mary Jones", "Hamburg", 28],
            ["Mary Jones", "Hamburg", 28],
            ["Peter Miller", "Munich", 45],
            ["Ada Lovelace", "London", 36],
        }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            threshold: 0.75,
            unsure_threshold: 0.55,
            ..Default::default()
        }
    }

    /// Every field of the contract (everything but `stats`).
    fn assert_matches_scratch(incremental: &DetectionResult, new_table: &Table) {
        let scratch = detect_duplicates(new_table, &cfg()).unwrap();
        assert_eq!(incremental.pairs, scratch.pairs);
        assert_eq!(incremental.unsure, scratch.unsure);
        assert_eq!(incremental.cluster_ids, scratch.cluster_ids);
        assert_eq!(incremental.clusters, scratch.clusters);
        assert_eq!(incremental.attributes_used, scratch.attributes_used);
    }

    fn edit(table: &Table, f: impl FnOnce(&mut Vec<Row>)) -> Table {
        let mut rows = table.rows().to_vec();
        f(&mut rows);
        let names: Vec<String> = table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        Table::from_rows(table.name(), &names, rows).unwrap()
    }

    #[test]
    fn insert_only_delta_matches_scratch() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        let after = edit(&before, |rows| {
            rows.push(Row::from_values(vec![
                Value::text("Peter Miller"),
                Value::text("Munich"),
                Value::Int(45),
            ]));
        });
        let mapping = RowMapping::new((0..6).map(Some).collect(), 7).unwrap();
        let (result, stats) = detect_delta(
            &before,
            &old,
            &after,
            &mapping,
            &cfg(),
            Parallelism::sequential(),
        )
        .unwrap();
        // On a 6-row table the insert moves the (exact, sub-64) document
        // count, so every weight — and with it every row — goes dirty, and
        // the majority-dirty guard degrades to a full rescore. The
        // carry-over economics only kick in at quantized corpus sizes; what
        // matters here is that the result is still exactly from-scratch.
        assert!(stats.full_rescore);
        assert_eq!(stats.new_rows, 7);
        assert_matches_scratch(&result, &after);
    }

    #[test]
    fn update_delta_matches_scratch() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        // Fix the typo: "Jon" -> "John" (strengthens the cluster).
        let after = edit(&before, |rows| {
            rows[1] = Row::from_values(vec![
                Value::text("John Smith"),
                Value::text("Berlin"),
                Value::Int(34),
            ]);
        });
        let mapping = RowMapping::identity(6);
        let (result, stats) = detect_delta(
            &before,
            &old,
            &after,
            &mapping,
            &cfg(),
            Parallelism::sequential(),
        )
        .unwrap();
        assert!(!stats.full_rescore);
        assert!(stats.carried_pairs + stats.scored_pairs >= result.pairs.len());
        assert_matches_scratch(&result, &after);
    }

    #[test]
    fn delete_delta_matches_scratch() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        // Delete one Mary (breaks that cluster down to a singleton).
        let after = edit(&before, |rows| {
            rows.remove(3);
        });
        let mapping =
            RowMapping::new(vec![Some(0), Some(1), Some(2), None, Some(3), Some(4)], 5).unwrap();
        let (result, stats) = detect_delta(
            &before,
            &old,
            &after,
            &mapping,
            &cfg(),
            Parallelism::sequential(),
        )
        .unwrap();
        assert!(stats.affected_components >= 1);
        assert_matches_scratch(&result, &after);
    }

    #[test]
    fn mixed_delta_matches_scratch_at_every_degree() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        let after = edit(&before, |rows| {
            rows.remove(4); // delete Peter
            rows[0] = Row::from_values(vec![
                Value::text("John A Smith"),
                Value::text("Berlin"),
                Value::Int(34),
            ]);
            rows.push(Row::from_values(vec![
                Value::text("Ada Lovelace"),
                Value::text("London"),
                Value::Int(37),
            ]));
        });
        let mapping =
            RowMapping::new(vec![Some(0), Some(1), Some(2), Some(3), None, Some(4)], 6).unwrap();
        for degree in 1..=4 {
            let (result, _) = detect_delta(
                &before,
                &old,
                &after,
                &mapping,
                &cfg(),
                Parallelism::degree(degree),
            )
            .unwrap();
            assert_matches_scratch(&result, &after);
        }
    }

    /// A corpus large enough for the quantized-count window: deleting one
    /// row leaves every other row's caches bit-identical, so the delta
    /// carries all surviving pairs, dissolves only the deleted row's
    /// component, and skips the quadratic work.
    #[test]
    fn delete_inside_stats_window_carries_pairs() {
        // 71 rows: q(71) == q(70) == 70 for the document count, so the
        // delete does not cross a window boundary.
        let mut rows: Vec<Row> = (0..69)
            .map(|i| Row::from_values(vec![Value::text(format!("solo person number {i}"))]))
            .collect();
        rows.push(Row::from_values(vec![Value::text(
            "twin alexander hamilton",
        )]));
        rows.push(Row::from_values(vec![Value::text(
            "twin alexander hamilton",
        )]));
        let before = Table::from_rows("T", &["Name"], rows).unwrap();
        let cfg = DetectorConfig {
            attributes: Some(vec!["Name".into()]),
            threshold: 0.7,
            unsure_threshold: 0.55,
            ..Default::default()
        };
        let old = detect_duplicates(&before, &cfg).unwrap();
        assert!(!old.pairs.is_empty(), "the twins must pair up");

        // Delete row 5 (a solo, far from the twins).
        let after = {
            let mut rows = before.rows().to_vec();
            rows.remove(5);
            Table::from_rows("T", &["Name"], rows).unwrap()
        };
        let old_to_new: Vec<Option<usize>> = (0..71)
            .map(|i| match i {
                5 => None,
                i if i < 5 => Some(i),
                i => Some(i - 1),
            })
            .collect();
        let mapping = RowMapping::new(old_to_new, 70).unwrap();
        let (result, stats) = detect_delta(
            &before,
            &old,
            &after,
            &mapping,
            &cfg,
            Parallelism::sequential(),
        )
        .unwrap();
        assert!(!stats.full_rescore, "{:?}", stats.fallback_reason);
        assert_eq!(stats.dirty_rows, 0, "window held: nothing to re-score");
        assert_eq!(stats.candidates, 0);
        assert!(stats.carried_pairs >= 1, "twin pair carried");
        assert_eq!(stats.affected_components, 1, "only the deleted singleton");
        assert!(stats.preserved_components > 60);
        let scratch = detect_duplicates(&after, &cfg).unwrap();
        assert_eq!(result.pairs, scratch.pairs);
        assert_eq!(result.unsure, scratch.unsure);
        assert_eq!(result.cluster_ids, scratch.cluster_ids);
        assert_eq!(result.clusters, scratch.clusters);
    }

    #[test]
    fn empty_delta_is_cheap_and_identical() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        let (result, stats) = detect_delta(
            &before,
            &old,
            &before,
            &RowMapping::identity(6),
            &cfg(),
            Parallelism::sequential(),
        )
        .unwrap();
        assert_eq!(stats.dirty_rows, 0);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.compared, 0);
        assert_eq!(stats.preserved_components, old.clusters.len());
        assert_matches_scratch(&result, &before);
    }

    #[test]
    fn sorted_neighborhood_falls_back_to_full() {
        let before = people();
        let sn_cfg = DetectorConfig {
            candidates: CandidateSpec::SortedNeighborhood {
                key: vec!["Name".into()],
                window: 3,
            },
            ..cfg()
        };
        let old = detect_duplicates(&before, &sn_cfg).unwrap();
        let (result, stats) = detect_delta(
            &before,
            &old,
            &before,
            &RowMapping::identity(6),
            &sn_cfg,
            Parallelism::sequential(),
        )
        .unwrap();
        assert!(stats.full_rescore);
        assert!(stats.fallback_reason.is_some());
        let scratch = detect_duplicates(&before, &sn_cfg).unwrap();
        assert_eq!(result.cluster_ids, scratch.cluster_ids);
    }

    #[test]
    fn mapping_validation_rejects_bad_shapes() {
        assert!(RowMapping::new(vec![Some(3)], 2).is_err()); // out of bounds
        assert!(RowMapping::new(vec![Some(0), Some(0)], 2).is_err()); // collision
        assert!(RowMapping::new(vec![Some(1), Some(0)], 2).is_err()); // not monotone
        let m = RowMapping::new(vec![Some(0), None, Some(2)], 3).unwrap();
        assert_eq!(m.new_to_old, vec![Some(0), None, Some(2)]);
        assert_eq!(m.inserted(), 1);
        assert_eq!(m.deleted(), 1);

        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        let bad = RowMapping::identity(3);
        assert!(detect_delta(
            &before,
            &old,
            &before,
            &bad,
            &cfg(),
            Parallelism::sequential()
        )
        .is_err());
    }

    #[test]
    fn thresholds_validated() {
        let before = people();
        let old = detect_duplicates(&before, &cfg()).unwrap();
        let bad = DetectorConfig {
            threshold: 0.5,
            unsure_threshold: 0.9,
            ..Default::default()
        };
        assert!(detect_delta(
            &before,
            &old,
            &before,
            &RowMapping::identity(6),
            &bad,
            Parallelism::sequential()
        )
        .is_err());
    }
}
