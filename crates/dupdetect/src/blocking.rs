//! Candidate-pair generation strategies.
//!
//! The naive strategy compares all O(n²) pairs. The paper's filter (an
//! upper bound to the similarity measure, applied in
//! [`crate::detector`]) prunes *evaluations*; blocking strategies here
//! prune *candidates* before any similarity arithmetic runs:
//!
//! * [`CandidateStrategy::AllPairs`] — exhaustive, recall 1.0.
//! * [`CandidateStrategy::SortedNeighborhood`] — the classic merge/purge
//!   method: sort rows by a key, slide a window of width `w`, compare only
//!   rows within a window. Near-linear, may miss pairs whose keys sort far
//!   apart.
//! * [`CandidateStrategy::KeyEquality`] — classic disjoint blocking: only
//!   rows whose rendered keys are *equal* are candidates. The candidate
//!   graph decomposes into per-key cliques, which is what lets the shard
//!   planner split the row space into independent shards.

use hummer_engine::Table;

/// Render one row's blocking key: each key attribute's text rendering,
/// lowercased, terminated by a `\u{1f}` field separator (nulls and
/// non-text values render as the empty field). Shared by the
/// sorted-neighborhood sort key and the key-equality groups so the two
/// strategies agree on what "the key" is.
pub fn render_key(table: &Table, key_attrs: &[usize], row: usize) -> String {
    let r = &table.rows()[row];
    let mut k = String::new();
    for &a in key_attrs {
        if let Some(t) = r[a].as_text() {
            k.push_str(&t.to_lowercase());
        }
        k.push('\u{1f}'); // field separator
    }
    k
}

/// How candidate pairs are generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Every unordered pair (i < j).
    AllPairs,
    /// Sorted-neighborhood with the given key attributes and window width
    /// (≥ 2). The key is the concatenated string rendering of the key
    /// attributes' values.
    SortedNeighborhood {
        /// Column indices forming the sort key.
        key_attrs: Vec<usize>,
        /// Window width `w`: each row is paired with its `w − 1` successors
        /// in key order.
        window: usize,
    },
    /// Disjoint blocking: every unordered pair of rows whose rendered keys
    /// are equal. Rows with distinct keys are never candidates, so the
    /// candidate graph's connected components never span two key groups.
    KeyEquality {
        /// Column indices forming the blocking key.
        key_attrs: Vec<usize>,
    },
}

/// Generate candidate pairs `(i, j)` with `i < j` under the strategy.
pub fn candidate_pairs(table: &Table, strategy: &CandidateStrategy) -> Vec<(usize, usize)> {
    let n = table.len();
    match strategy {
        CandidateStrategy::AllPairs => {
            let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
            for i in 0..n {
                for j in (i + 1)..n {
                    out.push((i, j));
                }
            }
            out
        }
        CandidateStrategy::SortedNeighborhood { key_attrs, window } => {
            assert!(*window >= 2, "window must be at least 2");
            // Sort row indices by the concatenated key.
            let mut order: Vec<usize> = (0..n).collect();
            let keys: Vec<String> = (0..n).map(|i| render_key(table, key_attrs, i)).collect();
            order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
            let mut out = Vec::new();
            for (pos, &i) in order.iter().enumerate() {
                for &j in order.iter().skip(pos + 1).take(window - 1) {
                    out.push((i.min(j), i.max(j)));
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        CandidateStrategy::KeyEquality { key_attrs } => {
            let mut groups: std::collections::BTreeMap<String, Vec<usize>> =
                std::collections::BTreeMap::new();
            for i in 0..n {
                groups
                    .entry(render_key(table, key_attrs, i))
                    .or_default()
                    .push(i);
            }
            let mut out = Vec::new();
            for members in groups.values() {
                for (pos, &i) in members.iter().enumerate() {
                    for &j in &members[pos + 1..] {
                        out.push((i, j)); // members ascend, so i < j
                    }
                }
            }
            out.sort_unstable();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn t() -> Table {
        table! {
            "T" => ["Name"];
            ["delta"],
            ["alpha"],
            ["alphb"],   // sorts right next to alpha
            ["zeta"],
        }
    }

    #[test]
    fn all_pairs_count() {
        let pairs = candidate_pairs(&t(), &CandidateStrategy::AllPairs);
        assert_eq!(pairs.len(), 6); // C(4,2)
        assert!(pairs.iter().all(|&(i, j)| i < j));
    }

    #[test]
    fn sorted_neighborhood_pairs_close_keys() {
        let s = CandidateStrategy::SortedNeighborhood {
            key_attrs: vec![0],
            window: 2,
        };
        let pairs = candidate_pairs(&t(), &s);
        // Sorted: alpha(1), alphb(2), delta(0), zeta(3) → neighbors only.
        assert_eq!(pairs, vec![(0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn window_covers_all_when_large() {
        let s = CandidateStrategy::SortedNeighborhood {
            key_attrs: vec![0],
            window: 10,
        };
        let pairs = candidate_pairs(&t(), &s);
        assert_eq!(pairs.len(), 6); // degenerates to all pairs
    }

    #[test]
    fn fewer_candidates_than_all_pairs() {
        // 50 rows, window 3 → ~2n pairs instead of n(n-1)/2.
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(hummer_engine::row![format!("name{i:03}")]);
        }
        let t = hummer_engine::Table::from_rows("T", &["Name"], rows).unwrap();
        let sn = candidate_pairs(
            &t,
            &CandidateStrategy::SortedNeighborhood {
                key_attrs: vec![0],
                window: 3,
            },
        );
        let all = candidate_pairs(&t, &CandidateStrategy::AllPairs);
        assert!(sn.len() < all.len() / 5, "{} vs {}", sn.len(), all.len());
    }

    #[test]
    fn null_keys_sort_together() {
        let t = table! {
            "T" => ["k"];
            [()],
            ["x"],
            [()],
        };
        let s = CandidateStrategy::SortedNeighborhood {
            key_attrs: vec![0],
            window: 2,
        };
        let pairs = candidate_pairs(&t, &s);
        assert!(pairs.contains(&(0, 2))); // the two null-keyed rows pair up
    }

    #[test]
    #[should_panic(expected = "window must be at least 2")]
    fn tiny_window_panics() {
        candidate_pairs(
            &t(),
            &CandidateStrategy::SortedNeighborhood {
                key_attrs: vec![0],
                window: 1,
            },
        );
    }

    #[test]
    fn empty_table_no_pairs() {
        let t = table! { "E" => ["a"]; };
        assert!(candidate_pairs(&t, &CandidateStrategy::AllPairs).is_empty());
    }

    #[test]
    fn key_equality_pairs_only_equal_keys() {
        let t = table! {
            "T" => ["k"];
            ["Alpha"],
            ["beta"],
            ["alpha"],   // equal to row 0 after lowercasing
            ["beta"],
            ["gamma"],
        };
        let pairs = candidate_pairs(&t, &CandidateStrategy::KeyEquality { key_attrs: vec![0] });
        assert_eq!(pairs, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn key_equality_null_keys_group_together() {
        let t = table! {
            "T" => ["k"];
            [()],
            ["x"],
            [()],
        };
        let pairs = candidate_pairs(&t, &CandidateStrategy::KeyEquality { key_attrs: vec![0] });
        assert_eq!(pairs, vec![(0, 2)]);
    }
}
