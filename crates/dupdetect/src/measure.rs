//! The tuple-similarity measure — DogmatiX's XML measure "mapped to the
//! relational world" (paper §2.3).
//!
//! For a pair of tuples the measure accounts for exactly the four aspects
//! the paper lists:
//!
//! 1. **matched vs. unmatched attributes** — only attributes where *both*
//!    tuples carry a value ("matched") contribute; a value facing a `NULL`
//!    ("non-specified") is excluded from numerator *and* denominator,
//! 2. **data similarity** — matched values are compared with edit-distance
//!    similarity for text and relative numeric distance for numbers/dates,
//! 3. **identifying power** — each matched attribute is weighted by the
//!    *soft IDF* of its values within that attribute's corpus: agreeing on
//!    a rare value is strong evidence, agreeing on a ubiquitous one is weak,
//! 4. **contradictions vs. missing data** — a contradicting pair of values
//!    keeps its weight in the denominator while contributing little to the
//!    numerator, so contradictions *reduce* similarity while missing data
//!    has *no influence*.
//!
//! ```text
//!             Σ_{a ∈ matched} w_a · s_a
//! sim(t,u) = ───────────────────────────            s_a, w_a ∈ [0, 1]
//!             Σ_{a ∈ matched} w_a + λ
//! ```
//!
//! λ = [`EVIDENCE_PRIOR`] is a smoothing prior on the evidence mass: a pair
//! that matches on a single weakly-identifying attribute (e.g. only an
//! equal date, everything else `NULL`) must not reach full confidence just
//! because its one matched field agrees. Missing fields still have *no
//! influence* in the paper's sense — they enter neither numerator nor
//! denominator — but confidence now grows with the amount of agreeing
//! evidence. The flip side is that even identical tuples score slightly
//! below 1 (`Σw / (Σw + λ)`); thresholds account for this.

use hummer_engine::{Table, Value};
use hummer_textsim::edit::levenshtein_similarity;
use hummer_textsim::numeric::relative_similarity;
use hummer_textsim::tfidf::Corpus;
use hummer_textsim::tokenize::word_tokens;

/// How many standard deviations of gap drive a numeric similarity to zero
/// (the scale handed to [`field_similarity_with_range`] is
/// `NUMERIC_SIGMA_SCALE · σ` of the attribute).
///
/// Plain relative distance is blind on large-magnitude attributes — any two
/// years are "99 % similar", any two date *ordinals* (~732 000) are
/// indistinguishable — which collapses duplicate-detection precision.
/// Scaling to the attribute's dispersion keeps true-duplicate noise (a gap
/// well under σ) similar while separating genuinely different values
/// (see DESIGN.md §6).
pub const NUMERIC_SIGMA_SCALE: f64 = 2.0;

/// Smoothing prior λ on matched-evidence mass (in units of one maximally
/// identifying attribute's weight). See the module docs for the rationale;
/// `exp4_dupdetect` ablates it.
pub const EVIDENCE_PRIOR: f64 = 0.25;

/// Small-sample widening of the σ-based comparison scale: the scale used is
/// `NUMERIC_SIGMA_SCALE · σ · (1 + SIGMA_SMALL_SAMPLE_INFLATION / n)`.
///
/// Dispersion estimated from a handful of values understates the
/// population's: on the paper's 5-row running examples a legitimate 1-year
/// age conflict sits at half of such a "σ" and would read as a hard
/// contradiction. Widening the scale by `1 + 10/n` (3× at n = 5, ~1.1× by
/// n ≈ 100) keeps small-table noise forgiving while preserving σ-scaling's
/// point — separating large-magnitude values (years, date ordinals) where
/// relative distance is blind — at *every* table size.
pub const SIGMA_SMALL_SAMPLE_INFLATION: f64 = 10.0;

/// Quantize a corpus count (document count or document frequency) for the
/// statistics entering the measure: counts up to 63 are exact, larger ones
/// are truncated to their top 6 binary digits (relative error < 1.6 %).
///
/// Why quantize at all: every per-cell weight is a function of corpus-wide
/// counts, so without quantization a *single* inserted row would shift the
/// identifying weight of every cell in the table by a few ULPs — and the
/// incremental detector ([`crate::incremental`]) could never carry a single
/// scored pair across a delta while staying bit-identical to a from-scratch
/// run. With step-function counts, a small delta leaves the weights of
/// untouched rows literally unchanged (until a quantization boundary is
/// crossed, at which point one delta pays a full rescore and the window
/// resets). The measure's *semantics* are unchanged — only the granularity
/// at which corpus evidence is read.
pub fn quantize_count(c: usize) -> usize {
    if c < 64 {
        return c;
    }
    let shift = usize::BITS - c.leading_zeros() - 6;
    (c >> shift) << shift
}

/// Quantize a σ-based comparison scale onto a geometric grid with 32 steps
/// per octave (relative error < 2.2 %). Same rationale as
/// [`quantize_count`]: the scale must be a *step* function of the data so
/// small deltas leave untouched rows' numeric comparisons bit-identical.
pub fn quantize_scale(scale: f64) -> f64 {
    if !scale.is_finite() || scale <= 0.0 {
        return scale;
    }
    ((scale.log2() * 32.0).floor() / 32.0).exp2()
}

/// Soft IDF over quantized corpus statistics — the identifying-power weight
/// the measure actually uses. Matches [`Corpus::soft_idf`]'s formula with
/// [`quantize_count`] applied to both the document count and the document
/// frequency.
fn stable_soft_idf(corpus: &Corpus, token: &str) -> f64 {
    let n = quantize_count(corpus.doc_count());
    if n == 0 {
        return 1.0;
    }
    let df = quantize_count(corpus.df(token));
    let idf = (1.0 + n as f64 / (df as f64 + 1.0)).ln();
    (idf / (1.0 + n as f64).ln()).min(1.0)
}

/// Per-field similarity between two non-null values: numeric pairs compare
/// by distance against `scale` (the gap at which similarity reaches zero;
/// dates via their day ordinal), everything else by normalized Levenshtein
/// over the lowercase text rendering.
///
/// `scale` is typically `2σ` of the attribute's values (`None` when the
/// caller has no statistics, e.g. for ad-hoc value pairs); without a usable
/// scale the comparison falls back to relative distance.
pub fn field_similarity_with_range(a: &Value, b: &Value, scale: Option<f64>) -> f64 {
    debug_assert!(!a.is_null() && !b.is_null());
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => numeric_field_similarity(x, y, scale),
        _ => {
            let sa = a.to_string().to_lowercase();
            let sb = b.to_string().to_lowercase();
            levenshtein_similarity(&sa, &sb)
        }
    }
}

/// [`field_similarity_with_range`] without scale statistics.
pub fn field_similarity(a: &Value, b: &Value) -> f64 {
    field_similarity_with_range(a, b, None)
}

/// The numeric kernel under [`field_similarity_with_range`]: similarity of
/// two numeric views against an attribute's comparison scale. Exposed so
/// the columnar scorer and the micro-benches can run the exact same
/// arithmetic the row measure runs.
pub fn numeric_field_similarity(x: f64, y: f64, scale: Option<f64>) -> f64 {
    if x == y {
        return 1.0;
    }
    match scale {
        // Quadratic decay, not linear: numeric values are near-unique, so
        // soft IDF hands them close to maximal identifying weight — but in a
        // continuous domain *closeness* is weak identity evidence. True
        // duplicates differ by measurement noise (a small fraction of σ) and
        // stay near 1 under the square, while unrelated values at a sizable
        // fraction of the dispersion are pushed towards 0 instead of
        // lingering at 0.7–0.9 and outvoting a disagreeing text attribute.
        Some(s) if s > 0.0 && s.is_finite() => (1.0 - (x - y).abs() / s).max(0.0).powi(2),
        _ => relative_similarity(x, y),
    }
}

/// A cheap *upper bound* on [`field_similarity_with_range`], used by the
/// comparison filter: `O(1)` instead of `O(len²)`.
///
/// For text the bound is the length bound of normalized edit similarity
/// (`dist ≥ |len(a) − len(b)|`); numeric comparison is already cheap, so
/// the bound is exact there.
pub fn field_similarity_upper_bound(a: &Value, b: &Value, range: Option<f64>) -> f64 {
    debug_assert!(!a.is_null() && !b.is_null());
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => numeric_field_similarity(x, y, range),
        _ => {
            let la = a.to_string().chars().count();
            let lb = b.to_string().chars().count();
            let max = la.max(lb);
            if max == 0 {
                return 1.0;
            }
            1.0 - la.abs_diff(lb) as f64 / max as f64
        }
    }
}

/// Precomputed per-cell comparison data: weight, numeric view, and the
/// lowercased text rendering (so neither the measure nor its upper bound
/// allocates during pairwise comparison).
#[derive(Debug, Clone)]
pub(crate) struct CellData {
    /// Identifying power (mean soft IDF of the value's tokens; for σ-scaled
    /// numeric attributes, soft IDF of the *exact* value) — applied to text
    /// comparisons and to exact numeric agreement.
    pub(crate) weight: f64,
    /// Identifying power of mere *closeness* for σ-scaled numeric
    /// attributes: soft IDF of the value's noise-resolution bucket. Two
    /// different-but-close continuous values share a bucket easily, so this
    /// is deliberately weaker than `weight`. Equals `weight` for text.
    pub(crate) near_weight: f64,
    /// Numeric view, when the value has one.
    pub(crate) num: Option<f64>,
    /// Lowercased text rendering (for edit-distance comparison).
    pub(crate) text: String,
    /// Character count of `text` (the O(1) length bound).
    pub(crate) len: usize,
    /// Bucketed character histogram of `text` (a–z, digits, other): each
    /// edit operation changes the L1 distance between histograms by at most
    /// 2, so `levenshtein ≥ L1/2` — a second admissible bound.
    pub(crate) hist: [u16; 28],
}

fn char_histogram(text: &str) -> [u16; 28] {
    let mut h = [0u16; 28];
    for c in text.chars() {
        let bucket = match c {
            'a'..='z' => (c as u8 - b'a') as usize,
            '0'..='9' => 26,
            _ => 27,
        };
        h[bucket] = h[bucket].saturating_add(1);
    }
    h
}

/// A tuple-similarity scorer bound to one table: it precomputes per-attribute
/// corpora (for soft-IDF weights), per-attribute numeric dispersion scales,
/// and per-cell text/numeric caches, so pairwise comparison allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct TupleSimilarity {
    /// Indices of the attributes participating in comparison.
    attrs: Vec<usize>,
    /// One token corpus per participating attribute (documents = that
    /// attribute's non-null values).
    corpora: Vec<Corpus>,
    /// Per row and participating attribute: the cell cache, or `None` for
    /// `NULL`.
    cells: Vec<Vec<Option<CellData>>>,
    /// Per participating attribute: the numeric comparison scale
    /// (`NUMERIC_SIGMA_SCALE · σ`, quantized by [`quantize_scale`]) when
    /// the attribute is fully numeric, else `None`.
    ranges: Vec<Option<f64>>,
}

impl TupleSimilarity {
    /// Build the scorer for `table`, comparing only `attrs` (column
    /// indices) — typically the output of the attribute-selection
    /// heuristics.
    pub fn new(table: &Table, attrs: Vec<usize>) -> Self {
        // Numeric dispersion statistics: an attribute gets a comparison
        // scale (2σ) when every non-null value has a numeric view (ints,
        // floats, dates, numeric text) and the dispersion is non-zero.
        let ranges: Vec<Option<f64>> = attrs
            .iter()
            .map(|&a| {
                let mut xs: Vec<f64> = Vec::new();
                for v in table.column_values(a) {
                    if v.is_null() {
                        continue;
                    }
                    match v.as_f64() {
                        Some(x) => xs.push(x),
                        None => return None, // mixed/textual attribute
                    }
                }
                if xs.len() < 2 {
                    return None;
                }
                let n = xs.len() as f64;
                let mean = xs.iter().sum::<f64>() / n;
                let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                let sigma = var.sqrt();
                let inflation = 1.0 + SIGMA_SMALL_SAMPLE_INFLATION / n;
                (sigma > 0.0).then(|| quantize_scale(NUMERIC_SIGMA_SCALE * sigma * inflation))
            })
            .collect();
        // Identifying-power corpora. Textual attributes document each value's
        // word tokens. σ-scaled numeric attributes document the value's
        // *noise-resolution bucket* (width σ/2) instead: continuous values
        // are near-unique as strings, so token IDF would award every price
        // or date maximal identifying power, when what matters is how rare
        // agreement-within-noise is in this attribute.
        let mut corpora = Vec::with_capacity(attrs.len());
        // For σ-scaled numeric attributes, a second corpus over the *exact*
        // rendered values: exact agreement on a rare value (an unconflicted
        // duplicate's price) is strong evidence even though closeness alone
        // is weak. Dropped after weight precomputation; `None` for text.
        let mut exact_corpora: Vec<Option<Corpus>> = Vec::with_capacity(attrs.len());
        for (&a, range) in attrs.iter().zip(&ranges) {
            let docs: Vec<Vec<String>> = table
                .column_values(a)
                .filter(|v| !v.is_null())
                .map(|v| match (range, v.as_f64()) {
                    (Some(scale), Some(x)) => vec![numeric_bucket_token(x, *scale)],
                    _ => word_tokens(&v.to_string()),
                })
                .collect();
            corpora.push(Corpus::from_documents(docs));
            exact_corpora.push(range.map(|_| {
                Corpus::from_documents(
                    table
                        .column_values(a)
                        .filter(|v| !v.is_null())
                        .map(|v| vec![v.to_string().to_lowercase()]),
                )
            }));
        }
        let cells: Vec<Vec<Option<CellData>>> = table
            .rows()
            .iter()
            .map(|row| {
                attrs
                    .iter()
                    .zip(corpora.iter().zip(exact_corpora.iter().zip(&ranges)))
                    .map(|(&a, (corpus, (exact_corpus, range)))| {
                        let v = &row[a];
                        if v.is_null() {
                            None
                        } else {
                            let text = v.to_string().to_lowercase();
                            let (weight, near_weight) = match (range, v.as_f64()) {
                                (Some(scale), Some(x)) => {
                                    let exact = stable_soft_idf(
                                        exact_corpus
                                            .as_ref()
                                            .expect("exact corpus exists for ranged attrs"),
                                        &text,
                                    )
                                    .max(0.05);
                                    let near =
                                        stable_soft_idf(corpus, &numeric_bucket_token(x, *scale))
                                            .max(0.05);
                                    (exact, near)
                                }
                                _ => {
                                    let w = value_weight(corpus, v);
                                    (w, w)
                                }
                            };
                            Some(CellData {
                                weight,
                                near_weight,
                                num: v.as_f64(),
                                len: text.chars().count(),
                                hist: char_histogram(&text),
                                text,
                            })
                        }
                    })
                    .collect()
            })
            .collect();
        TupleSimilarity {
            attrs,
            corpora,
            cells,
            ranges,
        }
    }

    /// The participating attribute indices.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The per-attribute corpora (exposed for diagnostics and benches).
    pub fn corpora(&self) -> &[Corpus] {
        &self.corpora
    }

    /// The per-row cell caches (row-major), for the columnar scorer's
    /// transposition.
    pub(crate) fn cells(&self) -> &[Vec<Option<CellData>>] {
        &self.cells
    }

    /// The per-attribute comparison scales.
    pub(crate) fn ranges(&self) -> &[Option<f64>] {
        &self.ranges
    }

    /// Similarity of rows `i` and `j` of the bound table, in `[0, 1]`.
    /// Pairs with no matched attribute score 0. The `table` parameter is
    /// kept for API symmetry; all data comes from the caches.
    pub fn similarity(&self, _table: &Table, i: usize, j: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..self.attrs.len() {
            let (u, v) = match (&self.cells[i][k], &self.cells[j][k]) {
                (Some(u), Some(v)) => (u, v),
                _ => continue, // missing data: no influence
            };
            let (w, s) = match (u.num, v.num) {
                (Some(x), Some(y)) => {
                    // Exact numeric agreement carries the value's own rarity;
                    // mere closeness only the bucket's.
                    let w = if x == y {
                        (u.weight + v.weight) / 2.0
                    } else {
                        (u.near_weight + v.near_weight) / 2.0
                    };
                    (w, numeric_field_similarity(x, y, self.ranges[k]))
                }
                _ => (
                    (u.weight + v.weight) / 2.0,
                    levenshtein_similarity(&u.text, &v.text),
                ),
            };
            num += w * s;
            den += w;
        }
        if den == 0.0 {
            0.0
        } else {
            (num / (den + EVIDENCE_PRIOR)).clamp(0.0, 1.0)
        }
    }

    /// Admissible upper bound on [`TupleSimilarity::similarity`]: per-field
    /// `O(1)` bounds over the caches (no allocation, no edit distance), so
    /// `upper_bound ≥ similarity` always holds — the filter is lossless.
    pub fn upper_bound(&self, _table: &Table, i: usize, j: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..self.attrs.len() {
            let (u, v) = match (&self.cells[i][k], &self.cells[j][k]) {
                (Some(u), Some(v)) => (u, v),
                _ => continue,
            };
            // Numeric fields are computed exactly, so the same weight choice
            // as the full measure keeps the bound admissible.
            let w = match (u.num, v.num) {
                (Some(x), Some(y)) if x != y => (u.near_weight + v.near_weight) / 2.0,
                _ => (u.weight + v.weight) / 2.0,
            };
            let s = match (u.num, v.num) {
                (Some(x), Some(y)) => numeric_field_similarity(x, y, self.ranges[k]),
                _ => {
                    let max = u.len.max(v.len);
                    if max == 0 {
                        1.0
                    } else {
                        // Two admissible lower bounds on the edit distance:
                        // length difference, and half the histogram L1 gap.
                        let l1: u32 = u
                            .hist
                            .iter()
                            .zip(&v.hist)
                            .map(|(x, y)| x.abs_diff(*y) as u32)
                            .sum();
                        let dist_lb = (l1 as f64 / 2.0).max(u.len.abs_diff(v.len) as f64);
                        1.0 - dist_lb / max as f64
                    }
                }
            };
            num += w * s;
            den += w;
        }
        if den == 0.0 {
            0.0
        } else {
            (num / (den + EVIDENCE_PRIOR)).min(1.0)
        }
    }

    /// Number of rows the scorer is bound to.
    pub fn row_count(&self) -> usize {
        self.cells.len()
    }

    /// The per-attribute comparison scales as exact bit patterns (`None`
    /// for text/mixed attributes). Two scorers with equal range bits and
    /// bit-identical cells produce bit-identical similarities.
    pub fn range_bits(&self) -> Vec<Option<u64>> {
        self.ranges.iter().map(|r| r.map(f64::to_bits)).collect()
    }

    /// Whether the cell of row `i`, participating attribute `k` is non-null
    /// and carries a numeric view (the only cells whose comparison reads
    /// the attribute's range).
    pub fn cell_is_numeric(&self, i: usize, k: usize) -> bool {
        self.cells[i][k].as_ref().is_some_and(|c| c.num.is_some())
    }

    /// Bit-exact equality of one row's cell caches against a row of another
    /// scorer (same participating-attribute count required).
    ///
    /// This is the carry-over test of the incremental detector: a pair of
    /// rows whose cells are bit-identical under the old and new scorer —
    /// and whose attribute ranges are bit-identical — scores bit-identically,
    /// because [`TupleSimilarity::similarity`] reads nothing else.
    pub fn row_cells_identical(&self, i: usize, other: &TupleSimilarity, j: usize) -> bool {
        debug_assert_eq!(self.attrs.len(), other.attrs.len());
        self.cells[i]
            .iter()
            .zip(&other.cells[j])
            .all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.weight.to_bits() == b.weight.to_bits()
                        && a.near_weight.to_bits() == b.near_weight.to_bits()
                        && a.num.map(f64::to_bits) == b.num.map(f64::to_bits)
                        && a.len == b.len
                        && a.text == b.text
                        && a.hist == b.hist
                }
                _ => false,
            })
    }
}

/// Noise-resolution bucket label for a σ-scaled numeric value: `scale` is
/// `NUMERIC_SIGMA_SCALE · σ`, so the bucket width is `σ/2` — values a noise
/// gap apart usually share a bucket, unrelated values rarely do.
fn numeric_bucket_token(x: f64, scale: f64) -> String {
    let width = (scale / (2.0 * NUMERIC_SIGMA_SCALE)).max(f64::MIN_POSITIVE);
    format!("b{:.0}", (x / width).floor())
}

/// Identifying power of one value: the mean soft IDF (over quantized corpus
/// statistics) of its tokens in the attribute's corpus, floored at a small
/// ε so matched-but-common values still participate.
fn value_weight(corpus: &Corpus, v: &Value) -> f64 {
    let tokens = word_tokens(&v.to_string());
    if tokens.is_empty() {
        return 0.05;
    }
    let sum: f64 = tokens.iter().map(|t| stable_soft_idf(corpus, t)).sum();
    (sum / tokens.len() as f64).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn t() -> Table {
        table! {
            "People" => ["Name", "City", "Age"];
            ["John Smith", "Berlin", 34],      // 0
            ["John Smith", "Berlin", 34],      // 1: exact dup of 0
            ["Jon Smith", "Berlin", 34],       // 2: typo dup of 0
            ["John Smith", (), 34],            // 3: missing city
            ["John Smith", "Munich", 34],      // 4: contradicting city
            ["Mary Jones", "Hamburg", 28],     // 5: different person
        }
    }

    fn scorer(table: &Table) -> TupleSimilarity {
        TupleSimilarity::new(table, vec![0, 1, 2])
    }

    #[test]
    fn identical_tuples_score_near_one() {
        // The evidence prior caps even identical tuples at Σw / (Σw + λ);
        // with three matched attributes that cap is high.
        let t = t();
        let s = scorer(&t);
        let sim = s.similarity(&t, 0, 1);
        assert!(sim > 0.8, "{sim}");
        // And nothing scores higher than an identical pair.
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                assert!(s.similarity(&t, i, j) <= sim + 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn typo_scores_high_but_below_identical() {
        let t = t();
        let s = scorer(&t);
        let v = s.similarity(&t, 0, 2);
        let identical = s.similarity(&t, 0, 1);
        assert!(v > 0.75, "{v}");
        assert!(v < identical, "typo {v} vs identical {identical}");
    }

    #[test]
    fn missing_beats_contradiction() {
        // The paper's key semantic: "contradictory data reduces similarity
        // whereas missing data has no influence".
        let t = t();
        let s = scorer(&t);
        let with_null = s.similarity(&t, 0, 3);
        let with_contradiction = s.similarity(&t, 0, 4);
        assert!(
            with_null > with_contradiction,
            "null {with_null} vs contradiction {with_contradiction}"
        );
        // Missing has no influence beyond shrinking the evidence mass: the
        // null-city pair scores like an identical pair over the remaining
        // two attributes.
        let two_attr_identical = {
            let narrow = TupleSimilarity::new(&t, vec![0, 2]);
            narrow.similarity(&t, 0, 1)
        };
        assert!(
            (with_null - two_attr_identical).abs() < 0.15,
            "{with_null} vs {two_attr_identical}"
        );
    }

    #[test]
    fn different_entities_score_low() {
        let t = t();
        let s = scorer(&t);
        assert!(s.similarity(&t, 0, 5) < 0.5);
    }

    #[test]
    fn symmetry() {
        let t = t();
        let s = scorer(&t);
        for i in 0..t.len() {
            for j in 0..t.len() {
                assert!((s.similarity(&t, i, j) - s.similarity(&t, j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upper_bound_is_admissible() {
        let t = t();
        let s = scorer(&t);
        for i in 0..t.len() {
            for j in 0..t.len() {
                assert!(
                    s.upper_bound(&t, i, j) + 1e-12 >= s.similarity(&t, i, j),
                    "bound violated for ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn no_matched_attributes_scores_zero() {
        let t = table! {
            "T" => ["a", "b"];
            [1, ()],
            [(), 2],
        };
        let s = TupleSimilarity::new(&t, vec![0, 1]);
        assert_eq!(s.similarity(&t, 0, 1), 0.0);
    }

    #[test]
    fn rare_value_agreement_outweighs_common_value_agreement() {
        // Two pairs: one agrees on a rare city, one on a ubiquitous city,
        // both disagree on the name.
        let t = table! {
            "T" => ["Name", "City"];
            ["aaaa", "Wittenberge"],   // 0 rare city
            ["bbbb", "Wittenberge"],   // 1
            ["cccc", "Berlin"],        // 2 common city
            ["dddd", "Berlin"],        // 3
            ["eeee", "Berlin"],
            ["ffff", "Berlin"],
            ["gggg", "Berlin"],
        };
        let s = TupleSimilarity::new(&t, vec![0, 1]);
        let rare = s.similarity(&t, 0, 1);
        let common = s.similarity(&t, 2, 3);
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn numeric_fields_use_relative_distance_without_range() {
        let a = Value::Int(100);
        let b = Value::Int(99);
        let c = Value::Int(50);
        assert!(field_similarity(&a, &b) > 0.9);
        assert!(field_similarity(&a, &c) <= 0.5);
    }

    #[test]
    fn sigma_scaling_separates_large_magnitude_values() {
        // Years 1975 vs 1990: ~99% similar under relative distance, but
        // clearly different within a catalog whose 2σ is ~26 years.
        let a = Value::Int(1975);
        let b = Value::Int(1990);
        let rel = field_similarity_with_range(&a, &b, None);
        let scaled = field_similarity_with_range(&a, &b, Some(26.0));
        assert!(rel > 0.99, "relative distance is blind here: {rel}");
        assert!(scaled < 0.5, "sigma scaling separates: {scaled}");
        // While true-duplicate noise (±1 year) stays similar.
        let close = field_similarity_with_range(&a, &Value::Int(1976), Some(26.0));
        assert!(close > 0.9, "{close}");
    }

    #[test]
    fn measure_uses_ranges_for_date_columns() {
        // Two people sharing a status and close dates must not be fused
        // just because date *ordinals* are huge numbers. A realistic-size
        // roster keeps the small-sample scale inflation modest.
        let mut rows: Vec<hummer_engine::Row> = (0..16)
            .map(|i| {
                hummer_engine::Row::from_values(vec![
                    Value::text(format!("Filler Person{i}")),
                    Value::Date(hummer_engine::Date::new(2004, 12, 1 + (i % 28) as u8).unwrap()),
                ])
            })
            .collect();
        rows.insert(
            0,
            hummer_engine::Row::from_values(vec![
                Value::text("Aisha Koch"),
                Value::Date(hummer_engine::Date::new(2004, 12, 5).unwrap()),
            ]),
        );
        rows.insert(
            1,
            hummer_engine::Row::from_values(vec![
                Value::text("Ravi Wolf"),
                Value::Date(hummer_engine::Date::new(2004, 12, 8).unwrap()),
            ]),
        );
        rows.insert(
            2,
            hummer_engine::Row::from_values(vec![
                Value::text("Aisha Koch"),
                Value::Date(hummer_engine::Date::new(2004, 12, 6).unwrap()),
            ]),
        );
        let t = Table::from_rows("T", &["Name", "Seen"], rows).unwrap();
        let s = TupleSimilarity::new(&t, vec![0, 1]);
        let different_people = s.similarity(&t, 0, 1);
        let same_person = s.similarity(&t, 0, 2);
        assert!(different_people < 0.6, "{different_people}");
        assert!(same_person > 0.7, "{same_person}");
        assert!(same_person > different_people + 0.2);
    }

    #[test]
    fn quantized_counts_are_stable_step_functions() {
        // Exact below 64.
        for c in 0..64 {
            assert_eq!(quantize_count(c), c);
        }
        // Monotone, never above the input, relative error < 1/32.
        let mut prev = 0;
        for c in 64..5000 {
            let q = quantize_count(c);
            assert!(q <= c);
            assert!(q >= prev);
            assert!((c - q) as f64 / (c as f64) < 1.0 / 32.0, "{c} -> {q}");
            prev = q;
        }
        // Step function: long runs of identical output (step 16 at ~1000).
        assert_eq!(quantize_count(1000), quantize_count(1007));
    }

    #[test]
    fn quantized_scale_geometric_grid() {
        for s in [0.5, 1.0, 7.3, 26.0, 1e6] {
            let q = quantize_scale(s);
            assert!(q <= s && q > s * 0.979, "{s} -> {q}");
            // Nearby values share a grid point (stability window).
            assert_eq!(q.to_bits(), quantize_scale(q * 1.0001).to_bits());
        }
        assert_eq!(quantize_scale(0.0), 0.0);
        assert!(quantize_scale(f64::INFINITY).is_infinite());
    }

    #[test]
    fn row_cells_identical_detects_changes() {
        let t1 = t();
        let mut rows: Vec<hummer_engine::Row> = t1.rows().to_vec();
        rows[4] = hummer_engine::Row::from_values(vec![
            Value::text("John Smith"),
            Value::text("Potsdam"), // changed city
            Value::Int(34),
        ]);
        let t2 = Table::from_rows("People", &["Name", "City", "Age"], rows).unwrap();
        let a = scorer(&t1);
        let b = scorer(&t2);
        // Untouched rows keep bit-identical cells (quantized stats absorb
        // the tiny df drift of the changed city value).
        assert!(a.row_cells_identical(0, &b, 0));
        assert!(!a.row_cells_identical(4, &b, 4));
        assert_eq!(a.range_bits(), b.range_bits());
    }

    #[test]
    fn field_bound_dominates_similarity() {
        let vals = [
            Value::text("John Smith"),
            Value::text("Jon Smyth"),
            Value::text("x"),
            Value::Int(42),
            Value::Float(41.5),
        ];
        for a in &vals {
            for b in &vals {
                for range in [None, Some(10.0)] {
                    assert!(
                        field_similarity_upper_bound(a, b, range) + 1e-12
                            >= field_similarity_with_range(a, b, range),
                        "{a:?} vs {b:?} range {range:?}"
                    );
                }
            }
        }
    }
}
