//! Disjoint-set forest (union-find) with path compression and union by
//! rank — the transitive closure over duplicate pairs (paper §2.3: "the
//! transitive closure over duplicate pairs is formed to obtain clusters of
//! objects that all represent a single real-world entity").
//!
//! ## Determinism
//!
//! The internal *representative* of a set (what [`UnionFind::find`]
//! returns) depends on the order unions were applied in — union-by-rank
//! picks whichever root happens to be taller. That order varies with pair
//! scoring order, so representatives must never leak into user-visible
//! output. The public cluster views are therefore **normalized**:
//! [`UnionFind::clusters`] orders members ascending and clusters by their
//! smallest member, and [`UnionFind::cluster_ids`] numbers clusters densely
//! in that same order. Both are invariant under any permutation of the
//! union sequence (pinned by the `representative_independence_*` regression
//! tests below), which is what lets the parallel detector score pairs in
//! any partition and still produce bit-identical `objectID`s.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set (with path compression).
    ///
    /// The representative is an implementation detail that depends on the
    /// order unions were applied — do not expose it; derive output from
    /// the normalized [`UnionFind::clusters`]/[`UnionFind::cluster_ids`]
    /// views instead.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The clusters, each sorted ascending, ordered by their smallest
    /// member. Singletons are included.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }

    /// Cluster ids: `ids[x]` is the dense id (0-based, ordered by smallest
    /// member) of `x`'s cluster — this becomes the `objectID` column.
    pub fn cluster_ids(&mut self) -> Vec<usize> {
        let clusters = self.clusters();
        let mut ids = vec![0usize; self.len()];
        for (cid, members) in clusters.iter().enumerate() {
            for &m in members {
                ids[m] = cid;
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.clusters(), vec![vec![0], vec![1], vec![2]]);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected transitively
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.clusters(), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn cluster_ids_are_dense_and_ordered() {
        let mut uf = UnionFind::new(4);
        uf.union(2, 3);
        let ids = uf.cluster_ids();
        assert_eq!(ids, vec![0, 1, 2, 2]);
    }

    #[test]
    fn large_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.clusters().len(), 1);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.clusters().is_empty());
        assert!(uf.cluster_ids().is_empty());
    }

    /// A tiny deterministic shuffle (multiplicative LCG indexing) so the
    /// tests need no RNG dependency.
    fn permuted<T: Clone>(xs: &[T], seed: u64) -> Vec<T> {
        let mut out: Vec<T> = xs.to_vec();
        let n = out.len();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            out.swap(i, j);
        }
        out
    }

    /// Regression (ISSUE 3 audit): the normalized cluster views must not
    /// depend on the order pairs were unioned in — the parallel detector
    /// merges chunk results in an order that differs from any particular
    /// scoring order, and `objectID`s must come out identical anyway.
    #[test]
    fn representative_independence_under_pair_reordering() {
        // A mix of chains, stars, and singletons over 24 elements.
        let pairs: Vec<(usize, usize)> = vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0), // cycle
            (5, 9),
            (9, 11),
            (5, 11),
            (12, 13),
            (14, 13),
            (15, 14),
            (16, 15),
            (20, 21),
            (22, 21),
        ];
        let mut reference = UnionFind::new(24);
        for &(a, b) in &pairs {
            reference.union(a, b);
        }
        let ref_clusters = reference.clusters();
        let ref_ids = reference.cluster_ids();
        for seed in 0..32 {
            let mut uf = UnionFind::new(24);
            for &(a, b) in &permuted(&pairs, seed) {
                uf.union(a, b);
            }
            assert_eq!(uf.clusters(), ref_clusters, "seed {seed}");
            assert_eq!(uf.cluster_ids(), ref_ids, "seed {seed}");
        }
        // Reversed insertion, and each pair flipped, too.
        let mut uf = UnionFind::new(24);
        for &(a, b) in pairs.iter().rev() {
            uf.union(b, a);
        }
        assert_eq!(uf.clusters(), ref_clusters);
        assert_eq!(uf.cluster_ids(), ref_ids);
    }

    /// The normalization contract itself: ids are dense, ordered by each
    /// cluster's smallest member, and members are listed ascending.
    #[test]
    fn cluster_views_are_normalized() {
        let mut uf = UnionFind::new(10);
        uf.union(7, 2);
        uf.union(9, 4);
        uf.union(4, 2);
        let clusters = uf.clusters();
        for c in &clusters {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "members ascending");
        }
        let firsts: Vec<usize> = clusters.iter().map(|c| c[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]), "ordered by min");
        let ids = uf.cluster_ids();
        let max = *ids.iter().max().unwrap();
        for id in 0..=max {
            assert!(ids.contains(&id), "ids dense: missing {id}");
        }
    }
}
