//! Disjoint-set forest (union-find) with path compression and union by
//! rank — the transitive closure over duplicate pairs (paper §2.3: "the
//! transitive closure over duplicate pairs is formed to obtain clusters of
//! objects that all represent a single real-world entity").

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The clusters, each sorted ascending, ordered by their smallest
    /// member. Singletons are included.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }

    /// Cluster ids: `ids[x]` is the dense id (0-based, ordered by smallest
    /// member) of `x`'s cluster — this becomes the `objectID` column.
    pub fn cluster_ids(&mut self) -> Vec<usize> {
        let clusters = self.clusters();
        let mut ids = vec![0usize; self.len()];
        for (cid, members) in clusters.iter().enumerate() {
            for &m in members {
                ids[m] = cid;
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.clusters(), vec![vec![0], vec![1], vec![2]]);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected transitively
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.clusters(), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn cluster_ids_are_dense_and_ordered() {
        let mut uf = UnionFind::new(4);
        uf.union(2, 3);
        let ids = uf.cluster_ids();
        assert_eq!(ids, vec![0, 1, 2, 2]);
    }

    #[test]
    fn large_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.clusters().len(), 1);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.clusters().is_empty());
        assert!(uf.cluster_ids().is_empty());
    }
}
