//! # hummer-dupdetect — duplicate detection for HumMer
//!
//! The second automated phase of the pipeline (paper §2.3): find the sets of
//! tuples in the integrated table that describe the same real-world object.
//! The method is the DogmatiX XML algorithm (Weis & Naumann, SIGMOD 2005)
//! "mapped to the relational world":
//!
//! * [`heuristics`] — pick the "interesting" attributes worth comparing
//!   (usable by the measure, likely to distinguish duplicates), which the
//!   user may override;
//! * [`measure`] — the tuple-similarity measure with the paper's four
//!   ingredients: matched vs. unmatched attributes, per-field edit/numeric
//!   distance, identifying power via soft IDF, and the crucial asymmetry
//!   that contradictions reduce similarity while missing values do not;
//! * [`blocking`] — candidate generation (all pairs or sorted
//!   neighborhood);
//! * [`detector`] — the filter (a cheap admissible upper bound on the
//!   measure), threshold classification into sure / unsure / non-duplicates,
//!   transitive closure via [`unionfind`], and the appended `objectID`
//!   column;
//! * [`incremental`] — delta detection: re-score only candidate pairs that
//!   touch changed rows, carry every other classification over, and
//!   re-cluster only the affected connected components — bit-identical to a
//!   from-scratch run over the updated table.
//!
//! Pairwise comparison — the pipeline's hottest loop — can fan out over
//! threads: [`detect_duplicates_par`] scores candidate chunks concurrently
//! and merges them in candidate order, so its output is bit-identical to
//! the sequential [`detect_duplicates`] at every [`Parallelism`] degree.
//!
//! ## Example
//!
//! ```
//! use hummer_engine::table;
//! use hummer_dupdetect::{detect_duplicates, annotate_object_ids, DetectorConfig};
//!
//! let t = table! {
//!     "People" => ["Name", "City"];
//!     ["John Smith", "Berlin"],
//!     ["Jon Smith", "Berlin"],
//!     ["Mary Jones", "Hamburg"],
//! };
//! // Narrow 2-column schemas carry little evidence mass: lower the
//! // duplicate threshold below the wide-schema default.
//! let cfg = DetectorConfig { threshold: 0.7, unsure_threshold: 0.55, ..Default::default() };
//! let result = detect_duplicates(&t, &cfg).unwrap();
//! assert_eq!(result.object_count(), 2);
//! let annotated = annotate_object_ids(&t, &result).unwrap();
//! assert!(annotated.schema().contains("objectID"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocking;
pub mod columnar;
pub mod detector;
pub mod heuristics;
pub mod incremental;
pub mod measure;
pub mod unionfind;

pub use blocking::{candidate_pairs, render_key, CandidateStrategy};
pub use columnar::{score_candidate_pairs, ColumnarMeasure, PairScorer, PAIR_BLOCK};
pub use detector::{
    annotate_object_ids, detect_duplicates, detect_duplicates_par, resolve_attributes,
    resolve_candidate_strategy, score_candidates, sort_pairs_canonical, CandidateSpec,
    DetectionResult, DetectionStats, DetectorConfig, DuplicatePair, ScoredCandidates,
    OBJECT_ID_COLUMN,
};
pub use heuristics::{score_attributes, select_attributes, AttributeScore, HeuristicConfig};
pub use hummer_engine::ExecutionLayout;
pub use hummer_par::Parallelism;
pub use incremental::{detect_delta, DeltaDetectionStats, RowMapping};
pub use measure::{
    field_similarity, field_similarity_with_range, numeric_field_similarity, quantize_count,
    quantize_scale, TupleSimilarity, EVIDENCE_PRIOR, NUMERIC_SIGMA_SCALE,
    SIGMA_SMALL_SAMPLE_INFLATION,
};
pub use unionfind::UnionFind;
