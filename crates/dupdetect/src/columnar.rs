//! Columnar pair scoring: the vectorized twin of
//! [`TupleSimilarity::similarity`] / [`TupleSimilarity::upper_bound`].
//!
//! [`ColumnarMeasure`] transposes a [`TupleSimilarity`]'s row-major cell
//! caches into per-attribute struct-of-arrays columns (weights, numeric
//! views, interned text), and [`score_candidate_pairs`] sweeps candidate
//! blocks attribute-by-attribute over those contiguous arrays instead of
//! dispatching per cell.
//!
//! ## Byte-identity contract
//!
//! The columnar path produces **bit-identical** scores, classifications,
//! and stats to the row path, by construction:
//!
//! * it is built *from* the row measure's caches, so every weight, numeric
//!   view, text rendering, and quantized corpus statistic is the exact
//!   same bit pattern (the incremental detector's carry-over test is
//!   untouched);
//! * each pair's numerator/denominator accumulators receive their
//!   per-attribute contributions in increasing attribute order — the same
//!   sequence of float additions the row loop performs, merely interleaved
//!   across the pairs of a block;
//! * the text kernel's fast paths are bit-neutral: equal interned ids
//!   return the literal `1.0` that `levenshtein_similarity(x, x)` computes
//!   exactly, and the per-attribute memo caches a pure, symmetric function
//!   under a canonical `(min, max)` key.
//!
//! `tests/columnar_properties.rs` and `exp13_columnar` enforce the
//! contract end to end.

use std::collections::HashMap;

use crate::detector::{DetectorConfig, DuplicatePair, ScoredCandidates};
use crate::measure::{numeric_field_similarity, TupleSimilarity, EVIDENCE_PRIOR};
use hummer_engine::Table;
use hummer_par::{par_chunks, Parallelism};
use hummer_textsim::edit::{levenshtein_similarity_chars, EditScratch};

/// Pairs per kernel block: accumulators for one block stay cache-resident
/// while the attribute sweep runs over them.
/// Candidate pairs per vectorized scoring block — the unit the `detect`
/// span's `columnar_blocks` counter reports.
pub const PAIR_BLOCK: usize = 512;

/// One participating attribute in struct-of-arrays form. Per-row arrays are
/// indexed by row; text payloads are interned, so per-row storage is a
/// `u32` id into the pooled `chars`/`lens`/`hists` arrays.
#[derive(Debug, Clone, Default)]
struct AttrColumn {
    /// `true` where the row has a (non-null) cell for this attribute.
    present: Vec<bool>,
    /// Identifying power of exact agreement.
    weight: Vec<f64>,
    /// Identifying power of mere closeness (numeric); equals `weight` for
    /// text.
    near_weight: Vec<f64>,
    /// `true` where the cell has a numeric view.
    has_num: Vec<bool>,
    /// The numeric view (placeholder `0.0` where absent).
    num: Vec<f64>,
    /// Interned id of the cell's lowercased text rendering.
    text_id: Vec<u32>,
    /// Per interned text: its chars (the edit-distance input).
    chars: Vec<Vec<char>>,
    /// Per interned text: its char count (the O(1) length bound).
    lens: Vec<usize>,
    /// Per interned text: its bucketed character histogram.
    hists: Vec<[u16; 28]>,
}

/// A [`TupleSimilarity`] transposed into per-attribute columns, ready for
/// block-wise candidate scoring.
///
/// Built *from* the row measure, so all cached statistics are bit-for-bit
/// the row measure's — see the module docs for the identity argument.
#[derive(Debug, Clone)]
pub struct ColumnarMeasure {
    cols: Vec<AttrColumn>,
    ranges: Vec<Option<f64>>,
    row_count: usize,
}

impl ColumnarMeasure {
    /// Transpose `measure`'s row-major cell caches into columns.
    pub fn from_measure(measure: &TupleSimilarity) -> ColumnarMeasure {
        let rows = measure.cells();
        let n_attrs = measure.attrs().len();
        let mut cols: Vec<AttrColumn> = Vec::with_capacity(n_attrs);
        for k in 0..n_attrs {
            let mut col = AttrColumn::default();
            let mut intern: HashMap<String, u32> = HashMap::new();
            for row in rows {
                match &row[k] {
                    Some(c) => {
                        col.present.push(true);
                        col.weight.push(c.weight);
                        col.near_weight.push(c.near_weight);
                        col.has_num.push(c.num.is_some());
                        col.num.push(c.num.unwrap_or(0.0));
                        let next = intern.len() as u32;
                        let id = *intern.entry(c.text.clone()).or_insert(next);
                        if id == next {
                            col.chars.push(c.text.chars().collect());
                            col.lens.push(c.len);
                            col.hists.push(c.hist);
                        }
                        col.text_id.push(id);
                    }
                    None => {
                        col.present.push(false);
                        col.weight.push(0.0);
                        col.near_weight.push(0.0);
                        col.has_num.push(false);
                        col.num.push(0.0);
                        col.text_id.push(0);
                    }
                }
            }
            cols.push(col);
        }
        ColumnarMeasure {
            cols,
            ranges: measure.ranges().to_vec(),
            row_count: rows.len(),
        }
    }

    /// Number of rows the measure is bound to.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of participating attributes.
    pub fn attr_count(&self) -> usize {
        self.cols.len()
    }
}

/// Per-worker scratch for the block kernel: accumulators, the edit-distance
/// DP rows, and one memo per attribute for interned-text pair similarities
/// (a pure symmetric function, cached under its canonical `(min, max)`
/// key — deterministic no matter the lookup order).
struct KernelScratch {
    ub_num: Vec<f64>,
    ub_den: Vec<f64>,
    sim_num: Vec<f64>,
    sim_den: Vec<f64>,
    alive: Vec<bool>,
    edit: EditScratch,
    memo: Vec<HashMap<(u32, u32), f64>>,
}

impl KernelScratch {
    fn new(n_attrs: usize) -> Self {
        KernelScratch {
            ub_num: Vec::new(),
            ub_den: Vec::new(),
            sim_num: Vec::new(),
            sim_den: Vec::new(),
            alive: Vec::new(),
            edit: EditScratch::new(),
            memo: (0..n_attrs).map(|_| HashMap::new()).collect(),
        }
    }
}

/// Per-chunk scoring output, merged in chunk (= candidate) order.
struct ScoredChunk {
    pairs: Vec<DuplicatePair>,
    unsure: Vec<DuplicatePair>,
    filtered_out: usize,
    compared: usize,
    memo_hits: usize,
}

/// Score one block of candidate pairs: an upper-bound filter sweep, then a
/// full-similarity sweep over the survivors, both attribute-outer /
/// pair-inner so each pair's accumulation order matches the row loop's
/// attribute order exactly.
fn score_block(
    cm: &ColumnarMeasure,
    cfg: &DetectorConfig,
    block: &[(usize, usize)],
    scratch: &mut KernelScratch,
    out: &mut ScoredChunk,
) {
    let n = block.len();
    scratch.alive.clear();
    scratch.alive.resize(n, true);

    // Phase A — the admissible upper-bound filter (mirrors
    // `TupleSimilarity::upper_bound` term for term).
    if cfg.use_filter {
        scratch.ub_num.clear();
        scratch.ub_num.resize(n, 0.0);
        scratch.ub_den.clear();
        scratch.ub_den.resize(n, 0.0);
        for (k, col) in cm.cols.iter().enumerate() {
            let range = cm.ranges[k];
            for (p, &(i, j)) in block.iter().enumerate() {
                if !(col.present[i] && col.present[j]) {
                    continue;
                }
                let w = if col.has_num[i] && col.has_num[j] && col.num[i] != col.num[j] {
                    (col.near_weight[i] + col.near_weight[j]) / 2.0
                } else {
                    (col.weight[i] + col.weight[j]) / 2.0
                };
                let s = if col.has_num[i] && col.has_num[j] {
                    numeric_field_similarity(col.num[i], col.num[j], range)
                } else {
                    let (a, b) = (col.text_id[i] as usize, col.text_id[j] as usize);
                    let (la, lb) = (col.lens[a], col.lens[b]);
                    let max = la.max(lb);
                    if max == 0 {
                        1.0
                    } else {
                        let l1: u32 = col.hists[a]
                            .iter()
                            .zip(&col.hists[b])
                            .map(|(x, y)| x.abs_diff(*y) as u32)
                            .sum();
                        let dist_lb = (l1 as f64 / 2.0).max(la.abs_diff(lb) as f64);
                        1.0 - dist_lb / max as f64
                    }
                };
                scratch.ub_num[p] += w * s;
                scratch.ub_den[p] += w;
            }
        }
        for p in 0..n {
            let ub = if scratch.ub_den[p] == 0.0 {
                0.0
            } else {
                (scratch.ub_num[p] / (scratch.ub_den[p] + EVIDENCE_PRIOR)).min(1.0)
            };
            scratch.alive[p] = ub >= cfg.unsure_threshold;
        }
    }

    // Phase B — the full measure over surviving pairs (mirrors
    // `TupleSimilarity::similarity` term for term).
    scratch.sim_num.clear();
    scratch.sim_num.resize(n, 0.0);
    scratch.sim_den.clear();
    scratch.sim_den.resize(n, 0.0);
    let KernelScratch {
        sim_num,
        sim_den,
        alive,
        edit,
        memo,
        ..
    } = scratch;
    for (k, col) in cm.cols.iter().enumerate() {
        let range = cm.ranges[k];
        let memo_k = &mut memo[k];
        for (p, &(i, j)) in block.iter().enumerate() {
            if !(alive[p] && col.present[i] && col.present[j]) {
                continue;
            }
            let (w, s) = if col.has_num[i] && col.has_num[j] {
                let (x, y) = (col.num[i], col.num[j]);
                let w = if x == y {
                    (col.weight[i] + col.weight[j]) / 2.0
                } else {
                    (col.near_weight[i] + col.near_weight[j]) / 2.0
                };
                (w, numeric_field_similarity(x, y, range))
            } else {
                let w = (col.weight[i] + col.weight[j]) / 2.0;
                let (a, b) = (col.text_id[i], col.text_id[j]);
                let s = if a == b {
                    // levenshtein_similarity(x, x) is exactly 1.0 (distance
                    // 0, and the both-empty case returns the literal), so
                    // this fast path changes no bits.
                    1.0
                } else {
                    let key = (a.min(b), a.max(b));
                    match memo_k.get(&key) {
                        Some(&s) => {
                            out.memo_hits += 1;
                            s
                        }
                        None => {
                            let s = levenshtein_similarity_chars(
                                &col.chars[a as usize],
                                &col.chars[b as usize],
                                edit,
                            );
                            memo_k.insert(key, s);
                            s
                        }
                    }
                };
                (w, s)
            };
            sim_num[p] += w * s;
            sim_den[p] += w;
        }
    }

    // Phase C — classification, in candidate order.
    for (p, &(i, j)) in block.iter().enumerate() {
        if !alive[p] {
            out.filtered_out += 1;
            continue;
        }
        out.compared += 1;
        let s = if sim_den[p] == 0.0 {
            0.0
        } else {
            (sim_num[p] / (sim_den[p] + EVIDENCE_PRIOR)).clamp(0.0, 1.0)
        };
        if s >= cfg.threshold {
            out.pairs.push(DuplicatePair {
                left: i,
                right: j,
                similarity: s,
            });
        } else if s >= cfg.unsure_threshold {
            out.unsure.push(DuplicatePair {
                left: i,
                right: j,
                similarity: s,
            });
        }
    }
}

/// Which scorer backs [`score_candidate_pairs`]: the row-at-a-time
/// reference measure or its columnar transposition. Both produce
/// bit-identical [`ScoredCandidates`].
#[derive(Debug, Clone, Copy)]
pub enum PairScorer<'a> {
    /// The row path: per-pair calls into [`TupleSimilarity`].
    Rows {
        /// The table the measure is bound to (API symmetry with
        /// [`TupleSimilarity::similarity`]; all data comes from the caches).
        table: &'a Table,
        /// The row measure.
        measure: &'a TupleSimilarity,
    },
    /// The columnar path: block sweeps over a [`ColumnarMeasure`].
    Columnar(
        /// The transposed measure.
        &'a ColumnarMeasure,
    ),
}

/// Score a candidate-pair list on up to `par.get()` threads, merging chunk
/// results in candidate order. The returned pair lists are **unsorted**
/// (candidate order); callers apply the canonical similarity-descending
/// stable sort. Row and columnar scorers agree bit for bit — pairs, stats,
/// and similarity values alike.
pub fn score_candidate_pairs(
    scorer: &PairScorer<'_>,
    cfg: &DetectorConfig,
    candidates: &[(usize, usize)],
    par: Parallelism,
) -> ScoredCandidates {
    let chunks = par_chunks(par, candidates, |_, chunk| {
        let mut out = ScoredChunk {
            pairs: Vec::new(),
            unsure: Vec::new(),
            filtered_out: 0,
            compared: 0,
            memo_hits: 0,
        };
        match scorer {
            PairScorer::Rows { table, measure } => {
                for &(i, j) in chunk {
                    if cfg.use_filter && measure.upper_bound(table, i, j) < cfg.unsure_threshold {
                        out.filtered_out += 1;
                        continue;
                    }
                    out.compared += 1;
                    let s = measure.similarity(table, i, j);
                    if s >= cfg.threshold {
                        out.pairs.push(DuplicatePair {
                            left: i,
                            right: j,
                            similarity: s,
                        });
                    } else if s >= cfg.unsure_threshold {
                        out.unsure.push(DuplicatePair {
                            left: i,
                            right: j,
                            similarity: s,
                        });
                    }
                }
            }
            PairScorer::Columnar(cm) => {
                let mut scratch = KernelScratch::new(cm.attr_count());
                for block in chunk.chunks(PAIR_BLOCK) {
                    score_block(cm, cfg, block, &mut scratch, &mut out);
                }
            }
        }
        out
    });
    let mut merged = ScoredCandidates::default();
    for chunk in chunks {
        merged.filtered_out += chunk.filtered_out;
        merged.compared += chunk.compared;
        merged.memo_hits += chunk.memo_hits;
        merged.pairs.extend(chunk.pairs);
        merged.unsure.extend(chunk.unsure);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{candidate_pairs, CandidateStrategy};
    use crate::detector::resolve_attributes;
    use hummer_engine::table;

    fn scorers_agree(t: &Table, cfg: &DetectorConfig) {
        let attrs = resolve_attributes(t, cfg).unwrap();
        let measure = TupleSimilarity::new(t, attrs);
        let cm = ColumnarMeasure::from_measure(&measure);
        let candidates = candidate_pairs(t, &CandidateStrategy::AllPairs);
        for degree in [1, 2, 4] {
            let par = Parallelism::degree(degree);
            let rows = score_candidate_pairs(
                &PairScorer::Rows {
                    table: t,
                    measure: &measure,
                },
                cfg,
                &candidates,
                par,
            );
            let cols = score_candidate_pairs(&PairScorer::Columnar(&cm), cfg, &candidates, par);
            assert_eq!(rows.filtered_out, cols.filtered_out, "degree {degree}");
            assert_eq!(rows.compared, cols.compared, "degree {degree}");
            assert_eq!(rows.pairs, cols.pairs, "degree {degree}");
            assert_eq!(rows.unsure, cols.unsure, "degree {degree}");
            for (a, b) in rows.pairs.iter().zip(&cols.pairs) {
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
            }
        }
    }

    #[test]
    fn columnar_matches_rows_on_mixed_table() {
        let t = table! {
            "People" => ["Name", "City", "Age"];
            ["John Smith", "Berlin", 34],
            ["Jon Smith", "Berlin", 34],
            ["John Smith", (), 34],
            ["Mary Jones", "Hamburg", 28],
            ["Mary Jones", "Hamburg", 28],
            ["Peter Miller", "Munich", 45],
            ["", "Berlin", ()],
        };
        scorers_agree(
            &t,
            &DetectorConfig {
                threshold: 0.75,
                unsure_threshold: 0.55,
                ..Default::default()
            },
        );
        scorers_agree(
            &t,
            &DetectorConfig {
                threshold: 0.75,
                unsure_threshold: 0.55,
                use_filter: false,
                ..Default::default()
            },
        );
    }

    #[test]
    fn columnar_matches_rows_on_numeric_heavy_table() {
        let rows: Vec<hummer_engine::Row> = (0..24)
            .map(|i| {
                hummer_engine::Row::from_values(vec![
                    hummer_engine::Value::text(format!("Person {}", i / 2)),
                    hummer_engine::Value::Float(19.99 + (i / 2) as f64 * 0.5),
                    hummer_engine::Value::Int(1970 + (i % 12) as i64),
                ])
            })
            .collect();
        let t = Table::from_rows("Catalog", &["Name", "Price", "Year"], rows).unwrap();
        scorers_agree(
            &t,
            &DetectorConfig {
                attributes: Some(vec!["Name".into(), "Price".into(), "Year".into()]),
                threshold: 0.7,
                unsure_threshold: 0.5,
                ..Default::default()
            },
        );
    }
}
