//! Snapshot files: one checksummed, atomically-written image of the whole
//! catalog per generation.
//!
//! ## File format
//!
//! ```text
//! "HUMSNAP1" (8 bytes) · payload_len u32-LE · crc32(payload) u32-LE · payload
//! payload: generation u64 · version_clock u64 · table_count u32 ·
//!          per table: alias str · version u64 · table (engine codec)
//! ```
//!
//! ## Write discipline
//!
//! A snapshot is written to `snapshot-<gen>.tmp`, fsynced, renamed to its
//! final `snapshot-<gen>.snap` name, and the directory is fsynced — so a
//! reader either sees a complete, checksummed snapshot or none at all.
//! Loading validates magic, length, and CRC before decoding; recovery falls
//! back to the next-older snapshot if the newest fails validation.

use crate::error::{Result, StoreError};
use hummer_engine::codec::{read_table, write_table, ByteReader, ByteWriter};
use hummer_engine::Table;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"HUMSNAP1";

/// One catalog entry as it appears in a snapshot (borrowed from the caller;
/// writing a snapshot never clones table data).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotEntry<'a> {
    /// Catalog alias.
    pub alias: &'a str,
    /// Content version.
    pub version: u64,
    /// The table.
    pub table: &'a Table,
}

/// A loaded snapshot.
#[derive(Debug)]
pub struct SnapshotData {
    /// The generation this snapshot captures.
    pub generation: u64,
    /// Highest content version assigned before the snapshot was taken.
    pub version_clock: u64,
    /// The catalog: `(alias, version, table)` per entry.
    pub tables: Vec<(String, u64, Table)>,
}

/// The on-disk name of generation `gen`'s snapshot.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen:020}.snap"))
}

/// The on-disk name of generation `gen`'s WAL.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

/// fsync a directory so a rename/create/delete inside it is durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StoreError::io("fsync directory", dir, e))
}

/// The generation a store filename refers to, given its naming scheme —
/// the one place the `snapshot-*.snap` / `wal-*.log` patterns are parsed.
pub fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse::<u64>()
        .ok()
}

/// Snapshot files present in `dir`, newest generation first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("list", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = parse_generation(name, "snapshot-", ".snap") {
            found.push((gen, entry.path()));
        }
    }
    found.sort_by_key(|(gen, _)| std::cmp::Reverse(*gen));
    Ok(found)
}

/// Write generation `generation`'s snapshot atomically (temp file + fsync +
/// rename + directory fsync). Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    generation: u64,
    version_clock: u64,
    entries: &[SnapshotEntry<'_>],
    fsync: bool,
) -> Result<PathBuf> {
    let mut w = ByteWriter::new();
    w.put_u64(generation);
    w.put_u64(version_clock);
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put_str(e.alias);
        w.put_u64(e.version);
        write_table(&mut w, e.table);
    }
    let payload = w.into_bytes();
    let final_path = snapshot_path(dir, generation);
    if payload.len() as u64 > u64::from(u32::MAX) {
        return Err(StoreError::TooLarge {
            what: "snapshot payload",
            path: final_path,
            bytes: payload.len() as u64,
            cap: u64::from(u32::MAX),
        });
    }
    let mut file_bytes = Vec::with_capacity(16 + payload.len());
    file_bytes.extend_from_slice(SNAP_MAGIC);
    file_bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    file_bytes.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
    file_bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!("snapshot-{generation:020}.tmp"));
    let mut f = File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, e))?;
    f.write_all(&file_bytes)
        .map_err(|e| StoreError::io("write", &tmp, e))?;
    if fsync {
        f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, e))?;
    }
    drop(f);
    fs::rename(&tmp, &final_path).map_err(|e| StoreError::io("rename", &tmp, e))?;
    if fsync {
        sync_dir(dir)?;
    }
    Ok(final_path)
}

/// Load and fully validate one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<SnapshotData> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("read", path, e))?;
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(StoreError::corrupt(path, "bad or truncated snapshot magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + len {
        return Err(StoreError::corrupt(
            path,
            format!("payload length {len} but file holds {}", bytes.len() - 16),
        ));
    }
    let payload = &bytes[16..];
    if crate::crc::crc32(payload) != crc {
        return Err(StoreError::corrupt(path, "payload CRC mismatch"));
    }
    let mut r = ByteReader::new(payload);
    let decode = |e: hummer_engine::EngineError| StoreError::corrupt(path, e.to_string());
    let generation = r.get_u64("snapshot generation").map_err(decode)?;
    let version_clock = r.get_u64("snapshot version clock").map_err(decode)?;
    let count = r.get_count(13, "snapshot table count").map_err(decode)?;
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        let alias = r.get_str("snapshot alias").map_err(decode)?;
        let version = r.get_u64("snapshot table version").map_err(decode)?;
        let table = read_table(&mut r).map_err(decode)?;
        tables.push((alias, version, table));
    }
    r.expect_end("snapshot").map_err(decode)?;
    Ok(SnapshotData {
        generation,
        version_clock,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn temp_dir() -> PathBuf {
        crate::scratch::dir("snap")
    }

    fn sample_tables() -> Vec<(String, u64, Table)> {
        vec![
            (
                "EE_Student".into(),
                3,
                table! { "EE_Student" => ["Name", "Age"]; ["John, \"J\"", 24], ["Mary", ()] },
            ),
            (
                "CS_Students".into(),
                7,
                table! { "CS_Students" => ["FullName"]; ["Ada\nLovelace"] },
            ),
        ]
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = temp_dir();
        let tables = sample_tables();
        let entries: Vec<SnapshotEntry<'_>> = tables
            .iter()
            .map(|(a, v, t)| SnapshotEntry {
                alias: a,
                version: *v,
                table: t,
            })
            .collect();
        let path = write_snapshot(&dir, 5, 9, &entries, true).unwrap();
        let data = load_snapshot(&path).unwrap();
        assert_eq!(data.generation, 5);
        assert_eq!(data.version_clock, 9);
        assert_eq!(data.tables, tables);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn listing_orders_newest_first_and_ignores_tmp() {
        let dir = temp_dir();
        for gen in [2u64, 10, 1] {
            write_snapshot(&dir, gen, gen, &[], false).unwrap();
        }
        fs::write(dir.join("snapshot-00000000000000000099.tmp"), b"junk").unwrap();
        fs::write(dir.join("unrelated.txt"), b"junk").unwrap();
        let listed = list_snapshots(&dir).unwrap();
        let gens: Vec<u64> = listed.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, vec![10, 2, 1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir();
        let tables = sample_tables();
        let entries: Vec<SnapshotEntry<'_>> = tables
            .iter()
            .map(|(a, v, t)| SnapshotEntry {
                alias: a,
                version: *v,
                table: t,
            })
            .collect();
        let path = write_snapshot(&dir, 1, 1, &entries, false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte: CRC must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation must be caught by the length check.
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&path).is_err());
        // Wrong magic.
        fs::write(&path, b"NOTASNAPxxxxxxxx").unwrap();
        assert!(load_snapshot(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
