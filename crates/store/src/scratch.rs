//! Unique scratch directories under the system temp dir.
//!
//! The store's own tests, the durability suites at the workspace root, the
//! server's durable-service tests, and the `exp12_durability` bench all
//! need throwaway data directories; this is the one implementation they
//! share. Collision-free across concurrent test processes (PID) and within
//! a process (atomic counter). Callers remove the directory when done.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// Create and return a fresh scratch directory tagged `tag`.
pub fn dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hummer_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_exist() {
        let a = dir("scratch_test");
        let b = dir("scratch_test");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
