//! # hummer-store — the durable catalog under the HumMer service
//!
//! HumMer is a system users return to: prepared fusion queries and the
//! query-language front end assume sources that outlive a single run. This
//! crate makes the versioned catalog durable with nothing but `std`:
//!
//! * [`snapshot`] — one checksummed image of the whole catalog per
//!   generation, written atomically (temp file → fsync → rename → directory
//!   fsync);
//! * [`wal`] — an append-only write-ahead log of catalog mutations
//!   (register / delta / deregister), each record length-prefixed and
//!   CRC-guarded, fsynced on commit. A logged delta is exactly
//!   `hummer_delta::TableDelta` — the incremental-fusion change model
//!   doubles as the recovery record;
//! * [`store`] — [`CatalogStore`]: open + recover (newest valid snapshot,
//!   then the WAL tail, tolerating a torn final record), logging hooks, and
//!   threshold-based compaction;
//! * [`crc`] / `hummer_engine::codec` — the integrity and byte layers.
//!
//! **Contract:** recovery reproduces the pre-crash catalog *byte-identically*
//! — tables, content versions, and therefore fusion output at every
//! parallelism degree. See `ARCHITECTURE.md`, "The store subsystem".
//!
//! ## Example
//!
//! ```
//! use hummer_store::{CatalogStore, StoreOptions};
//! use hummer_delta::TableDelta;
//! use hummer_engine::{table, Value};
//!
//! let dir = std::env::temp_dir().join(format!("store_doc_{}", std::process::id()));
//! let (mut store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
//! assert!(recovery.tables.is_empty());
//!
//! // Log a registration and a delta; both are durable once logged.
//! let t = table! { "People" => ["Name", "Age"]; ["John Smith", 24] };
//! store.log_register("People", 1, &t).unwrap();
//! store
//!     .log_delta(
//!         "People",
//!         2,
//!         &TableDelta::new("People").insert(vec![Value::text("Mary Jones"), Value::Int(22)]),
//!     )
//!     .unwrap();
//! drop(store); // "crash"
//!
//! let (_store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
//! assert_eq!(recovery.tables[0].table.len(), 2);
//! assert_eq!(recovery.tables[0].version, 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod error;
pub mod group;
pub mod scratch;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{Result, StoreError};
pub use group::{WalCommitter, WalTicket};
pub use snapshot::SnapshotEntry;
pub use store::{CatalogStore, RecoveredTable, Recovery, StoreOptions, StoreStats};
pub use wal::WalRecord;
