//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) — the integrity check on
//! every WAL record and snapshot payload. Table-driven, built at compile
//! time; `std`-only like the rest of the workspace.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
