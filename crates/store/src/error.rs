//! The store's error type: every failure carries the file and the operation
//! that failed, end-to-end (a bare `EPERM` with no path is undebuggable on a
//! production box).

use std::fmt;
use std::path::{Path, PathBuf};

/// Any failure inside the durable catalog store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, annotated with the operation and path.
    Io {
        /// What the store was doing (`"open"`, `"append to"`, `"fsync"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A store file failed validation (bad magic, checksum mismatch,
    /// undecodable payload) somewhere other than a tolerated torn WAL tail.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A WAL record decoded fine but could not be applied to the recovered
    /// state (e.g. a delta for a table the log never registered). This means
    /// the log is internally inconsistent — recovery stops loudly instead of
    /// serving a silently wrong catalog.
    Replay {
        /// The WAL file being replayed.
        path: PathBuf,
        /// Zero-based index of the failing record.
        record: u64,
        /// Why it could not be applied.
        detail: String,
    },
    /// A record or snapshot payload exceeds an on-disk format limit; it is
    /// refused at write time (a frame the recovery scan would drop as
    /// corrupt must never be written).
    TooLarge {
        /// What was being written (`"WAL record"`, `"snapshot payload"`).
        what: &'static str,
        /// The file it would have gone to.
        path: PathBuf,
        /// Actual size.
        bytes: u64,
        /// The format limit.
        cap: u64,
    },
    /// A WAL append failed mid-frame and the file could not be truncated
    /// back to the last durable record. Appending past garbage would make
    /// recovery drop *later, acked* records as a torn tail, so the store
    /// refuses all further writes; reopen (which re-truncates) to recover.
    Poisoned {
        /// The WAL file left with a partial frame.
        path: PathBuf,
    },
    /// Another live store holds the data directory's OS advisory lock. Two
    /// writers interleaving WAL appends would corrupt each other's acked
    /// state, so `open` refuses. The lock dies with its holder (even on
    /// `kill -9`), so there is no stale-lock state to reclaim.
    Locked {
        /// The lock file.
        path: PathBuf,
        /// PID the lock file records (best-effort diagnostic; 0 if
        /// unreadable).
        pid: u32,
    },
}

impl StoreError {
    /// Annotate an `io::Error` with its operation and path.
    pub fn io(op: &'static str, path: impl AsRef<Path>, source: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// Build a corruption error for `path`.
    pub fn corrupt(path: impl AsRef<Path>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.as_ref().to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "cannot {op} `{}`: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file `{}`: {detail}", path.display())
            }
            StoreError::Replay {
                path,
                record,
                detail,
            } => write!(
                f,
                "WAL replay failed at record {record} of `{}`: {detail}",
                path.display()
            ),
            StoreError::TooLarge {
                what,
                path,
                bytes,
                cap,
            } => write!(
                f,
                "cannot write {what} to `{}`: {bytes} bytes exceeds the {cap}-byte format limit",
                path.display()
            ),
            StoreError::Poisoned { path } => write!(
                f,
                "store refuses writes: `{}` holds a partial frame from a failed append \
                 that could not be truncated; reopen the store to recover",
                path.display()
            ),
            StoreError::Locked { path, pid } => write!(
                f,
                "data directory is locked by live process {pid} (`{}`); \
                 two writers would corrupt the WAL",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> Self {
        match &e {
            StoreError::Io { source, .. } => std::io::Error::new(source.kind(), e.to_string()),
            _ => std::io::Error::other(e.to_string()),
        }
    }
}

/// Result alias for the store.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn io_errors_carry_op_and_path() {
        let e = StoreError::io(
            "append to",
            "/data/wal-1.log",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        let msg = e.to_string();
        assert!(msg.contains("append to"), "{msg}");
        assert!(msg.contains("/data/wal-1.log"), "{msg}");
        assert!(msg.contains("denied"), "{msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn corrupt_and_replay_render_context() {
        let c = StoreError::corrupt("/d/snapshot-1.snap", "CRC mismatch");
        assert!(c.to_string().contains("snapshot-1.snap"));
        assert!(c.to_string().contains("CRC"));
        let r = StoreError::Replay {
            path: "/d/wal-1.log".into(),
            record: 7,
            detail: "delta for unknown table `x`".into(),
        };
        assert!(r.to_string().contains("record 7"));
        assert!(r.to_string().contains("wal-1.log"));
    }

    #[test]
    fn converts_into_io_error_with_context() {
        let e = StoreError::io(
            "open",
            "/d/wal-1.log",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::NotFound);
        assert!(io.to_string().contains("/d/wal-1.log"));
    }
}
