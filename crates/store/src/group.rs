//! Leader-based group commit for the WAL tail.
//!
//! Concurrent writers enqueue encoded frames into a shared pending buffer
//! and then wait for durability. The first waiter whose record is not yet
//! durable becomes the *leader*: it takes the whole pending buffer, writes
//! it with one `write_all` + one fsync, advances the durable watermark,
//! and wakes every waiter whose record the batch covered. Writers that
//! arrive while a commit is in flight pile into the next batch — under
//! contention the fsync cost amortizes across the batch instead of being
//! paid per record.
//!
//! ## Invariants
//!
//! - **Byte identity**: frames land in the file in enqueue order, so the
//!   on-disk WAL is bit-identical to the same records appended
//!   sequentially with per-record fsync. Recovery code is unchanged.
//! - **Ack order**: `durable_seq` only moves forward and a waiter returns
//!   only once its sequence number is covered, so acks never reorder
//!   relative to enqueues.
//! - **Acked ⇒ durable**: a waiter returns `Ok` only after the fsync that
//!   covered its frame completed (when fsync is enabled).
//! - **Failure freezes the store**: writers apply state *before* waiting,
//!   so a batch that fails to reach disk cannot simply be retried — later
//!   records could then replay against state the failed record never
//!   produced. A failed group commit therefore truncates the file back to
//!   the durable prefix (best effort) and poisons the store: every waiter
//!   covering the failed range gets an error and all further enqueues are
//!   refused until the operator restarts.

use crate::error::{Result, StoreError};
use hummer_obs::Histogram;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Proof that a record was enqueued; redeem it with
/// [`WalCommitter::wait`] (or [`crate::CatalogStore`]'s inline `log_*`
/// helpers, which do so internally) before acking the mutation.
#[derive(Debug)]
#[must_use = "a mutation is only durable after waiting on its ticket"]
pub struct WalTicket {
    pub(crate) seq: u64,
}

impl WalTicket {
    /// The record's position in enqueue order (1-based, process-local).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// A cloneable handle that waits for enqueued records to become durable
/// *without* holding the store lock — this is what lets one fsync cover
/// many writers.
#[derive(Debug, Clone)]
pub struct WalCommitter {
    shared: Arc<WalShared>,
}

impl WalCommitter {
    /// Block until the ticket's record is durable (or the commit that
    /// covered it failed). May perform the commit itself (leader role).
    pub fn wait(&self, ticket: WalTicket) -> Result<()> {
        self.shared.wait_durable(ticket.seq)
    }
}

/// The WAL file handle plus the length of its durable prefix. Only the
/// commit leader (serialized by `WalState::committing`) and compaction
/// touch this, so the lock is uncontended.
#[derive(Debug)]
pub(crate) struct WalIo {
    pub(crate) file: File,
    pub(crate) durable_bytes: u64,
}

/// Bookkeeping shared by enqueuers, waiters, and the commit leader.
/// Held only for pointer-sized updates — never across I/O.
#[derive(Debug)]
pub(crate) struct WalState {
    /// Encoded frames enqueued but not yet written.
    pub(crate) pending: Vec<u8>,
    /// Records in `pending`.
    pub(crate) pending_records: u64,
    /// Next sequence number to hand out (first record is 1).
    pub(crate) next_seq: u64,
    /// Every record with `seq <= durable_seq` is on disk (and fsynced,
    /// when fsync is enabled).
    pub(crate) durable_seq: u64,
    /// A leader is currently writing a batch.
    pub(crate) committing: bool,
    /// Set on commit failure; all further writes are refused.
    pub(crate) poisoned: bool,
    /// Records with `seq >= fail_from` were lost to a failed commit.
    pub(crate) fail_from: Option<u64>,
    /// Current WAL path (mirrors `CatalogStore`; used for error context).
    pub(crate) path: PathBuf,
    /// Durable WAL length in bytes, header included.
    pub(crate) wal_bytes: u64,
    /// Durable records in the current WAL (replayed + committed).
    pub(crate) wal_records: u64,
    /// WAL commit fsyncs issued (failed ones included).
    pub(crate) fsyncs: u64,
    /// Group commits performed (batches written, empty drains excluded).
    pub(crate) group_commits: u64,
}

/// Everything the group-commit protocol shares between threads.
#[derive(Debug)]
pub(crate) struct WalShared {
    pub(crate) state: Mutex<WalState>,
    pub(crate) cond: Condvar,
    pub(crate) io: Mutex<WalIo>,
    /// fsync batches on commit (from `StoreOptions::fsync`).
    pub(crate) fsync: bool,
    /// How long a leader lingers before taking the batch, letting more
    /// writers pile in (from `StoreOptions::group_commit_window_us`).
    pub(crate) window: Duration,
    /// Per-fsync latency, microseconds.
    pub(crate) fsync_hist: Arc<Histogram>,
    /// Records per written batch.
    pub(crate) batch_hist: Arc<Histogram>,
}

impl WalShared {
    pub(crate) fn new(
        file: File,
        path: PathBuf,
        wal_bytes: u64,
        wal_records: u64,
        fsync: bool,
        window_us: u64,
    ) -> Arc<WalShared> {
        Arc::new(WalShared {
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_records: 0,
                next_seq: 1,
                durable_seq: 0,
                committing: false,
                poisoned: false,
                fail_from: None,
                path,
                wal_bytes,
                wal_records,
                fsyncs: 0,
                group_commits: 0,
            }),
            cond: Condvar::new(),
            io: Mutex::new(WalIo {
                file,
                durable_bytes: wal_bytes,
            }),
            fsync,
            window: Duration::from_micros(window_us),
            fsync_hist: Arc::new(Histogram::new()),
            batch_hist: Arc::new(Histogram::new()),
        })
    }

    pub(crate) fn committer(self: &Arc<Self>) -> WalCommitter {
        WalCommitter {
            shared: Arc::clone(self),
        }
    }

    /// Append `framed` to the pending buffer and assign its sequence
    /// number. Cheap (no I/O); call under whatever lock establishes the
    /// desired WAL order.
    pub(crate) fn enqueue(&self, framed: &[u8]) -> Result<WalTicket> {
        let mut st = self.state.lock().unwrap();
        if st.poisoned {
            return Err(StoreError::Poisoned {
                path: st.path.clone(),
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.extend_from_slice(framed);
        st.pending_records += 1;
        Ok(WalTicket { seq })
    }

    /// Block until `seq` is durable; acts as commit leader when nobody
    /// else is writing.
    pub(crate) fn wait_durable(&self, seq: u64) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.durable_seq >= seq {
                return Ok(());
            }
            if let Some(from) = st.fail_from {
                if seq >= from {
                    return Err(StoreError::Poisoned {
                        path: st.path.clone(),
                    });
                }
            }
            if st.committing {
                st = self.cond.wait(st).unwrap();
            } else {
                let (guard, result) = self.commit_locked(st);
                st = guard;
                result?;
            }
        }
    }

    /// Drain *everything* enqueued so far to disk (compaction calls this
    /// before rotating the WAL). Returns once `durable_seq` catches up
    /// with `next_seq - 1`.
    pub(crate) fn commit_all(&self) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.poisoned {
                return Err(StoreError::Poisoned {
                    path: st.path.clone(),
                });
            }
            if st.durable_seq + 1 == st.next_seq && st.pending.is_empty() {
                return Ok(());
            }
            if st.committing {
                st = self.cond.wait(st).unwrap();
            } else {
                let (guard, result) = self.commit_locked(st);
                st = guard;
                result?;
            }
        }
    }

    /// The leader path: linger for the window, take the batch, write it
    /// with one fsync, publish the outcome, wake everyone. Called with
    /// the state lock held and `committing == false`; returns with the
    /// state lock re-held and `committing == false`.
    fn commit_locked<'a>(
        &'a self,
        mut st: MutexGuard<'a, WalState>,
    ) -> (MutexGuard<'a, WalState>, Result<()>) {
        st.committing = true;
        if !self.window.is_zero() {
            drop(st);
            std::thread::sleep(self.window);
            st = self.state.lock().unwrap();
        }
        let batch = std::mem::take(&mut st.pending);
        let records = st.pending_records;
        st.pending_records = 0;
        let batch_end = st.next_seq - 1;
        let path = st.path.clone();
        drop(st);

        let mut fsynced = false;
        let mut result = Ok(());
        if !batch.is_empty() {
            let mut io = self.io.lock().unwrap();
            result = io
                .file
                .write_all(&batch)
                .and_then(|()| io.file.flush())
                .map_err(|e| StoreError::io("append to", &path, e));
            if result.is_ok() && self.fsync {
                let t0 = Instant::now();
                let synced = io.file.sync_data();
                self.fsync_hist.record_duration(t0.elapsed());
                fsynced = true;
                result = synced.map_err(|e| StoreError::io("fsync", &path, e));
            }
            if result.is_ok() {
                io.durable_bytes += batch.len() as u64;
            } else {
                // Truncate the torn batch back to the durable prefix so
                // the file recovery reads is exactly the acked records;
                // the store poisons either way (see module docs).
                let _ = OpenOptions::new().write(true).open(&path).and_then(|f| {
                    f.set_len(io.durable_bytes)?;
                    f.sync_all()
                });
            }
        }

        let mut st = self.state.lock().unwrap();
        match &result {
            Ok(()) => {
                st.durable_seq = batch_end;
                if !batch.is_empty() {
                    st.wal_bytes += batch.len() as u64;
                    st.wal_records += records;
                    st.group_commits += 1;
                    if fsynced {
                        st.fsyncs += 1;
                    }
                    self.batch_hist.record(records);
                }
            }
            Err(_) => {
                // Records enqueued while we were writing are lost too —
                // they would otherwise commit on top of a hole.
                if fsynced {
                    st.fsyncs += 1;
                }
                st.poisoned = true;
                let from = st.durable_seq + 1;
                st.fail_from = Some(st.fail_from.map_or(from, |f| f.min(from)));
                st.pending.clear();
                st.pending_records = 0;
            }
        }
        st.committing = false;
        self.cond.notify_all();
        (st, result)
    }
}
