//! The append-only write-ahead log: record framing, encode/decode, and the
//! torn-tail-tolerant scan used by recovery.
//!
//! ## File format
//!
//! ```text
//! header:  "HUMWAL1\0" (8 bytes) · generation u64-LE
//! record:  payload_len u32-LE · crc32(payload) u32-LE · payload
//! ```
//!
//! A record's payload is a tag byte plus the mutation body; delta payloads
//! reuse `hummer_delta::codec` verbatim — PR 4's `TableDelta` *is* the WAL
//! record. The scan stops at the first frame that does not check out
//! (short, zero-length, or CRC-mismatched): that is the torn tail a crash
//! mid-append leaves behind, and everything before it is exactly the
//! fully-acked prefix. A record whose CRC passes but whose payload does not
//! decode is *not* a torn tail — it is corruption, reported loudly.

use crate::error::{Result, StoreError};
use hummer_delta::{codec as delta_codec, TableDelta};
use hummer_engine::codec::{read_table, write_table, ByteReader, ByteWriter};
use hummer_engine::Table;
use std::path::Path;

/// WAL file magic (8 bytes).
pub const WAL_MAGIC: &[u8; 8] = b"HUMWAL1\0";
/// Header length: magic + generation.
pub const WAL_HEADER_LEN: u64 = 16;
/// Cap on one record's payload: the scan treats larger length prefixes as
/// corruption (so a corrupt prefix cannot trigger a giant allocation), and
/// the writer refuses to produce records above it — a frame the scanner
/// would drop must never be written in the first place.
pub const MAX_RECORD_BYTES: u32 = 1 << 28; // 256 MiB

// Record tags. Stable on disk — append new tags, never renumber.
const TAG_REGISTER: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_DEREGISTER: u8 = 3;

/// One logged catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was registered (or replaced) under `alias` at `version`.
    Register {
        /// Catalog alias.
        alias: String,
        /// Content version the catalog assigned.
        version: u64,
        /// The full table content as registered.
        table: Table,
    },
    /// A delta batch was applied to `alias`, producing `version`.
    Delta {
        /// Catalog alias.
        alias: String,
        /// Content version the post-delta table was assigned.
        version: u64,
        /// The batch, replayed through [`TableDelta::apply`] on recovery.
        delta: TableDelta,
    },
    /// `alias` was removed from the catalog.
    Deregister {
        /// Catalog alias.
        alias: String,
    },
}

/// Encode a register record's payload without cloning the table.
pub fn encode_register_payload(alias: &str, version: u64, table: &Table) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_REGISTER);
    w.put_str(alias);
    w.put_u64(version);
    write_table(&mut w, table);
    w.into_bytes()
}

/// Encode a delta record's payload without cloning the batch.
pub fn encode_delta_payload(alias: &str, version: u64, delta: &TableDelta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_DELTA);
    w.put_str(alias);
    w.put_u64(version);
    delta_codec::encode_delta(&mut w, delta);
    w.into_bytes()
}

/// Encode a deregister record's payload.
pub fn encode_deregister_payload(alias: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_DEREGISTER);
    w.put_str(alias);
    w.into_bytes()
}

/// Encode a record's payload (unframed).
pub fn encode_payload(record: &WalRecord) -> Vec<u8> {
    match record {
        WalRecord::Register {
            alias,
            version,
            table,
        } => encode_register_payload(alias, *version, table),
        WalRecord::Delta {
            alias,
            version,
            delta,
        } => encode_delta_payload(alias, *version, delta),
        WalRecord::Deregister { alias } => encode_deregister_payload(alias),
    }
}

/// Decode a record payload. The error string names what failed.
pub fn decode_payload(payload: &[u8]) -> std::result::Result<WalRecord, String> {
    let mut r = ByteReader::new(payload);
    let record = match r.get_u8("record tag").map_err(|e| e.to_string())? {
        TAG_REGISTER => {
            let alias = r.get_str("register alias").map_err(|e| e.to_string())?;
            let version = r.get_u64("register version").map_err(|e| e.to_string())?;
            let table = read_table(&mut r).map_err(|e| e.to_string())?;
            WalRecord::Register {
                alias,
                version,
                table,
            }
        }
        TAG_DELTA => {
            let alias = r.get_str("delta alias").map_err(|e| e.to_string())?;
            let version = r.get_u64("delta version").map_err(|e| e.to_string())?;
            let delta = delta_codec::decode_delta(&mut r).map_err(|e| e.to_string())?;
            WalRecord::Delta {
                alias,
                version,
                delta,
            }
        }
        TAG_DEREGISTER => WalRecord::Deregister {
            alias: r.get_str("deregister alias").map_err(|e| e.to_string())?,
        },
        other => return Err(format!("bad WAL record tag {other}")),
    };
    r.expect_end("WAL record").map_err(|e| e.to_string())?;
    Ok(record)
}

/// Frame a payload for appending: length prefix + CRC + payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crate::crc::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The WAL file header for `generation`.
pub fn header(generation: u64) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..].copy_from_slice(&generation.to_le_bytes());
    h
}

/// What a recovery scan found in a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Whether the 16-byte header was intact. A missing/torn header means
    /// the process died while creating the file: the log is empty.
    pub header_ok: bool,
    /// The generation the header declares (0 when `header_ok` is false).
    pub generation: u64,
    /// Every fully-acked record, in append order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix (header + intact records). Appending
    /// resumes here after truncating any torn tail.
    pub valid_len: u64,
    /// Bytes past the valid prefix (the torn tail a crash left).
    pub dropped_bytes: u64,
}

/// Scan raw WAL bytes, stopping at the first torn frame. CRC-valid frames
/// that fail to decode are corruption and abort with [`StoreError::Corrupt`].
pub fn scan(bytes: &[u8], path: &Path) -> Result<WalScan> {
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        // Torn or foreign header: if the magic is present-but-wrong on a
        // full-length file, that is not our file — refuse to clobber it.
        if bytes.len() >= 8 && &bytes[..8] != WAL_MAGIC {
            return Err(StoreError::corrupt(
                path,
                format!("bad WAL magic {:?}", &bytes[..8]),
            ));
        }
        return Ok(WalScan {
            header_ok: false,
            generation: 0,
            records: Vec::new(),
            valid_len: 0,
            dropped_bytes: bytes.len() as u64,
        });
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn frame header (or clean EOF when empty)
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_BYTES || rest.len() < 8 + len as usize {
            break; // zero-filled or truncated tail
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let payload = &rest[8..8 + len as usize];
        if crate::crc::crc32(payload) != crc {
            break; // torn mid-payload
        }
        let record = decode_payload(payload).map_err(|detail| StoreError::Replay {
            path: path.to_path_buf(),
            record: records.len() as u64,
            detail: format!("CRC-valid record failed to decode: {detail}"),
        })?;
        records.push(record);
        pos += 8 + len as usize;
    }
    Ok(WalScan {
        header_ok: true,
        generation,
        records,
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{table, Value};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                alias: "EE_Student".into(),
                version: 1,
                table: table! { "EE_Student" => ["Name", "Age"]; ["John", 24] },
            },
            WalRecord::Delta {
                alias: "EE_Student".into(),
                version: 2,
                delta: TableDelta::new("EE_Student")
                    .insert(vec![Value::text("Mary"), Value::Int(22)]),
            },
            WalRecord::Deregister {
                alias: "EE_Student".into(),
            },
        ]
    }

    fn wal_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = header(3).to_vec();
        for r in records {
            bytes.extend_from_slice(&frame(&encode_payload(r)));
        }
        bytes
    }

    #[test]
    fn records_round_trip_through_frames() {
        let records = sample_records();
        let bytes = wal_bytes(&records);
        let scanned = scan(&bytes, Path::new("test.log")).unwrap();
        assert!(scanned.header_ok);
        assert_eq!(scanned.generation, 3);
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.dropped_bytes, 0);
    }

    #[test]
    fn torn_final_record_at_every_byte_boundary() {
        let records = sample_records();
        let full = wal_bytes(&records);
        let prefix = wal_bytes(&records[..2]);
        for cut in prefix.len()..full.len() {
            let scanned = scan(&full[..cut], Path::new("test.log")).unwrap();
            assert_eq!(
                scanned.records,
                records[..2],
                "cut at byte {cut} must yield exactly the fully-acked prefix"
            );
            assert_eq!(scanned.valid_len, prefix.len() as u64, "cut {cut}");
            assert_eq!(scanned.dropped_bytes, (cut - prefix.len()) as u64);
        }
    }

    #[test]
    fn zero_filled_tail_is_torn_not_corrupt() {
        let mut bytes = wal_bytes(&sample_records()[..1]);
        let valid = bytes.len();
        bytes.extend_from_slice(&[0u8; 64]);
        let scanned = scan(&bytes, Path::new("test.log")).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.valid_len, valid as u64);
        assert_eq!(scanned.dropped_bytes, 64);
    }

    #[test]
    fn torn_header_means_empty_log() {
        let scanned = scan(&WAL_MAGIC[..5], Path::new("test.log")).unwrap();
        assert!(!scanned.header_ok);
        assert!(scanned.records.is_empty());
        let scanned = scan(b"", Path::new("test.log")).unwrap();
        assert!(!scanned.header_ok);
    }

    #[test]
    fn foreign_magic_is_corrupt() {
        assert!(scan(b"NOTAWAL0rest", Path::new("test.log")).is_err());
    }

    #[test]
    fn crc_valid_garbage_payload_is_replay_error() {
        let mut bytes = header(1).to_vec();
        bytes.extend_from_slice(&frame(&[99, 1, 2, 3])); // bad tag, valid CRC
        let e = scan(&bytes, Path::new("test.log")).unwrap_err();
        assert!(matches!(e, StoreError::Replay { record: 0, .. }), "{e}");
    }

    #[test]
    fn bit_flip_in_payload_stops_the_scan() {
        let records = sample_records();
        let mut bytes = wal_bytes(&records[..1]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let scanned = scan(&bytes, Path::new("test.log")).unwrap();
        assert!(scanned.records.is_empty());
        assert!(scanned.dropped_bytes > 0);
    }
}
