//! [`CatalogStore`]: the durable catalog — snapshot + WAL orchestration,
//! crash recovery, and threshold-based compaction.
//!
//! ## Recovery & compaction state machine
//!
//! A data directory holds at most one *live* generation `g`: the newest
//! valid `snapshot-<g>.snap` plus its `wal-<g>.log` tail. Opening the store:
//!
//! 1. load the newest snapshot that validates (magic, length, CRC); fall
//!    back to older ones if the newest is corrupt;
//! 2. replay `wal-<g>.log` record by record, stopping at the first torn
//!    frame (a crash mid-append) and truncating the file back to the valid
//!    prefix so new appends extend acked state;
//! 3. hand the recovered `(alias, version, table)` set to the caller.
//!
//! Compaction rolls the WAL into a fresh snapshot: write `snapshot-<g+1>`
//! atomically, start an empty `wal-<g+1>.log`, then delete generation `g`'s
//! files. A crash anywhere in that sequence leaves either generation fully
//! recoverable — the snapshot rename is the commit point.
//!
//! ## The byte-identity contract
//!
//! Everything on disk round-trips bit-exactly (engine codec floats are bit
//! patterns, deltas replay through the same [`TableDelta::apply`] that
//! served the request), so a recovered catalog produces **byte-identical
//! fusion output** to the pre-crash catalog at every parallelism degree.

use crate::error::{Result, StoreError};
use crate::group::{WalCommitter, WalShared, WalTicket};
use crate::snapshot::{
    self, list_snapshots, load_snapshot, snapshot_path, sync_dir, wal_path, SnapshotEntry,
};
use crate::wal::{self, WalRecord, WAL_HEADER_LEN};
use hummer_delta::TableDelta;
use hummer_engine::Table;
use hummer_obs::Histogram;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// fsync the WAL on every commit (and snapshots on write). Default on;
    /// turning it off is a benchmarking escape hatch that trades power-loss
    /// durability for throughput (kill -9 safety is unaffected — the page
    /// cache survives the process).
    pub fsync: bool,
    /// Roll the WAL into a fresh snapshot once it exceeds this many bytes
    /// (`0` disables automatic compaction).
    pub compact_after_bytes: u64,
    /// How long a group-commit leader lingers (microseconds) before
    /// flushing the pending batch, letting concurrent writers pile in so
    /// one fsync covers more records. `0` (the default) commits as soon
    /// as a leader is elected — lone writers pay no extra latency, and
    /// batching still happens whenever writers queue behind an in-flight
    /// fsync.
    pub group_commit_window_us: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: true,
            compact_after_bytes: 8 * 1024 * 1024,
            group_commit_window_us: 0,
        }
    }
}

/// One catalog entry as recovered from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTable {
    /// Catalog alias (original casing, as registered).
    pub alias: String,
    /// Content version the entry had when last logged.
    pub version: u64,
    /// The table, byte-identical to the pre-crash content.
    pub table: Table,
}

/// Everything [`CatalogStore::open`] reconstructed, plus how it went.
#[derive(Debug)]
pub struct Recovery {
    /// Recovered catalog entries, sorted by alias.
    pub tables: Vec<RecoveredTable>,
    /// Highest content version ever assigned (the caller's version counter
    /// must resume above this so cache keys never collide across restarts).
    pub last_version: u64,
    /// Generation of the snapshot that seeded recovery, if any.
    pub snapshot_generation: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes dropped (a crash mid-append leaves these).
    pub dropped_bytes: u64,
    /// Snapshot files that failed validation and were skipped.
    pub corrupt_snapshots: u64,
    /// Wall time of the whole open+recover, in milliseconds.
    pub recovery_ms: f64,
}

/// Point-in-time store counters (surfaced by the server's `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreStats {
    /// Live generation number.
    pub generation: u64,
    /// Current WAL size in bytes (header included).
    pub wal_bytes: u64,
    /// Records in the current WAL (replayed + appended since open).
    pub wal_records: u64,
    /// Snapshots written by this process (compactions).
    pub snapshots_written: u64,
    /// Recovery wall time of the most recent open, in milliseconds.
    pub recovery_ms: f64,
    /// Whether commits fsync.
    pub fsync: bool,
    /// WAL commit fsyncs issued by this process (snapshot/rotation syncs
    /// not included; 0 when `fsync` is off).
    pub fsyncs: u64,
    /// Group-commit batches written by this process. Equal to `fsyncs`
    /// under fsync; the ratio of committed records to batches is the
    /// group-commit amplification.
    pub group_commits: u64,
}

/// The durable catalog store. See the module docs for the on-disk layout
/// and the recovery/compaction state machine.
#[derive(Debug)]
pub struct CatalogStore {
    dir: PathBuf,
    options: StoreOptions,
    /// The WAL tail: pending batch buffer, durability watermarks, and the
    /// file handle, shared with [`WalCommitter`] handles so writers can
    /// wait for group durability without holding the store lock. Poisoning
    /// (a commit failure that must refuse further writes, see
    /// [`StoreError::Poisoned`]) lives here too.
    shared: Arc<WalShared>,
    generation: u64,
    version_clock: u64,
    snapshots_written: u64,
    recovery_ms: f64,
    /// The OS advisory lock on `store.lock`, held for this store's
    /// lifetime. The kernel releases it when the handle closes — including
    /// on `kill -9` — so stale locks cannot exist and two live openers
    /// (processes *or* handles) can never interleave WAL appends.
    _lock: File,
}

/// Take the single-writer lock: an OS advisory lock (`File::try_lock`) on
/// `store.lock`. Lock ownership is per open file description, so a second
/// open — same process or not — fails while the first store lives, and a
/// crashed holder's lock vanishes with its file handle (no PID checking,
/// no stale-lock reclaim races). The file content is the holder's PID, as
/// a best-effort operator diagnostic only; the file itself is never
/// deleted (removing it could split future openers across two inodes).
fn acquire_lock(dir: &Path) -> Result<File> {
    let path = dir.join("store.lock");
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| StoreError::io("open lock file", &path, e))?;
    match f.try_lock() {
        Ok(()) => {
            let _ = f.set_len(0);
            let _ = f.write_all(std::process::id().to_string().as_bytes());
            Ok(f)
        }
        Err(std::fs::TryLockError::WouldBlock) => {
            let pid = fs::read_to_string(&path)
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .unwrap_or(0);
            Err(StoreError::Locked { path, pid })
        }
        Err(std::fs::TryLockError::Error(e)) => Err(StoreError::io("lock", &path, e)),
    }
}

/// Best-effort removal of files from superseded generations — `.tmp`
/// leftovers and any `snapshot-*.snap` / `wal-*.log` older than the live
/// generation (a crash between compaction's rename and its deletes leaks
/// them; recovery never reads them, so they only waste disk).
fn cleanup_stale_generations(dir: &Path, live_generation: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_gen = |gen: u64| gen < live_generation;
        let stale = name.ends_with(".tmp")
            || snapshot::parse_generation(name, "snapshot-", ".snap").is_some_and(stale_gen)
            || snapshot::parse_generation(name, "wal-", ".log").is_some_and(stale_gen);
        if stale {
            fs::remove_file(entry.path()).ok();
        }
    }
}

impl CatalogStore {
    /// Open (or initialize) a store in `dir` and recover its catalog.
    pub fn open(dir: impl AsRef<Path>, options: StoreOptions) -> Result<(CatalogStore, Recovery)> {
        let t0 = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("create directory", &dir, e))?;
        // Early-error paths drop the handle, which releases the OS lock.
        let lock = acquire_lock(&dir)?;

        // 1. Newest valid snapshot seeds the state.
        let mut state: BTreeMap<String, RecoveredTable> = BTreeMap::new();
        let mut generation = 0u64;
        let mut version_clock = 0u64;
        let mut snapshot_generation = None;
        let mut corrupt_snapshots = 0u64;
        let listed = list_snapshots(&dir)?;
        let snapshot_files = listed.len();
        for (gen, path) in listed {
            match load_snapshot(&path) {
                Ok(data) => {
                    generation = gen;
                    version_clock = data.version_clock;
                    snapshot_generation = Some(gen);
                    for (alias, version, mut table) in data.tables {
                        table.set_name(alias.clone());
                        state.insert(
                            alias.to_ascii_lowercase(),
                            RecoveredTable {
                                alias,
                                version,
                                table,
                            },
                        );
                    }
                    break;
                }
                Err(_) => corrupt_snapshots += 1,
            }
        }
        // Snapshots exist but none validates: starting from an empty
        // catalog would silently discard the whole store (and the next
        // compaction would truncate the surviving WAL). Fail loudly and
        // leave everything on disk for the operator.
        if snapshot_generation.is_none() && snapshot_files > 0 {
            return Err(StoreError::corrupt(
                &dir,
                format!(
                    "all {snapshot_files} snapshot file(s) failed validation; \
                     refusing to start from an empty catalog"
                ),
            ));
        }

        // 2. Replay the WAL tail, tolerating a torn final record.
        let wal_file_path = wal_path(&dir, generation);
        let mut replayed_records = 0u64;
        let mut dropped_bytes = 0u64;
        let mut wal_bytes = WAL_HEADER_LEN;
        let wal_exists = wal_file_path.exists();
        if wal_exists {
            let bytes =
                fs::read(&wal_file_path).map_err(|e| StoreError::io("read", &wal_file_path, e))?;
            let scan = wal::scan(&bytes, &wal_file_path)?;
            if scan.header_ok && scan.generation != generation {
                return Err(StoreError::corrupt(
                    &wal_file_path,
                    format!(
                        "WAL header declares generation {} but the file is named for {generation}",
                        scan.generation
                    ),
                ));
            }
            dropped_bytes = scan.dropped_bytes;
            replayed_records = scan.records.len() as u64;
            for (i, record) in scan.records.into_iter().enumerate() {
                version_clock =
                    apply_record(&mut state, record, version_clock, &wal_file_path, i as u64)?;
            }
            if scan.header_ok {
                wal_bytes = scan.valid_len;
            }
            // Truncate any torn tail (and heal a torn header) so appends
            // extend acked state, then re-stamp the header if it was torn.
            if dropped_bytes > 0 || !scan.header_ok {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_file_path)
                    .map_err(|e| StoreError::io("open for truncation", &wal_file_path, e))?;
                f.set_len(if scan.header_ok { scan.valid_len } else { 0 })
                    .map_err(|e| StoreError::io("truncate", &wal_file_path, e))?;
                f.sync_all()
                    .map_err(|e| StoreError::io("fsync", &wal_file_path, e))?;
            }
            if !scan.header_ok {
                write_new_wal(&dir, &wal_file_path, generation, options.fsync)?;
            }
        } else {
            write_new_wal(&dir, &wal_file_path, generation, options.fsync)?;
        }

        let wal = OpenOptions::new()
            .append(true)
            .open(&wal_file_path)
            .map_err(|e| StoreError::io("open for appending", &wal_file_path, e))?;

        // Recovery succeeded: retire leftovers from superseded generations
        // (a crash mid-compaction can leak them).
        cleanup_stale_generations(&dir, generation);

        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        let shared = WalShared::new(
            wal,
            wal_file_path,
            wal_bytes,
            replayed_records,
            options.fsync,
            options.group_commit_window_us,
        );
        let store = CatalogStore {
            dir,
            options,
            shared,
            generation,
            version_clock,
            snapshots_written: 0,
            recovery_ms,
            _lock: lock,
        };
        let recovery = Recovery {
            tables: state.into_values().collect(),
            last_version: store.version_clock,
            snapshot_generation,
            replayed_records,
            dropped_bytes,
            corrupt_snapshots,
            recovery_ms,
        };
        Ok((store, recovery))
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let st = self.shared.state.lock().unwrap();
        StoreStats {
            generation: self.generation,
            wal_bytes: st.wal_bytes,
            wal_records: st.wal_records,
            snapshots_written: self.snapshots_written,
            recovery_ms: self.recovery_ms,
            fsync: self.options.fsync,
            fsyncs: st.fsyncs,
            group_commits: st.group_commits,
        }
    }

    /// Shared handle to the WAL-commit fsync latency histogram
    /// (microsecond samples). The server exposes it as
    /// `hummer_store_fsync_seconds`; recording is lock-free, so holding
    /// the handle outside the catalog lock is safe.
    pub fn fsync_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.shared.fsync_hist)
    }

    /// Shared handle to the records-per-group-commit histogram. A mean
    /// near 1 means writers were never contended; larger means one fsync
    /// covered that many commits.
    pub fn batch_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.shared.batch_hist)
    }

    /// A handle for waiting on [`WalTicket`]s without holding the store
    /// (or any catalog) lock — the enqueue/apply/release/wait pattern that
    /// makes group commit batch.
    pub fn committer(&self) -> WalCommitter {
        self.shared.committer()
    }

    /// Hand out the next content version (for callers without their own
    /// version counter, e.g. the metadata repository). Callers with one
    /// (the server's versioned catalog) log their own versions instead;
    /// both paths keep this clock consistent because every logged version
    /// advances it.
    pub fn allocate_version(&mut self) -> u64 {
        self.version_clock += 1;
        self.version_clock
    }

    /// Log a registration (or replacement) of `alias` at `version`.
    /// Durable once this returns — call *before* acking the mutation.
    pub fn log_register(&mut self, alias: &str, version: u64, table: &Table) -> Result<()> {
        let ticket = self.enqueue_register(alias, version, table)?;
        self.shared.wait_durable(ticket.seq)
    }

    /// Log a delta batch against `alias` producing `new_version`.
    pub fn log_delta(&mut self, alias: &str, new_version: u64, delta: &TableDelta) -> Result<()> {
        let ticket = self.enqueue_delta(alias, new_version, delta)?;
        self.shared.wait_durable(ticket.seq)
    }

    /// Log the removal of `alias`.
    pub fn log_deregister(&mut self, alias: &str) -> Result<()> {
        let ticket = self.enqueue_deregister(alias)?;
        self.shared.wait_durable(ticket.seq)
    }

    /// Enqueue a registration without waiting for durability. The record's
    /// WAL position is fixed here (enqueue order == replay order), so call
    /// this under the same lock that orders catalog versions; redeem the
    /// ticket via [`CatalogStore::committer`] *after* releasing that lock
    /// and *before* acking the mutation.
    pub fn enqueue_register(
        &mut self,
        alias: &str,
        version: u64,
        table: &Table,
    ) -> Result<WalTicket> {
        self.enqueue(
            Some(version),
            wal::encode_register_payload(alias, version, table),
        )
    }

    /// Enqueue a delta batch without waiting for durability (see
    /// [`CatalogStore::enqueue_register`] for the protocol).
    pub fn enqueue_delta(
        &mut self,
        alias: &str,
        new_version: u64,
        delta: &TableDelta,
    ) -> Result<WalTicket> {
        self.enqueue(
            Some(new_version),
            wal::encode_delta_payload(alias, new_version, delta),
        )
    }

    /// Enqueue a removal without waiting for durability (see
    /// [`CatalogStore::enqueue_register`] for the protocol).
    pub fn enqueue_deregister(&mut self, alias: &str) -> Result<WalTicket> {
        self.enqueue(None, wal::encode_deregister_payload(alias))
    }

    fn enqueue(&mut self, version: Option<u64>, payload: Vec<u8>) -> Result<WalTicket> {
        if payload.len() as u64 > u64::from(wal::MAX_RECORD_BYTES) {
            let path = self.shared.state.lock().unwrap().path.clone();
            return Err(StoreError::TooLarge {
                what: "WAL record",
                path,
                bytes: payload.len() as u64,
                cap: u64::from(wal::MAX_RECORD_BYTES),
            });
        }
        let framed = wal::frame(&payload);
        let ticket = self.shared.enqueue(&framed)?;
        if let Some(v) = version {
            self.version_clock = self.version_clock.max(v);
        }
        Ok(ticket)
    }

    /// Whether the WAL has grown past the compaction threshold. Pending
    /// (enqueued-but-not-yet-committed) records count: callers check this
    /// right after enqueueing, and [`CatalogStore::compact`] drains the
    /// pending batch before rotating anyway.
    pub fn wants_compaction(&self) -> bool {
        if self.options.compact_after_bytes == 0 {
            return false;
        }
        let st = self.shared.state.lock().unwrap();
        st.wal_records + st.pending_records > 0
            && st.wal_bytes + st.pending.len() as u64 >= self.options.compact_after_bytes
    }

    /// Roll the WAL into a fresh snapshot of `entries` (the caller's
    /// complete current catalog). The snapshot rename is the commit point;
    /// a crash on either side of it recovers cleanly. If rotation fails
    /// *after* that commit point (e.g. creating the next WAL hits ENOSPC),
    /// the just-committed snapshot is rolled back — leaving it while
    /// appends continue to the old WAL would make the next recovery load
    /// the snapshot, ignore those acked appends, and delete them as stale.
    /// If even the rollback fails, the store poisons itself.
    pub fn compact(&mut self, entries: &[SnapshotEntry<'_>]) -> Result<()> {
        // Flush every enqueued record first — rotation must not strand
        // pending frames behind the file swap. Callers hold whatever lock
        // orders enqueues (the server: the catalog write lock), so no new
        // record can slip in between the drain and the swap.
        self.shared.commit_all()?;
        let next_gen = self.generation + 1;
        snapshot::write_snapshot(
            &self.dir,
            next_gen,
            self.version_clock,
            entries,
            self.options.fsync,
        )?;
        let next_wal_path = wal_path(&self.dir, next_gen);
        let rotation = write_new_wal(&self.dir, &next_wal_path, next_gen, self.options.fsync)
            .and_then(|()| {
                OpenOptions::new()
                    .append(true)
                    .open(&next_wal_path)
                    .map_err(|e| StoreError::io("open for appending", &next_wal_path, e))
            });
        let next_wal = match rotation {
            Ok(f) => f,
            Err(e) => {
                // The snapshot is the commit point, so it must go first: a
                // crash after removing only the new WAL would still leave a
                // snapshot that shadows future appends to the old WAL.
                let committed = snapshot_path(&self.dir, next_gen);
                if fs::remove_file(&committed).is_err() && committed.exists() {
                    self.shared.state.lock().unwrap().poisoned = true;
                } else {
                    fs::remove_file(&next_wal_path).ok();
                    if self.options.fsync {
                        sync_dir(&self.dir).ok();
                    }
                }
                return Err(e);
            }
        };

        // Generation g+1 is durable; swap the tail under both WAL locks
        // (nobody else ever holds the two together, and commit leaders
        // are excluded because the WAL is fully drained and callers block
        // new enqueues), then retire generation g (best effort — a
        // leftover file is ignored by recovery, never load-bearing).
        let old_wal = {
            let mut io = self.shared.io.lock().unwrap();
            let mut st = self.shared.state.lock().unwrap();
            io.file = next_wal;
            io.durable_bytes = WAL_HEADER_LEN;
            st.wal_bytes = WAL_HEADER_LEN;
            st.wal_records = 0;
            std::mem::replace(&mut st.path, next_wal_path)
        };
        let old_snapshot = snapshot_path(&self.dir, self.generation);
        fs::remove_file(&old_wal).ok();
        fs::remove_file(&old_snapshot).ok();
        if self.options.fsync {
            sync_dir(&self.dir).ok();
        }

        self.generation = next_gen;
        self.snapshots_written += 1;
        Ok(())
    }
}

/// Create a WAL file for `generation` with just its header.
fn write_new_wal(dir: &Path, path: &Path, generation: u64, fsync: bool) -> Result<()> {
    let mut f = File::create(path).map_err(|e| StoreError::io("create", path, e))?;
    f.write_all(&wal::header(generation))
        .map_err(|e| StoreError::io("write header to", path, e))?;
    if fsync {
        f.sync_all().map_err(|e| StoreError::io("fsync", path, e))?;
        sync_dir(dir)?;
    }
    Ok(())
}

/// Apply one replayed record to the recovered state; returns the advanced
/// version clock.
fn apply_record(
    state: &mut BTreeMap<String, RecoveredTable>,
    record: WalRecord,
    version_clock: u64,
    path: &Path,
    index: u64,
) -> Result<u64> {
    let replay_err = |detail: String| StoreError::Replay {
        path: path.to_path_buf(),
        record: index,
        detail,
    };
    match record {
        WalRecord::Register {
            alias,
            version,
            mut table,
        } => {
            table.set_name(alias.clone());
            state.insert(
                alias.to_ascii_lowercase(),
                RecoveredTable {
                    alias,
                    version,
                    table,
                },
            );
            Ok(version_clock.max(version))
        }
        WalRecord::Delta {
            alias,
            version,
            delta,
        } => {
            let entry = state
                .get_mut(&alias.to_ascii_lowercase())
                .ok_or_else(|| replay_err(format!("delta for unregistered table `{alias}`")))?;
            let (table, _mapping) = delta
                .apply(&entry.table)
                .map_err(|e| replay_err(format!("delta against `{alias}` failed: {e}")))?;
            entry.table = table;
            entry.table.set_name(entry.alias.clone());
            entry.version = version;
            Ok(version_clock.max(version))
        }
        WalRecord::Deregister { alias } => {
            state
                .remove(&alias.to_ascii_lowercase())
                .ok_or_else(|| replay_err(format!("deregister of unknown table `{alias}`")))?;
            Ok(version_clock)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{table, Value};

    fn temp_dir() -> PathBuf {
        crate::scratch::dir("store")
    }

    fn students() -> Table {
        table! {
            "EE_Student" => ["Name", "Age"];
            ["John Smith", 24],
            ["Mary Jones", 22],
        }
    }

    #[test]
    fn fresh_dir_opens_empty() {
        let dir = temp_dir();
        let (store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(recovery.tables.is_empty());
        assert_eq!(recovery.last_version, 0);
        assert_eq!(store.stats().generation, 0);
        assert_eq!(store.stats().wal_bytes, WAL_HEADER_LEN);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            store.log_register("EE_Student", 1, &students()).unwrap();
            let delta = TableDelta::new("EE_Student")
                .insert(vec![Value::text("Grace Hopper"), Value::Int(37)])
                .update(0, vec![Value::text("John Smith"), Value::Int(25)]);
            store.log_delta("EE_Student", 2, &delta).unwrap();
            store.log_register("Doomed", 3, &students()).unwrap();
            store.log_deregister("Doomed").unwrap();
        } // dropped without any snapshot: recovery is pure WAL replay
        let (store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.tables.len(), 1);
        let t = &recovery.tables[0];
        assert_eq!(t.alias, "EE_Student");
        assert_eq!(t.version, 2);
        assert_eq!(t.table.len(), 3);
        assert_eq!(t.table.cell(0, 1), &Value::Int(25));
        assert_eq!(t.table.cell(2, 0), &Value::text("Grace Hopper"));
        assert_eq!(recovery.last_version, 3);
        assert_eq!(recovery.replayed_records, 4);
        assert_eq!(store.stats().wal_records, 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            store.log_register("T", 1, &students()).unwrap();
        }
        let wal = wal_path(&dir, 0);
        let mut bytes = fs::read(&wal).unwrap();
        let acked_len = bytes.len();
        bytes.extend_from_slice(&[7u8; 13]); // torn partial frame
        fs::write(&wal, &bytes).unwrap();
        {
            let (mut store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            assert_eq!(recovery.tables.len(), 1);
            assert_eq!(recovery.dropped_bytes, 13);
            // The file was truncated back to acked state; new appends extend it.
            assert_eq!(fs::metadata(&wal).unwrap().len(), acked_len as u64);
            store.log_deregister("T").unwrap();
        }
        let (_, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(recovery.tables.is_empty());
        assert_eq!(recovery.dropped_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rolls_generations_and_recovers() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            let t = students();
            store.log_register("A", 1, &t).unwrap();
            store.log_register("B", 2, &t).unwrap();
            let entries = [
                SnapshotEntry {
                    alias: "A",
                    version: 1,
                    table: &t,
                },
                SnapshotEntry {
                    alias: "B",
                    version: 2,
                    table: &t,
                },
            ];
            store.compact(&entries).unwrap();
            assert_eq!(store.stats().generation, 1);
            assert_eq!(store.stats().wal_records, 0);
            assert_eq!(store.stats().snapshots_written, 1);
            // Old generation's files are gone.
            assert!(!wal_path(&dir, 0).exists());
            assert!(!snapshot_path(&dir, 0).exists());
            // Post-compaction mutations land in the new WAL.
            store.log_deregister("A").unwrap();
        }
        let (_, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.snapshot_generation, Some(1));
        assert_eq!(recovery.replayed_records, 1);
        let aliases: Vec<&str> = recovery.tables.iter().map(|t| t.alias.as_str()).collect();
        assert_eq!(aliases, vec!["B"]);
        assert_eq!(recovery.last_version, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_refuses_to_open() {
        // Starting from an empty catalog when snapshot files exist would
        // silently discard the store (and a later compaction would truncate
        // the surviving WAL) — open must fail loudly instead.
        let dir = temp_dir();
        fs::write(snapshot_path(&dir, 1), b"HUMSNAP1garbage").unwrap();
        let e = CatalogStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(e, StoreError::Corrupt { .. }), "{e}");
        assert!(e.to_string().contains("refusing"), "{e}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = temp_dir();
        let t = students();
        let entry = [SnapshotEntry {
            alias: "A",
            version: 5,
            table: &t,
        }];
        snapshot::write_snapshot(&dir, 1, 5, &entry, false).unwrap();
        // A newer but corrupt snapshot (truncated payload).
        let newer = snapshot_path(&dir, 2);
        fs::write(&newer, b"HUMSNAP1garbage").unwrap();
        let (_, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.snapshot_generation, Some(1));
        assert_eq!(recovery.corrupt_snapshots, 1);
        assert_eq!(recovery.tables.len(), 1);
        assert_eq!(recovery.tables[0].version, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wants_compaction_respects_threshold() {
        let dir = temp_dir();
        let options = StoreOptions {
            fsync: false,
            compact_after_bytes: 64,
            group_commit_window_us: 0,
        };
        let (mut store, _) = CatalogStore::open(&dir, options).unwrap();
        assert!(!store.wants_compaction()); // empty WAL never compacts
        store.log_register("A", 1, &students()).unwrap();
        assert!(store.wants_compaction());
        let disabled = StoreOptions {
            fsync: false,
            compact_after_bytes: 0,
            group_commit_window_us: 0,
        };
        let dir2 = temp_dir();
        let (mut store2, _) = CatalogStore::open(&dir2, disabled).unwrap();
        store2.log_register("A", 1, &students()).unwrap();
        assert!(!store2.wants_compaction());
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn directory_is_single_writer_but_dead_locks_vanish() {
        let dir = temp_dir();
        let (store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        // Second open while the first store lives: refused, naming us.
        let e = CatalogStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(
            matches!(e, StoreError::Locked { pid, .. } if pid == std::process::id()),
            "{e}"
        );
        drop(store); // closing the handle releases the OS lock
                     // A leftover lock file from a dead process (kill -9) carries no OS
                     // lock — the next open just takes it.
        fs::write(dir.join("store.lock"), "4294967294").unwrap();
        let (_store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(recovery.tables.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_retires_generations_leaked_by_a_mid_compaction_crash() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            store.log_register("A", 1, &students()).unwrap();
            let t = students();
            store
                .compact(&[SnapshotEntry {
                    alias: "A",
                    version: 1,
                    table: &t,
                }])
                .unwrap();
        }
        // Simulate the crash window between compaction's rename and its
        // deletes: generation-0 leftovers and a stray temp file reappear.
        fs::write(wal_path(&dir, 0), wal::header(0)).unwrap();
        fs::write(snapshot_path(&dir, 0), b"stale").unwrap();
        fs::write(dir.join("snapshot-00000000000000000009.tmp"), b"tmp").unwrap();
        let (_store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.snapshot_generation, Some(1));
        assert_eq!(recovery.tables.len(), 1);
        assert!(!wal_path(&dir, 0).exists(), "stale WAL retired");
        assert!(!snapshot_path(&dir, 0).exists(), "stale snapshot retired");
        assert!(
            !dir.join("snapshot-00000000000000000009.tmp").exists(),
            "tmp leftovers retired"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_inconsistency_is_loud() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            store
                .log_delta(
                    "Ghost",
                    1,
                    &TableDelta::new("Ghost").insert(vec![Value::Int(1), Value::Int(2)]),
                )
                .unwrap();
        }
        let e = CatalogStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(e, StoreError::Replay { record: 0, .. }), "{e}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_group_commit_recovers_every_acked_record_in_order() {
        let dir = temp_dir();
        let options = StoreOptions {
            fsync: false, // keep the test fast; batching logic is identical
            compact_after_bytes: 0,
            group_commit_window_us: 200,
        };
        let acked: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        {
            let (store, _) = CatalogStore::open(&dir, options.clone()).unwrap();
            let committer = store.committer();
            let store = std::sync::Mutex::new(store);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..5 {
                            // Enqueue under the lock that orders versions
                            // (standing in for the server's catalog write
                            // lock), wait for durability outside it.
                            let (version, ticket) = {
                                let mut st = store.lock().unwrap();
                                let v = st.allocate_version();
                                let t = st
                                    .enqueue_register(&format!("T{v}"), v, &students())
                                    .unwrap();
                                acked.lock().unwrap().push(v);
                                (v, t)
                            };
                            committer.wait(ticket).unwrap();
                            let _ = version;
                        }
                    });
                }
            });
            let stats = store.lock().unwrap().stats();
            assert_eq!(stats.wal_records, 20);
            assert!(stats.group_commits >= 1 && stats.group_commits <= 20);
            let batches = store.lock().unwrap().batch_histogram().snapshot();
            assert_eq!(batches.count(), stats.group_commits);
            assert_eq!(batches.sum(), 20, "every record lands in some batch");
        }
        // Recovery replays the records in enqueue (== ack) order: the
        // versions recovered are exactly the acked set, and since each
        // alias is unique, all 20 survive.
        let (_, recovery) = CatalogStore::open(&dir, options).unwrap();
        let mut want = acked.into_inner().unwrap();
        want.sort_unstable();
        let mut got: Vec<u64> = recovery.tables.iter().map(|t| t.version).collect();
        got.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(recovery.last_version, 20);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_wal_bytes_match_sequential_appends() {
        // The batched WAL must be bit-identical to sequential appends of
        // the same records in the same order.
        let seq_dir = temp_dir();
        let grp_dir = temp_dir();
        let options = StoreOptions {
            fsync: false,
            compact_after_bytes: 0,
            group_commit_window_us: 0,
        };
        {
            let (mut store, _) = CatalogStore::open(&seq_dir, options.clone()).unwrap();
            for v in 1..=6u64 {
                store
                    .log_register(&format!("T{v}"), v, &students())
                    .unwrap();
            }
        }
        {
            let (mut store, _) = CatalogStore::open(&grp_dir, options.clone()).unwrap();
            let committer = store.committer();
            // Enqueue everything first, wait afterwards: one batch.
            let tickets: Vec<_> = (1..=6u64)
                .map(|v| {
                    store
                        .enqueue_register(&format!("T{v}"), v, &students())
                        .unwrap()
                })
                .collect();
            for t in tickets {
                committer.wait(t).unwrap();
            }
            assert_eq!(store.stats().group_commits, 1, "single drain batch");
        }
        let seq = fs::read(wal_path(&seq_dir, 0)).unwrap();
        let grp = fs::read(wal_path(&grp_dir, 0)).unwrap();
        assert_eq!(seq, grp);
        fs::remove_dir_all(&seq_dir).ok();
        fs::remove_dir_all(&grp_dir).ok();
    }

    #[test]
    fn compaction_drains_enqueued_records_before_rotating() {
        let dir = temp_dir();
        let options = StoreOptions {
            fsync: false,
            compact_after_bytes: 0,
            group_commit_window_us: 0,
        };
        {
            let (mut store, _) = CatalogStore::open(&dir, options.clone()).unwrap();
            let t = students();
            // Enqueued but never waited on: compaction must still flush it
            // so the snapshot and the version clock agree.
            let _ticket = store.enqueue_register("A", 1, &t).unwrap();
            store
                .compact(&[SnapshotEntry {
                    alias: "A",
                    version: 1,
                    table: &t,
                }])
                .unwrap();
            assert_eq!(store.stats().wal_records, 0);
        }
        let (_, recovery) = CatalogStore::open(&dir, options).unwrap();
        assert_eq!(recovery.snapshot_generation, Some(1));
        assert_eq!(recovery.tables.len(), 1);
        assert_eq!(recovery.last_version, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allocate_version_continues_past_recovery() {
        let dir = temp_dir();
        {
            let (mut store, _) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
            store.log_register("A", 7, &students()).unwrap();
        }
        let (mut store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.last_version, 7);
        assert_eq!(store.allocate_version(), 8);
        fs::remove_dir_all(&dir).ok();
    }
}
