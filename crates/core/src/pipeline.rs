//! The HumMer facade: fully automatic data fusion.
//!
//! "Guided by a query against multiple tables, HumMer proceeds in three
//! fully automated steps: instance-based schema matching [...], duplicate
//! detection [...], data fusion and conflict resolution" (abstract).
//!
//! Two modes, as in §3:
//! * [`Hummer::query`] — the basic SQL interface: `FUSE FROM` queries over
//!   heterogeneous sources are pre-aligned by schema matching (renaming
//!   favors the first source in the query), then executed;
//! * [`Hummer::fuse_sources`] — the automatic end-to-end pipeline the
//!   wizard drives: match → transform → detect duplicates → fuse by
//!   `objectID` (the step-wise, adjustable variant lives in
//!   [`crate::wizard`]).

use crate::error::Result;
use crate::repository::MetadataRepository;
use hummer_dupdetect::{
    annotate_object_ids, detect_delta, detect_duplicates_par, DeltaDetectionStats, DetectionResult,
    DetectorConfig, RowMapping, OBJECT_ID_COLUMN,
};
use hummer_engine::{ExecutionLayout, Table};
use hummer_fusion::{
    fuse, FunctionRegistry, FusionSpec, Lineage, Parallelism, ResolutionSpec, SampleConflict,
};
use hummer_matching::{
    apply_renames, integrate_with_layout, match_star, match_star_par, MatchResult, MatcherConfig,
};
use hummer_obs::{ObsConfig, Span};
use hummer_query::{parse, QueryOutput, TableSet};
use std::time::{Duration, Instant};

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Schema matching (DUMAS over all table pairs).
    pub matching: Duration,
    /// Renaming + `sourceID` + full outer union.
    pub transformation: Duration,
    /// Duplicate detection.
    pub detection: Duration,
    /// Conflict resolution / fusion.
    pub fusion: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.matching + self.transformation + self.detection + self.fusion
    }
}

/// The reusable artifacts of the pipeline's *preparation* stages — schema
/// matching, transformation, and duplicate detection — everything up to (but
/// excluding) fusion.
///
/// Preparation depends only on the source tables, not on the query's
/// resolution functions, so a serving layer can compute it once per source
/// set and replay many differently-resolved fusions against it (see
/// [`fuse_prepared`]); `hummer_server`'s prepared-pipeline cache stores
/// exactly this struct.
#[derive(Debug, Clone)]
pub struct PreparedSources {
    /// Schema-matching results (preferred table vs. each other table).
    pub match_results: Vec<MatchResult>,
    /// Renamed + `sourceID`-tagged full outer union of the sources.
    pub integrated: Table,
    /// Duplicate detection over `integrated`.
    pub detection: DetectionResult,
    /// `integrated` with the `objectID` column appended.
    pub annotated: Table,
    /// Wall-clock cost of the preparation stages (`fusion` is zero).
    pub timings: StageTimings,
}

/// Run the preparation stages (match → transform → detect → annotate) over
/// explicit tables, without needing a [`Hummer`] or its repository.
///
/// `config.parallelism` sets how many threads the matching and detection
/// stages may use; the output is bit-identical for every degree.
///
/// # Example
///
/// ```
/// use hummer_core::{prepare_tables, HummerConfig};
/// use hummer_engine::table;
///
/// let dump = table! {
///     "Dump" => ["Name", "City"];
///     ["John Smith", "Berlin"],
///     ["Jon Smith",  "Berlin"],   // typo duplicate
///     ["Mary Jones", "Hamburg"],
/// };
/// let mut config = HummerConfig::default();
/// config.detector.threshold = 0.6;
/// config.detector.unsure_threshold = 0.5;
///
/// let prepared = prepare_tables(&[&dump], &config).unwrap();
/// assert!(prepared.annotated.schema().contains("objectID"));
/// assert_eq!(prepared.detection.object_count(), 2); // the Smiths cluster
/// ```
pub fn prepare_tables(tables: &[&Table], config: &HummerConfig) -> Result<PreparedSources> {
    let root = config.obs.tracer.trace("prepare");
    prepare_tables_traced(tables, config, &root)
}

/// [`prepare_tables`] recording its stage spans (match → transform →
/// detect → cluster) as children of `parent` — the serving layer passes
/// its per-request span here so one trace covers the whole query. With a
/// no-op `parent` this is exactly `prepare_tables`.
pub fn prepare_tables_traced(
    tables: &[&Table],
    config: &HummerConfig,
    parent: &Span,
) -> Result<PreparedSources> {
    let mut timings = StageTimings::default();

    // 1. Schema matching.
    let mut span = parent.child("match");
    let t0 = Instant::now();
    let match_results = match_star_par(tables, &config.matcher, config.parallelism);
    timings.matching = t0.elapsed();
    span.count("tables", tables.len() as u64);
    span.count("correspondences", total_correspondences(&match_results));
    span.count("degree", config.parallelism.get() as u64);
    drop(span);

    // 2. Transformation: rename → sourceID → full outer union.
    let mut span = parent.child("transform");
    let t0 = Instant::now();
    let integrated = integrate_with_layout(tables, &match_results, "Integrated", config.layout)?;
    timings.transformation = t0.elapsed();
    span.count("union_rows", integrated.len() as u64);
    span.count("union_cols", integrated.schema().len() as u64);
    drop(span);

    // 3. Duplicate detection → objectID.
    let t0 = Instant::now();
    let mut span = parent.child("detect");
    let detection =
        detect_duplicates_par(&integrated, &config.detector_config(), config.parallelism)?;
    count_detection(&mut span, &detection.stats, config);
    drop(span);
    let mut span = parent.child("cluster");
    let annotated = annotate_object_ids(&integrated, &detection)?;
    timings.detection = t0.elapsed();
    span.count("clusters", detection.object_count() as u64);
    span.count("duplicate_pairs", detection.pairs.len() as u64);
    drop(span);

    Ok(PreparedSources {
        match_results,
        integrated,
        detection,
        annotated,
        timings,
    })
}

/// Correspondences across all match results (a span counter).
fn total_correspondences(results: &[MatchResult]) -> u64 {
    results
        .iter()
        .map(|m| m.correspondence_count() as u64)
        .sum()
}

/// Attach detection counters to the `detect` span: blocking-window hits
/// (candidates), filter rejections, pairs actually scored, edit-distance
/// memo hits, and — on the columnar path — how many 512-pair blocks the
/// vectorized scorer processed.
fn count_detection(
    span: &mut Span,
    stats: &hummer_dupdetect::DetectionStats,
    config: &HummerConfig,
) {
    if !span.is_recording() {
        return;
    }
    span.count("candidates", stats.candidates as u64);
    span.count("filtered_out", stats.filtered_out as u64);
    span.count("compared", stats.compared as u64);
    span.count("memo_hits", stats.memo_hits as u64);
    if config.layout == ExecutionLayout::Columnar {
        span.count(
            "columnar_blocks",
            stats.compared.div_ceil(hummer_dupdetect::PAIR_BLOCK) as u64,
        );
    }
}

/// What one [`PreparedSources::apply_delta`] cost and how much it reused.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Incremental-detection counters (dirty rows, carried vs. rescored
    /// pairs, affected components, full-rescore fallbacks).
    pub detection: DeltaDetectionStats,
    /// Wall-clock cost of *this* apply, by stage (`fusion` is zero).
    pub timings: StageTimings,
}

impl PreparedSources {
    /// Refresh these prepared artifacts for the post-delta `new_tables`
    /// (same sources, same order), where `mapping` relates the rows of the
    /// old and new *integrated* (outer-union) tables — build it with
    /// `hummer_delta::concat_mappings` from the per-source mappings a
    /// `TableDelta` application returns.
    ///
    /// The refreshed artifacts are **byte-identical** to
    /// [`prepare_tables`] over `new_tables` — except `detection.stats`,
    /// which reports the (delta-sized) work this refresh actually did —
    /// at every parallelism degree. Schema matching and the transformation
    /// re-run outright (they are near-linear); the quadratic stage,
    /// duplicate detection, goes through the incremental path: only pairs
    /// touching dirty rows are re-scored, and only affected connected
    /// components re-cluster.
    ///
    /// `config` must be the configuration that produced `self`.
    pub fn apply_delta(
        &self,
        new_tables: &[&Table],
        mapping: &RowMapping,
        config: &HummerConfig,
    ) -> Result<(PreparedSources, DeltaReport)> {
        let root = config.obs.tracer.trace("delta");
        self.apply_delta_traced(new_tables, mapping, config, &root)
    }

    /// [`PreparedSources::apply_delta`] recording its stage spans under
    /// `parent` (the server's per-request span). With a no-op `parent`
    /// this is exactly `apply_delta`.
    pub fn apply_delta_traced(
        &self,
        new_tables: &[&Table],
        mapping: &RowMapping,
        config: &HummerConfig,
        parent: &Span,
    ) -> Result<(PreparedSources, DeltaReport)> {
        let mut timings = StageTimings::default();

        // 1. Schema matching: recomputed from scratch (near-linear via the
        //    inverted sniffing index), so instance drift that changes
        //    correspondences is honored, not approximated.
        let mut span = parent.child("match");
        let t0 = Instant::now();
        let match_results = match_star_par(new_tables, &config.matcher, config.parallelism);
        timings.matching = t0.elapsed();
        span.count("tables", new_tables.len() as u64);
        span.count("correspondences", total_correspondences(&match_results));
        drop(span);

        // 2. Transformation: recomputed (linear). If matching changed the
        //    union schema, the incremental detector notices through its
        //    cell comparison and degrades gracefully.
        let mut span = parent.child("transform");
        let t0 = Instant::now();
        let integrated =
            integrate_with_layout(new_tables, &match_results, "Integrated", config.layout)?;
        timings.transformation = t0.elapsed();
        span.count("union_rows", integrated.len() as u64);
        drop(span);

        // 3. Duplicate detection: incremental against the old artifacts.
        let t0 = Instant::now();
        let mut span = parent.child("detect");
        let (detection, delta_stats) = detect_delta(
            &self.integrated,
            &self.detection,
            &integrated,
            mapping,
            &config.detector_config(),
            config.parallelism,
        )?;
        if span.is_recording() {
            span.count("dirty_rows", delta_stats.dirty_rows as u64);
            span.count("candidates", delta_stats.candidates as u64);
            span.count("compared", delta_stats.compared as u64);
            span.count("carried_pairs", delta_stats.carried_pairs as u64);
            span.count("scored_pairs", delta_stats.scored_pairs as u64);
            span.count(
                "affected_components",
                delta_stats.affected_components as u64,
            );
            span.count("full_rescore", u64::from(delta_stats.full_rescore));
        }
        drop(span);
        let mut span = parent.child("cluster");
        let annotated = annotate_object_ids(&integrated, &detection)?;
        timings.detection = t0.elapsed();
        span.count("clusters", detection.object_count() as u64);
        drop(span);

        Ok((
            PreparedSources {
                match_results,
                integrated,
                detection,
                annotated,
                timings,
            },
            DeltaReport {
                detection: delta_stats,
                timings,
            },
        ))
    }
}

/// Run the fusion stage over prepared artifacts: fuse `annotated` by
/// `objectID` with the given per-column resolutions (default `COALESCE`).
///
/// The preparation timings are carried into the outcome with the fusion
/// stage's cost added, so `outcome.timings.total()` reflects what an
/// uncached end-to-end run would have paid.
pub fn fuse_prepared(
    prepared: &PreparedSources,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
) -> Result<PipelineOutcome> {
    fuse_prepared_par(prepared, resolutions, registry, Parallelism::sequential())
}

/// [`fuse_prepared`] with up to `par.get()` threads resolving disjoint
/// duplicate clusters concurrently (bit-identical output for every
/// degree).
pub fn fuse_prepared_par(
    prepared: &PreparedSources,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
    par: Parallelism,
) -> Result<PipelineOutcome> {
    fuse_prepared_traced(prepared, resolutions, registry, par, &Span::noop())
}

/// [`fuse_prepared_par`] recording a `fuse` span (fused rows, resolved
/// conflicts, parallelism degree) as a child of `parent`. With a no-op
/// `parent` this is exactly `fuse_prepared_par`.
pub fn fuse_prepared_traced(
    prepared: &PreparedSources,
    resolutions: &[(String, ResolutionSpec)],
    registry: &FunctionRegistry,
    par: Parallelism,
    parent: &Span,
) -> Result<PipelineOutcome> {
    let mut timings = prepared.timings;
    let mut span = parent.child("fuse");
    let t0 = Instant::now();
    let mut spec = FusionSpec::by_key(vec![OBJECT_ID_COLUMN])
        .drop_column(OBJECT_ID_COLUMN)
        .drop_column(hummer_matching::SOURCE_ID_COLUMN)
        .with_parallelism(par);
    for (col, rspec) in resolutions {
        spec = spec.resolve(col.clone(), rspec.clone());
    }
    let fused = fuse(&prepared.annotated, &spec, registry)?;
    timings.fusion = t0.elapsed();
    if span.is_recording() {
        span.count("fused_rows", fused.table.len() as u64);
        span.count("merged_clusters", fused.merged_clusters as u64);
        span.count("conflicts", fused.conflict_count as u64);
        span.count("degree", par.get() as u64);
    }
    drop(span);

    Ok(PipelineOutcome {
        result: fused.table,
        lineage: fused.lineage,
        sample_conflicts: fused.sample_conflicts,
        conflict_count: fused.conflict_count,
        match_results: prepared.match_results.clone(),
        integrated: prepared.integrated.clone(),
        detection: prepared.detection.clone(),
        timings,
    })
}

/// Everything the automatic pipeline produced (the intermediate artifacts
/// are what the demo GUI visualizes at each step).
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The clean, consistent, fused result (bookkeeping columns dropped).
    pub result: Table,
    /// Per-cell lineage of `result` (color-coding support).
    pub lineage: Lineage,
    /// Sampled conflicts that were resolved.
    pub sample_conflicts: Vec<SampleConflict>,
    /// Total number of resolved cell-level conflicts.
    pub conflict_count: usize,
    /// Schema-matching results (preferred table vs. each other table).
    pub match_results: Vec<MatchResult>,
    /// The integrated table (after transformation, before detection).
    pub integrated: Table,
    /// The duplicate-detection result over `integrated`.
    pub detection: DetectionResult,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct HummerConfig {
    /// Schema-matching parameters.
    pub matcher: MatcherConfig,
    /// Duplicate-detection parameters.
    pub detector: DetectorConfig,
    /// Intra-query thread budget for the parallelizable stages (matching,
    /// detection, fusion). Defaults to sequential; results are
    /// bit-identical for every degree, so this is purely a latency knob.
    /// A serving layer running N workers should set this to
    /// `Parallelism::auto_shared(N)` so the two layers compose without
    /// oversubscribing the machine.
    pub parallelism: Parallelism,
    /// Physical layout of the hot paths (transformation and pair scoring):
    /// this one knob drives the whole pipeline, overriding
    /// `detector.layout` (which exists for standalone detector users).
    /// Both layouts are bit-identical — `tests/columnar_properties.rs` and
    /// `exp13_columnar` enforce it — so, like `parallelism`, this is
    /// purely a performance knob.
    pub layout: ExecutionLayout,
    /// Observability: where pipeline stage spans are recorded. Disabled by
    /// default (spans become branch-only no-ops); instrumentation never
    /// changes the fused output — `exp14_observability` enforces both the
    /// ≤3% overhead contract and bit-identity.
    pub obs: ObsConfig,
}

impl HummerConfig {
    /// The detector configuration with the pipeline-level layout knob
    /// applied. Public because the shard executor (`hummer_shard`) must
    /// score pairs under exactly the configuration the single-shard
    /// pipeline would use.
    pub fn detector_config(&self) -> DetectorConfig {
        DetectorConfig {
            layout: self.layout,
            ..self.detector.clone()
        }
    }
}

/// The HumMer system: a metadata repository plus configured components.
#[derive(Debug, Default)]
pub struct Hummer {
    repository: MetadataRepository,
    config: HummerConfig,
    registry: FunctionRegistry,
}

impl Hummer {
    /// A HumMer with default configuration and an empty repository.
    pub fn new() -> Self {
        Hummer::default()
    }

    /// A HumMer with explicit configuration.
    pub fn with_config(config: HummerConfig) -> Self {
        Hummer {
            repository: MetadataRepository::new(),
            config,
            registry: FunctionRegistry::standard(),
        }
    }

    /// The metadata repository (read).
    pub fn repository(&self) -> &MetadataRepository {
        &self.repository
    }

    /// The metadata repository (register/deregister sources).
    pub fn repository_mut(&mut self) -> &mut MetadataRepository {
        &mut self.repository
    }

    /// The resolution-function registry (register custom functions here).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.registry
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &HummerConfig {
        &self.config
    }

    /// The pipeline configuration (mutable).
    pub fn config_mut(&mut self) -> &mut HummerConfig {
        &mut self.config
    }

    /// Run the fully automatic pipeline over the given source aliases:
    /// schema matching → transformation → duplicate detection → fusion.
    ///
    /// `resolutions` assigns per-column conflict-resolution functions
    /// (columns named in the *preferred* — first — source's schema);
    /// everything else defaults to `COALESCE`. All parallelizable stages
    /// honor `config().parallelism`.
    ///
    /// # Example
    ///
    /// ```
    /// use hummer_core::{Hummer, ResolutionSpec};
    /// use hummer_engine::table;
    ///
    /// let mut hummer = Hummer::new();
    /// // Narrow 2-column sources carry little evidence; lower the bar.
    /// hummer.config_mut().detector.threshold = 0.6;
    /// hummer.config_mut().detector.unsure_threshold = 0.5;
    /// hummer.repository_mut().register_table("EE", table! {
    ///     "EE" => ["Name", "Age"];
    ///     ["John Smith", 24],
    ///     ["Mary Jones", 22],
    /// }).unwrap();
    /// hummer.repository_mut().register_table("CS", table! {
    ///     "CS" => ["FullName", "Years"];   // heterogeneous labels
    ///     ["John Smith", 25],
    /// }).unwrap();
    ///
    /// let out = hummer.fuse_sources(
    ///     &["EE", "CS"],
    ///     &[("Age".to_string(), ResolutionSpec::named("max"))],
    /// ).unwrap();
    /// assert_eq!(out.result.len(), 2);     // John fused across sources
    /// assert!(out.result.schema().contains("Name")); // preferred schema
    /// ```
    pub fn fuse_sources(
        &self,
        aliases: &[&str],
        resolutions: &[(String, ResolutionSpec)],
    ) -> Result<PipelineOutcome> {
        let prepared = self.prepare(aliases)?;
        fuse_prepared_par(
            &prepared,
            resolutions,
            &self.registry,
            self.config.parallelism,
        )
    }

    /// Run only the preparation stages (match → transform → detect) over the
    /// given source aliases; combine with [`fuse_prepared`] to finish, or
    /// reuse the artifacts across many fusions.
    pub fn prepare(&self, aliases: &[&str]) -> Result<PreparedSources> {
        let tables: Vec<&Table> = aliases
            .iter()
            .map(|a| self.repository.get(a))
            .collect::<Result<_>>()?;
        prepare_tables(&tables, &self.config)
    }

    /// Execute a Fuse By query (the "basic SQL interface" mode).
    ///
    /// For `FUSE FROM` over multiple heterogeneous sources, schema matching
    /// aligns the non-preferred tables to the first table's attribute names
    /// before execution — so the query can "use only column names of one of
    /// the tables to be fused" (§2.1).
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        let q = parse(sql)?;
        if q.from.fuse && q.from.tables.len() > 1 {
            // Pre-align with schema matching.
            let tables: Vec<&Table> = q
                .from
                .tables
                .iter()
                .map(|a| self.repository.get(a))
                .collect::<Result<_>>()?;
            let matches = match_star(&tables, &self.config.matcher);
            let mut aligned = TableSet::new();
            aligned.add(tables[0].clone());
            for (t, m) in tables[1..].iter().zip(&matches) {
                aligned.add(apply_renames(t, m)?);
            }
            Ok(hummer_query::execute(&q, &aligned, &self.registry)?)
        } else {
            Ok(hummer_query::execute(&q, &self.repository, &self.registry)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{table, Value};
    use hummer_matching::SniffConfig;

    /// Heterogeneous student sources with duplicates and conflicts.
    fn hummer() -> Hummer {
        let mut h = Hummer::with_config(HummerConfig {
            matcher: MatcherConfig {
                sniff: SniffConfig {
                    min_similarity: 0.2,
                    ..Default::default()
                },
                ..Default::default()
            },
            // Narrow 2-3 column schemas carry little evidence mass, so the
            // duplicate threshold sits lower than the wide-schema default —
            // exactly the knob wizard step 3 exposes.
            detector: DetectorConfig {
                threshold: 0.7,
                unsure_threshold: 0.55,
                ..Default::default()
            },
            ..Default::default()
        });
        h.repository_mut()
            .register_table(
                "EE_Student",
                table! {
                    "EE_Student" => ["Name", "Age", "City"];
                    ["John Smith", 24, "Berlin"],
                    ["Mary Jones", 22, "Hamburg"],
                    ["Peter Miller", 27, "Munich"],
                },
            )
            .unwrap();
        h.repository_mut()
            .register_table(
                "CS_Students",
                table! {
                    "CS_Students" => ["FullName", "Years", "Town"];
                    ["John Smith", 25, "Berlin"],
                    ["Mary Jones", 22, "Hamburg"],
                    ["Ada Lovelace", 28, "London"],
                },
            )
            .unwrap();
        h
    }

    #[test]
    fn automatic_pipeline_end_to_end() {
        let h = hummer();
        let out = h
            .fuse_sources(
                &["EE_Student", "CS_Students"],
                &[("Age".to_string(), ResolutionSpec::named("max"))],
            )
            .unwrap();
        // 4 distinct people out of 6 rows.
        assert_eq!(out.result.len(), 4, "{}", out.result.pretty());
        // Schema is the preferred one (plus unmatched extras), bookkeeping dropped.
        assert!(out.result.schema().contains("Name"));
        assert!(out.result.schema().contains("Age"));
        assert!(!out.result.schema().contains("objectID"));
        assert!(!out.result.schema().contains("sourceID"));
        // John's age conflict resolved by max.
        let name = out.result.resolve("Name").unwrap();
        let age = out.result.resolve("Age").unwrap();
        let john = out
            .result
            .rows()
            .iter()
            .find(|r| r[name] == Value::text("John Smith"))
            .expect("john fused");
        assert_eq!(john[age], Value::Int(25));
        // Intermediate artifacts exposed.
        assert_eq!(out.integrated.len(), 6);
        assert_eq!(out.detection.object_count(), 4);
        assert!(out.conflict_count >= 1);
        assert_eq!(out.match_results.len(), 1);
    }

    #[test]
    fn lineage_shows_merged_sources() {
        let h = hummer();
        let out = h.fuse_sources(&["EE_Student", "CS_Students"], &[]).unwrap();
        let name = out.result.resolve("Name").unwrap();
        let sources = out.lineage.all_sources();
        assert_eq!(
            sources,
            vec!["CS_Students".to_string(), "EE_Student".to_string()]
        );
        // Some fused cell carries provenance.
        let any_pure = (0..out.result.len()).any(|r| out.lineage.cell(r, name).is_pure());
        assert!(any_pure);
    }

    #[test]
    fn query_mode_aligns_schemas_first() {
        let h = hummer();
        // CS_Students has FullName/Years/Town, but the query may speak the
        // preferred (EE) schema thanks to automatic matching.
        let out = h
            .query(
                "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
            )
            .unwrap();
        assert_eq!(out.table.len(), 4);
        let john = out
            .table
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("John Smith"))
            .unwrap();
        assert_eq!(john[1], Value::Int(25));
    }

    #[test]
    fn plain_query_passes_through() {
        let h = hummer();
        let out = h
            .query("SELECT Name FROM EE_Student WHERE Age > 23 ORDER BY Name")
            .unwrap();
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn unknown_alias_errors() {
        let h = hummer();
        assert!(h.fuse_sources(&["Nope"], &[]).is_err());
        assert!(h.query("SELECT * FROM Nope").is_err());
    }

    #[test]
    fn timings_are_recorded() {
        let h = hummer();
        let out = h.fuse_sources(&["EE_Student", "CS_Students"], &[]).unwrap();
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn prepared_artifacts_replay_across_resolutions() {
        // One preparation, many fusions — the serving layer's cache pattern.
        let h = hummer();
        let prepared = h.prepare(&["EE_Student", "CS_Students"]).unwrap();
        assert_eq!(prepared.integrated.len(), 6);
        assert!(prepared.annotated.schema().contains("objectID"));
        assert_eq!(prepared.timings.fusion, Duration::ZERO);

        let registry = FunctionRegistry::standard();
        let by_max = fuse_prepared(
            &prepared,
            &[("Age".to_string(), ResolutionSpec::named("max"))],
            &registry,
        )
        .unwrap();
        let by_min = fuse_prepared(
            &prepared,
            &[("Age".to_string(), ResolutionSpec::named("min"))],
            &registry,
        )
        .unwrap();
        assert_eq!(by_max.result.len(), 4);
        assert_eq!(by_min.result.len(), 4);
        let name = by_max.result.resolve("Name").unwrap();
        let age = by_max.result.resolve("Age").unwrap();
        let john_max = by_max
            .result
            .rows()
            .iter()
            .find(|r| r[name] == Value::text("John Smith"))
            .unwrap();
        let john_min = by_min
            .result
            .rows()
            .iter()
            .find(|r| r[name] == Value::text("John Smith"))
            .unwrap();
        assert_eq!(john_max[age], Value::Int(25));
        assert_eq!(john_min[age], Value::Int(24));
        // The replay matches the one-shot pipeline.
        let oneshot = h
            .fuse_sources(
                &["EE_Student", "CS_Students"],
                &[("Age".to_string(), ResolutionSpec::named("max"))],
            )
            .unwrap();
        assert_eq!(oneshot.result.rows(), by_max.result.rows());
    }

    #[test]
    fn apply_delta_matches_from_scratch_prepare() {
        let h = hummer();
        let prepared = h.prepare(&["EE_Student", "CS_Students"]).unwrap();

        // CS_Students: fix John's age and add a new student.
        let ee = h.repository().get("EE_Student").unwrap().clone();
        let mut cs_rows = h.repository().get("CS_Students").unwrap().rows().to_vec();
        cs_rows[0] = hummer_engine::Row::from_values(vec![
            Value::text("John Smith"),
            Value::Int(26),
            Value::text("Berlin"),
        ]);
        cs_rows.push(hummer_engine::Row::from_values(vec![
            Value::text("Grace Hopper"),
            Value::Int(37),
            Value::text("Arlington"),
        ]));
        let cs =
            hummer_engine::Table::from_rows("CS_Students", &["FullName", "Years", "Town"], cs_rows)
                .unwrap();

        // EE unchanged (3 rows) + CS: row 0 updated, 1 row appended.
        let mut old_to_new: Vec<Option<usize>> = (0..6).map(Some).collect();
        old_to_new.truncate(6);
        let mapping = RowMapping::new(old_to_new, 7).unwrap();

        let (upgraded, report) = prepared
            .apply_delta(&[&ee, &cs], &mapping, h.config())
            .unwrap();
        let scratch = prepare_tables(&[&ee, &cs], h.config()).unwrap();
        assert_eq!(upgraded.integrated.rows(), scratch.integrated.rows());
        assert_eq!(upgraded.annotated.rows(), scratch.annotated.rows());
        assert_eq!(upgraded.detection.pairs, scratch.detection.pairs);
        assert_eq!(upgraded.detection.unsure, scratch.detection.unsure);
        assert_eq!(
            upgraded.detection.cluster_ids,
            scratch.detection.cluster_ids
        );
        assert_eq!(upgraded.detection.clusters, scratch.detection.clusters);
        assert_eq!(
            upgraded.detection.attributes_used,
            scratch.detection.attributes_used
        );
        assert_eq!(report.detection.new_rows, 7);
        assert!(report.timings.total() > Duration::ZERO);

        // And the fused views agree, too.
        let registry = FunctionRegistry::standard();
        let from_upgraded = fuse_prepared(&upgraded, &[], &registry).unwrap();
        let from_scratch = fuse_prepared(&scratch, &[], &registry).unwrap();
        assert_eq!(from_upgraded.result.rows(), from_scratch.result.rows());
        assert_eq!(from_upgraded.conflict_count, from_scratch.conflict_count);
    }

    #[test]
    fn single_source_cleansing() {
        // The online data-cleansing service scenario: one dirty table.
        let mut h = hummer();
        h.repository_mut()
            .register_table(
                "Dump",
                table! {
                    "Dump" => ["Name", "City"];
                    ["Jon Smith", "Berlin"],
                    ["John Smith", "Berlin"],
                    ["Mary Jones", "Hamburg"],
                },
            )
            .unwrap();
        let out = h.fuse_sources(&["Dump"], &[]).unwrap();
        assert_eq!(out.result.len(), 2);
    }
}
