//! Unified error type for the HumMer pipeline.

use std::fmt;

/// Any failure in the end-to-end pipeline.
#[derive(Debug)]
pub enum HummerError {
    /// A source alias is not registered in the metadata repository.
    UnknownSource(String),
    /// An alias was registered twice.
    DuplicateSource(String),
    /// A wizard method was called in the wrong phase.
    WizardPhase {
        /// What the caller tried to do.
        action: String,
        /// The phase the wizard is actually in.
        phase: String,
    },
    /// Not enough sources for the requested operation.
    Config(String),
    /// A source file could not be loaded; carries the offending path so a
    /// failed registration is debuggable from the message alone.
    SourceFile {
        /// The path that failed to load.
        path: String,
        /// What went wrong (I/O or CSV parse).
        source: hummer_engine::EngineError,
    },
    /// Durable catalog store failure (WAL append, snapshot, recovery).
    Store(hummer_store::StoreError),
    /// Relational engine failure.
    Engine(hummer_engine::EngineError),
    /// Fusion failure.
    Fusion(hummer_fusion::FusionError),
    /// Query parse/execution failure.
    Query(hummer_query::QueryError),
}

impl fmt::Display for HummerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HummerError::UnknownSource(a) => write!(f, "unknown source alias `{a}`"),
            HummerError::DuplicateSource(a) => {
                write!(f, "source alias `{a}` is already registered")
            }
            HummerError::WizardPhase { action, phase } => {
                write!(f, "cannot {action} in wizard phase `{phase}`")
            }
            HummerError::Config(msg) => write!(f, "configuration error: {msg}"),
            HummerError::SourceFile { path, source } => {
                write!(f, "cannot load source file `{path}`: {source}")
            }
            HummerError::Store(e) => write!(f, "store error: {e}"),
            HummerError::Engine(e) => write!(f, "engine error: {e}"),
            HummerError::Fusion(e) => write!(f, "fusion error: {e}"),
            HummerError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for HummerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HummerError::Engine(e) => Some(e),
            HummerError::SourceFile { source, .. } => Some(source),
            HummerError::Store(e) => Some(e),
            HummerError::Fusion(e) => Some(e),
            HummerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hummer_engine::EngineError> for HummerError {
    fn from(e: hummer_engine::EngineError) -> Self {
        HummerError::Engine(e)
    }
}

impl From<hummer_fusion::FusionError> for HummerError {
    fn from(e: hummer_fusion::FusionError) -> Self {
        HummerError::Fusion(e)
    }
}

impl From<hummer_query::QueryError> for HummerError {
    fn from(e: hummer_query::QueryError) -> Self {
        HummerError::Query(e)
    }
}

impl From<hummer_store::StoreError> for HummerError {
    fn from(e: hummer_store::StoreError) -> Self {
        HummerError::Store(e)
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, HummerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HummerError::UnknownSource("x".into())
            .to_string()
            .contains("x"));
        let w = HummerError::WizardPhase {
            action: "fuse".into(),
            phase: "Matching".into(),
        };
        assert!(w.to_string().contains("fuse"));
        assert!(w.to_string().contains("Matching"));
    }

    #[test]
    fn conversions() {
        use std::error::Error as _;
        let e: HummerError = hummer_engine::EngineError::DuplicateColumn("c".into()).into();
        assert!(e.source().is_some());
        let e: HummerError = hummer_store::StoreError::corrupt("/d/wal-0.log", "bad CRC").into();
        assert!(e.to_string().contains("wal-0.log"));
        assert!(e.source().is_some());
    }

    #[test]
    fn source_file_errors_name_the_path() {
        use std::error::Error as _;
        let e = HummerError::SourceFile {
            path: "/data/missing.csv".into(),
            source: hummer_engine::EngineError::Parse("empty CSV input".into()),
        };
        assert!(e.to_string().contains("/data/missing.csv"));
        assert!(e.to_string().contains("empty CSV input"));
        assert!(e.source().is_some());
    }
}
