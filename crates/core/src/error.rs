//! Unified error type for the HumMer pipeline.

use std::fmt;

/// Any failure in the end-to-end pipeline.
#[derive(Debug)]
pub enum HummerError {
    /// A source alias is not registered in the metadata repository.
    UnknownSource(String),
    /// An alias was registered twice.
    DuplicateSource(String),
    /// A wizard method was called in the wrong phase.
    WizardPhase {
        /// What the caller tried to do.
        action: String,
        /// The phase the wizard is actually in.
        phase: String,
    },
    /// Not enough sources for the requested operation.
    Config(String),
    /// Relational engine failure.
    Engine(hummer_engine::EngineError),
    /// Fusion failure.
    Fusion(hummer_fusion::FusionError),
    /// Query parse/execution failure.
    Query(hummer_query::QueryError),
}

impl fmt::Display for HummerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HummerError::UnknownSource(a) => write!(f, "unknown source alias `{a}`"),
            HummerError::DuplicateSource(a) => {
                write!(f, "source alias `{a}` is already registered")
            }
            HummerError::WizardPhase { action, phase } => {
                write!(f, "cannot {action} in wizard phase `{phase}`")
            }
            HummerError::Config(msg) => write!(f, "configuration error: {msg}"),
            HummerError::Engine(e) => write!(f, "engine error: {e}"),
            HummerError::Fusion(e) => write!(f, "fusion error: {e}"),
            HummerError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for HummerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HummerError::Engine(e) => Some(e),
            HummerError::Fusion(e) => Some(e),
            HummerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hummer_engine::EngineError> for HummerError {
    fn from(e: hummer_engine::EngineError) -> Self {
        HummerError::Engine(e)
    }
}

impl From<hummer_fusion::FusionError> for HummerError {
    fn from(e: hummer_fusion::FusionError) -> Self {
        HummerError::Fusion(e)
    }
}

impl From<hummer_query::QueryError> for HummerError {
    fn from(e: hummer_query::QueryError) -> Self {
        HummerError::Query(e)
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, HummerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HummerError::UnknownSource("x".into())
            .to_string()
            .contains("x"));
        let w = HummerError::WizardPhase {
            action: "fuse".into(),
            phase: "Matching".into(),
        };
        assert!(w.to_string().contains("fuse"));
        assert!(w.to_string().contains("Matching"));
    }

    #[test]
    fn conversions() {
        use std::error::Error as _;
        let e: HummerError = hummer_engine::EngineError::DuplicateColumn("c".into()).into();
        assert!(e.source().is_some());
    }
}
