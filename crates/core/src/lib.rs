//! # hummer-core — the HumMer system
//!
//! The one-stop data-fusion pipeline of *"Automatic Data Fusion with
//! HumMer"* (Bilke et al., VLDB 2005): given a set of heterogeneous, dirty,
//! duplicate-containing sources, produce a single clean and consistent
//! table in three fully automatic steps — instance-based **schema
//! matching**, **duplicate detection**, and **conflict resolution** — with
//! every intermediate result inspectable and adjustable.
//!
//! * [`repository`] — the metadata repository of registered sources,
//! * [`pipeline`] — [`Hummer`]: the automatic pipeline and the Fuse By SQL
//!   interface,
//! * [`wizard`] — the six-step interactive flow of the demo (Fig. 2) as a
//!   phase-checked API.
//!
//! The pipeline's hot stages (matching, detection, fusion) can run on
//! several threads: set [`HummerConfig::parallelism`] (see
//! [`Parallelism`]). Results are bit-identical at every degree — the knob
//! only changes latency. See `ARCHITECTURE.md` for the dataflow and the
//! parallel execution layer.
//!
//! ## Example
//!
//! ```
//! use hummer_core::{Hummer, ResolutionSpec};
//! use hummer_engine::table;
//!
//! let mut hummer = Hummer::new();
//! // Tiny two-column sources carry little evidence mass; lower the
//! // duplicate threshold accordingly (wizard step 3's knob).
//! hummer.config_mut().detector.threshold = 0.6;
//! hummer.config_mut().detector.unsure_threshold = 0.5;
//!
//! hummer.repository_mut().register_table("EE_Student", table! {
//!     "EE_Student" => ["Name", "Age"];
//!     ["John Smith", 24],
//!     ["Mary Jones", 22],
//! }).unwrap();
//! hummer.repository_mut().register_table("CS_Students", table! {
//!     "CS_Students" => ["FullName", "Years"]; // heterogeneous labels
//!     ["John Smith", 25],
//! }).unwrap();
//!
//! // Fully automatic: match schemas, detect duplicates, fuse conflicts.
//! let out = hummer.fuse_sources(
//!     &["EE_Student", "CS_Students"],
//!     &[("Age".to_string(), ResolutionSpec::named("max"))],
//! ).unwrap();
//! assert_eq!(out.result.len(), 2); // John fused across sources
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod pipeline;
pub mod repository;
pub mod wizard;

pub use error::{HummerError, Result};
pub use pipeline::{
    fuse_prepared, fuse_prepared_par, fuse_prepared_traced, prepare_tables, prepare_tables_traced,
    DeltaReport, Hummer, HummerConfig, PipelineOutcome, PreparedSources, StageTimings,
};
pub use repository::{MetadataRepository, SourceInfo};
pub use wizard::{Wizard, WizardPhase};

// Re-export the component crates so downstream users need only hummer-core.
pub use hummer_dupdetect as dupdetect;
pub use hummer_engine as engine;
pub use hummer_fusion as fusion;
pub use hummer_matching as matching;
pub use hummer_obs as obs;
pub use hummer_query as query;
pub use hummer_store as store;
pub use hummer_textsim as textsim;

// Durable-catalog types, at the top level (see `MetadataRepository::open`).
pub use hummer_store::{CatalogStore, StoreOptions, StoreStats};

// The most-used types, at the top level.
pub use hummer_dupdetect::{DetectionResult, DetectorConfig, RowMapping};
pub use hummer_engine::ExecutionLayout;
pub use hummer_fusion::Parallelism;
pub use hummer_fusion::{FunctionRegistry, ResolutionSpec};
pub use hummer_matching::{MatcherConfig, SniffConfig};
pub use hummer_obs::{ObsConfig, Span, Tracer};
pub use hummer_query::QueryOutput;
