//! The metadata repository: registered sources under aliases.
//!
//! "A metadata repository stores all registered sources of data under an
//! alias. Sources can include tables in a database, flat files, XML files,
//! web services, etc. Since we assume relational data within the system,
//! the metadata repository additionally stores instructions to transform
//! data into its relational form." (paper §3)
//!
//! In this reproduction a source is an in-memory table or a CSV file (the
//! "instruction" is the CSV parse with type inference); the alias and
//! description machinery matches the paper's design.

use crate::error::{HummerError, Result};
use hummer_engine::{csv, Table};
use hummer_query::Catalog;
use std::collections::HashMap;
use std::path::Path;

/// Descriptive metadata about a registered source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Alias the source is registered under.
    pub alias: String,
    /// Where the data came from.
    pub origin: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row count.
    pub rows: usize,
}

/// The repository.
#[derive(Debug, Clone, Default)]
pub struct MetadataRepository {
    /// alias (lowercase) → (table, origin).
    sources: HashMap<String, (Table, String)>,
}

impl MetadataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        MetadataRepository::default()
    }

    /// Register an in-memory table under `alias`. Fails on duplicates.
    pub fn register_table(&mut self, alias: impl Into<String>, mut table: Table) -> Result<()> {
        let alias = alias.into();
        let key = alias.to_ascii_lowercase();
        if self.sources.contains_key(&key) {
            return Err(HummerError::DuplicateSource(alias));
        }
        table.set_name(alias.clone());
        self.sources.insert(key, (table, "memory".to_string()));
        Ok(())
    }

    /// Register CSV text under `alias`.
    pub fn register_csv_str(&mut self, alias: impl Into<String>, content: &str) -> Result<()> {
        let alias = alias.into();
        let table = csv::read_csv_str(&alias, content)?;
        let key = alias.to_ascii_lowercase();
        if self.sources.contains_key(&key) {
            return Err(HummerError::DuplicateSource(alias));
        }
        self.sources.insert(key, (table, "csv-inline".to_string()));
        Ok(())
    }

    /// Register a CSV file under `alias`.
    pub fn register_csv_file(
        &mut self,
        alias: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<()> {
        let alias = alias.into();
        let origin = path.as_ref().display().to_string();
        let table = csv::read_csv_file(&alias, path)?;
        let key = alias.to_ascii_lowercase();
        if self.sources.contains_key(&key) {
            return Err(HummerError::DuplicateSource(alias));
        }
        self.sources.insert(key, (table, origin));
        Ok(())
    }

    /// Remove a source; returns whether it existed.
    pub fn deregister(&mut self, alias: &str) -> bool {
        self.sources.remove(&alias.to_ascii_lowercase()).is_some()
    }

    /// Look up a source table.
    pub fn get(&self, alias: &str) -> Result<&Table> {
        self.sources
            .get(&alias.to_ascii_lowercase())
            .map(|(t, _)| t)
            .ok_or_else(|| HummerError::UnknownSource(alias.to_string()))
    }

    /// All registered sources, sorted by alias.
    pub fn list(&self) -> Vec<SourceInfo> {
        let mut out: Vec<SourceInfo> = self
            .sources
            .values()
            .map(|(t, origin)| SourceInfo {
                alias: t.name().to_string(),
                origin: origin.clone(),
                columns: t.schema().names().iter().map(|s| s.to_string()).collect(),
                rows: t.len(),
            })
            .collect();
        out.sort_by(|a, b| a.alias.cmp(&b.alias));
        out
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl Catalog for MetadataRepository {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.sources
            .get(&alias.to_ascii_lowercase())
            .map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    #[test]
    fn register_and_lookup() {
        let mut r = MetadataRepository::new();
        r.register_table("Students", table! { "X" => ["a"]; [1] })
            .unwrap();
        let t = r.get("students").unwrap();
        assert_eq!(t.name(), "Students"); // renamed to the alias
        assert!(r.get("nope").is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut r = MetadataRepository::new();
        r.register_table("A", table! { "A" => ["x"]; [1] }).unwrap();
        assert!(matches!(
            r.register_table("a", table! { "A" => ["x"]; [2] }),
            Err(HummerError::DuplicateSource(_))
        ));
    }

    #[test]
    fn csv_registration_with_inference() {
        let mut r = MetadataRepository::new();
        r.register_csv_str("Shop", "Artist,Price\nQueen,9.99\n")
            .unwrap();
        let t = r.get("Shop").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().names(), vec!["Artist", "Price"]);
    }

    #[test]
    fn list_is_sorted_and_descriptive() {
        let mut r = MetadataRepository::new();
        r.register_table("Zeta", table! { "Z" => ["x"]; [1] })
            .unwrap();
        r.register_table("Alpha", table! { "A" => ["y", "z"]; [1, 2] })
            .unwrap();
        let infos = r.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].alias, "Alpha");
        assert_eq!(infos[0].columns, vec!["y", "z"]);
        assert_eq!(infos[1].rows, 1);
    }

    #[test]
    fn deregister() {
        let mut r = MetadataRepository::new();
        r.register_table("A", table! { "A" => ["x"]; [1] }).unwrap();
        assert!(r.deregister("a"));
        assert!(!r.deregister("a"));
        assert!(r.is_empty());
    }

    #[test]
    fn catalog_impl() {
        let mut r = MetadataRepository::new();
        r.register_table("T", table! { "T" => ["x"]; [1] }).unwrap();
        assert!(Catalog::table(&r, "t").is_some());
        assert!(Catalog::table(&r, "zz").is_none());
    }
}
