//! The metadata repository: registered sources under aliases.
//!
//! "A metadata repository stores all registered sources of data under an
//! alias. Sources can include tables in a database, flat files, XML files,
//! web services, etc. Since we assume relational data within the system,
//! the metadata repository additionally stores instructions to transform
//! data into its relational form." (paper §3)
//!
//! In this reproduction a source is an in-memory table or a CSV file (the
//! "instruction" is the CSV parse with type inference); the alias and
//! description machinery matches the paper's design.
//!
//! ## Durability
//!
//! The repository can be backed by `hummer_store`'s durable catalog:
//! [`MetadataRepository::open`] recovers sources from a data directory, the
//! `*_durable` registration hooks write-ahead-log every mutation before
//! applying it, and [`MetadataRepository::persist_to`] compacts the current
//! state into a fresh snapshot. The non-durable methods stay exactly as
//! before — durability is opt-in per call site.

use crate::error::{HummerError, Result};
use hummer_engine::{csv, Table};
use hummer_query::Catalog;
use hummer_store::{CatalogStore, SnapshotEntry, StoreOptions};
use std::collections::HashMap;
use std::path::Path;

/// Descriptive metadata about a registered source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Alias the source is registered under.
    pub alias: String,
    /// Where the data came from.
    pub origin: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row count.
    pub rows: usize,
}

/// One registered source.
#[derive(Debug, Clone)]
struct Source {
    table: Table,
    origin: String,
    /// Content version in the durable store; `0` until first logged.
    version: u64,
}

/// The repository.
#[derive(Debug, Clone, Default)]
pub struct MetadataRepository {
    /// alias (lowercase) → source.
    sources: HashMap<String, Source>,
}

impl MetadataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        MetadataRepository::default()
    }

    /// Open a durable repository: recover every source persisted in `dir`
    /// and return the store handle for logging further mutations through
    /// the `*_durable` methods.
    pub fn open(
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<(MetadataRepository, CatalogStore)> {
        let (store, recovery) = CatalogStore::open(dir, options)?;
        let mut repo = MetadataRepository::new();
        for t in recovery.tables {
            repo.sources.insert(
                t.alias.to_ascii_lowercase(),
                Source {
                    table: t.table,
                    origin: "store".to_string(),
                    version: t.version,
                },
            );
        }
        Ok((repo, store))
    }

    fn insert(&mut self, alias: String, table: Table, origin: &str, version: u64) -> Result<()> {
        let key = alias.to_ascii_lowercase();
        if self.sources.contains_key(&key) {
            return Err(HummerError::DuplicateSource(alias));
        }
        self.sources.insert(
            key,
            Source {
                table,
                origin: origin.to_string(),
                version,
            },
        );
        Ok(())
    }

    /// Register an in-memory table under `alias`. Fails on duplicates.
    pub fn register_table(&mut self, alias: impl Into<String>, mut table: Table) -> Result<()> {
        let alias = alias.into();
        table.set_name(alias.clone());
        self.insert(alias, table, "memory", 0)
    }

    /// Register CSV text under `alias`.
    pub fn register_csv_str(&mut self, alias: impl Into<String>, content: &str) -> Result<()> {
        let alias = alias.into();
        let table = csv::read_csv_str(&alias, content)?;
        self.insert(alias, table, "csv-inline", 0)
    }

    /// Register a CSV file under `alias`. Failures (missing file, parse
    /// error) name the offending path.
    pub fn register_csv_file(
        &mut self,
        alias: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<()> {
        let alias = alias.into();
        let origin = path.as_ref().display().to_string();
        let table = csv::read_csv_file(&alias, path).map_err(|source| HummerError::SourceFile {
            path: origin.clone(),
            source,
        })?;
        self.insert(alias, table, &origin, 0)
    }

    /// Register an in-memory table durably: the registration is logged to
    /// `store`'s write-ahead log *before* the repository mutates, so a
    /// crash on either side of the insert recovers consistently. Compacts
    /// automatically when the WAL crosses the store's threshold.
    pub fn register_table_durable(
        &mut self,
        store: &mut CatalogStore,
        alias: impl Into<String>,
        mut table: Table,
    ) -> Result<()> {
        let alias = alias.into();
        if self.sources.contains_key(&alias.to_ascii_lowercase()) {
            return Err(HummerError::DuplicateSource(alias));
        }
        table.set_name(alias.clone());
        let version = store.allocate_version();
        store.log_register(&alias, version, &table)?;
        self.insert(alias, table, "memory", version)?;
        self.maybe_compact(store);
        Ok(())
    }

    /// Remove a source durably (logged before the removal is applied);
    /// returns whether it existed.
    pub fn deregister_durable(&mut self, store: &mut CatalogStore, alias: &str) -> Result<bool> {
        let Some(source) = self.sources.get(&alias.to_ascii_lowercase()) else {
            return Ok(false);
        };
        // Only sources the log knows about (version > 0) get a deregister
        // record: logging one for a never-registered alias would make every
        // future replay fail on "deregister of unknown table".
        if source.version > 0 {
            store.log_deregister(alias)?;
        }
        self.sources.remove(&alias.to_ascii_lowercase());
        self.maybe_compact(store);
        Ok(true)
    }

    /// Persist the complete current state into a fresh snapshot (explicit
    /// compaction). Sources that were registered non-durably get a version
    /// assigned here and become durable too.
    pub fn persist_to(&mut self, store: &mut CatalogStore) -> Result<()> {
        // Plan versions for never-logged sources but commit them to the
        // in-memory state only after the snapshot lands: marking a source
        // durable (version > 0) when the compact failed would let a later
        // `deregister_durable` log a record for an alias the store never
        // saw, poisoning every future replay.
        let planned: Vec<(String, u64)> = self
            .sources
            .iter()
            .map(|(key, s)| {
                let version = if s.version == 0 {
                    store.allocate_version()
                } else {
                    s.version
                };
                (key.clone(), version)
            })
            .collect();
        let entries: Vec<SnapshotEntry<'_>> = planned
            .iter()
            .map(|(key, version)| {
                let s = &self.sources[key];
                SnapshotEntry {
                    alias: s.table.name(),
                    version: *version,
                    table: &s.table,
                }
            })
            .collect();
        store.compact(&entries)?;
        drop(entries);
        for (key, version) in planned {
            self.sources
                .get_mut(&key)
                .expect("planned from current sources")
                .version = version;
        }
        Ok(())
    }

    /// Threshold compaction is non-fatal by design: the mutation that
    /// triggered it is already durably logged and applied, so reporting a
    /// compaction hiccup as *mutation* failure would mislead callers into
    /// retrying a committed operation. The store retries after the next
    /// mutation (and [`MetadataRepository::persist_to`] compacts
    /// explicitly, propagating errors).
    fn maybe_compact(&self, store: &mut CatalogStore) {
        if !store.wants_compaction() {
            return;
        }
        // Non-durable (version-0) sources are not snapshot state.
        if let Err(e) = store.compact(&self.snapshot_entries(true)) {
            eprintln!("hummer-core: WAL compaction failed (will retry): {e}");
        }
    }

    /// The current sources as snapshot entries; `only_durable` drops
    /// version-0 (never-logged) sources.
    fn snapshot_entries(&self, only_durable: bool) -> Vec<SnapshotEntry<'_>> {
        self.sources
            .values()
            .filter(|s| !only_durable || s.version > 0)
            .map(|s| SnapshotEntry {
                alias: s.table.name(),
                version: s.version,
                table: &s.table,
            })
            .collect()
    }

    /// Remove a source; returns whether it existed.
    pub fn deregister(&mut self, alias: &str) -> bool {
        self.sources.remove(&alias.to_ascii_lowercase()).is_some()
    }

    /// Look up a source table.
    pub fn get(&self, alias: &str) -> Result<&Table> {
        self.sources
            .get(&alias.to_ascii_lowercase())
            .map(|s| &s.table)
            .ok_or_else(|| HummerError::UnknownSource(alias.to_string()))
    }

    /// All registered sources, sorted by alias.
    pub fn list(&self) -> Vec<SourceInfo> {
        let mut out: Vec<SourceInfo> = self
            .sources
            .values()
            .map(|s| SourceInfo {
                alias: s.table.name().to_string(),
                origin: s.origin.clone(),
                columns: s
                    .table
                    .schema()
                    .names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect(),
                rows: s.table.len(),
            })
            .collect();
        out.sort_by(|a, b| a.alias.cmp(&b.alias));
        out
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl Catalog for MetadataRepository {
    fn table(&self, alias: &str) -> Option<&Table> {
        self.sources
            .get(&alias.to_ascii_lowercase())
            .map(|s| &s.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    #[test]
    fn register_and_lookup() {
        let mut r = MetadataRepository::new();
        r.register_table("Students", table! { "X" => ["a"]; [1] })
            .unwrap();
        let t = r.get("students").unwrap();
        assert_eq!(t.name(), "Students"); // renamed to the alias
        assert!(r.get("nope").is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut r = MetadataRepository::new();
        r.register_table("A", table! { "A" => ["x"]; [1] }).unwrap();
        assert!(matches!(
            r.register_table("a", table! { "A" => ["x"]; [2] }),
            Err(HummerError::DuplicateSource(_))
        ));
    }

    #[test]
    fn csv_registration_with_inference() {
        let mut r = MetadataRepository::new();
        r.register_csv_str("Shop", "Artist,Price\nQueen,9.99\n")
            .unwrap();
        let t = r.get("Shop").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().names(), vec!["Artist", "Price"]);
    }

    #[test]
    fn csv_file_errors_name_the_path() {
        let mut r = MetadataRepository::new();
        let missing = "/definitely/not/here/data.csv";
        let e = r.register_csv_file("Ghost", missing).unwrap_err();
        assert!(
            e.to_string().contains(missing),
            "error must carry the path: {e}"
        );
        assert!(matches!(e, HummerError::SourceFile { .. }));
    }

    #[test]
    fn list_is_sorted_and_descriptive() {
        let mut r = MetadataRepository::new();
        r.register_table("Zeta", table! { "Z" => ["x"]; [1] })
            .unwrap();
        r.register_table("Alpha", table! { "A" => ["y", "z"]; [1, 2] })
            .unwrap();
        let infos = r.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].alias, "Alpha");
        assert_eq!(infos[0].columns, vec!["y", "z"]);
        assert_eq!(infos[1].rows, 1);
    }

    #[test]
    fn deregister() {
        let mut r = MetadataRepository::new();
        r.register_table("A", table! { "A" => ["x"]; [1] }).unwrap();
        assert!(r.deregister("a"));
        assert!(!r.deregister("a"));
        assert!(r.is_empty());
    }

    #[test]
    fn catalog_impl() {
        let mut r = MetadataRepository::new();
        r.register_table("T", table! { "T" => ["x"]; [1] }).unwrap();
        assert!(Catalog::table(&r, "t").is_some());
        assert!(Catalog::table(&r, "zz").is_none());
    }

    fn temp_dir() -> std::path::PathBuf {
        hummer_store::scratch::dir("repo")
    }

    #[test]
    fn durable_registrations_survive_reopen() {
        let dir = temp_dir();
        {
            let (mut repo, mut store) =
                MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
            repo.register_table_durable(
                &mut store,
                "Students",
                table! {
                    "X" => ["Name", "Age"]; ["Ada", 36], ["Bob", 24]
                },
            )
            .unwrap();
            repo.register_table_durable(&mut store, "Doomed", table! { "X" => ["a"]; [1] })
                .unwrap();
            assert!(repo.deregister_durable(&mut store, "doomed").unwrap());
            assert!(!repo.deregister_durable(&mut store, "doomed").unwrap());
            // Duplicate registration fails without touching the log.
            assert!(repo
                .register_table_durable(&mut store, "students", table! { "X" => ["a"]; [1] })
                .is_err());
        } // crash
        let (repo, _store) = MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(repo.len(), 1);
        let t = repo.get("Students").unwrap();
        assert_eq!(t.name(), "Students");
        assert_eq!(t.len(), 2);
        assert_eq!(repo.list()[0].origin, "store");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_to_compacts_everything() {
        let dir = temp_dir();
        {
            let (mut repo, mut store) =
                MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
            // A non-durable registration becomes durable on persist.
            repo.register_table("Lazy", table! { "X" => ["a"]; [7] })
                .unwrap();
            repo.persist_to(&mut store).unwrap();
            assert_eq!(store.stats().snapshots_written, 1);
            assert_eq!(store.stats().wal_records, 0);
        }
        let (repo, store) = MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(repo.get("Lazy").unwrap().len(), 1);
        assert_eq!(store.stats().generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_persist_does_not_mark_sources_durable() {
        // Regression: persist_to used to assign versions *before* the
        // compact, so a failed snapshot left version-0 sources looking
        // durable — and a later deregister_durable would log a record the
        // WAL could never replay.
        let dir = temp_dir();
        {
            let (mut repo, mut store) =
                MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
            repo.register_table("Lazy", table! { "X" => ["a"]; [7] })
                .unwrap();
            // Force the snapshot write to fail: its temp path is occupied
            // by a directory (File::create on a directory errors).
            let blocker = dir.join("snapshot-00000000000000000001.tmp");
            std::fs::create_dir_all(&blocker).unwrap();
            assert!(repo.persist_to(&mut store).is_err());
            std::fs::remove_dir_all(&blocker).unwrap();
            // The source must still be non-durable, so deregistering it
            // does not log an unreplayable record.
            assert!(repo.deregister_durable(&mut store, "Lazy").unwrap());
            assert_eq!(store.stats().wal_records, 0);
        }
        let (repo, _) = MetadataRepository::open(&dir, StoreOptions::default())
            .expect("log must replay cleanly");
        assert!(repo.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deregistering_a_non_durable_source_never_poisons_the_log() {
        // Regression: logging a deregister for a source the WAL never saw
        // (registered non-durably, version 0) made every future open fail
        // with "deregister of unknown table".
        let dir = temp_dir();
        {
            let (mut repo, mut store) =
                MetadataRepository::open(&dir, StoreOptions::default()).unwrap();
            repo.register_table("Lazy", table! { "X" => ["a"]; [7] })
                .unwrap();
            assert!(repo.deregister_durable(&mut store, "Lazy").unwrap());
            repo.register_table_durable(&mut store, "Kept", table! { "X" => ["a"]; [1] })
                .unwrap();
        }
        let (repo, _) = MetadataRepository::open(&dir, StoreOptions::default())
            .expect("log must replay cleanly");
        assert_eq!(repo.len(), 1);
        assert!(repo.get("Kept").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_compaction_fires_during_registration() {
        let dir = temp_dir();
        let options = StoreOptions {
            fsync: false,
            compact_after_bytes: 64,
            group_commit_window_us: 0,
        };
        {
            let (mut repo, mut store) = MetadataRepository::open(&dir, options.clone()).unwrap();
            repo.register_table_durable(&mut store, "A", table! { "X" => ["a"]; [1] })
                .unwrap();
            assert!(store.stats().snapshots_written >= 1, "tiny threshold");
            // The directory is single-writer: a second open while this
            // store is alive must refuse with the holder's PID.
            let e = MetadataRepository::open(&dir, options.clone()).unwrap_err();
            assert!(e.to_string().contains("locked"), "{e}");
        }
        let (repo, _) = MetadataRepository::open(&dir, options).unwrap();
        assert_eq!(repo.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
