//! The six-step wizard (paper Fig. 2): the interactive face of the
//! pipeline, with every intermediate result inspectable and adjustable.
//!
//! ```text
//! 1. Choose sources → 2. Adjust matching → 3. Adjust duplicate definition
//! → 4. Confirm duplicates → 5. Specify resolution functions → 6. Browse
//! result set
//! ```
//!
//! Each step is a phase of [`Wizard`]; the mutating accessors between
//! phases are the programmatic equivalent of the demo GUI's overrides
//! ("users can correct or adjust the matching result", "users can
//! optionally adjust the results of the heuristics by hand", "sure
//! duplicates, sure non-duplicates, and unsure cases, all of which users
//! can decide upon individually").

use crate::error::{HummerError, Result};
use crate::pipeline::{HummerConfig, PipelineOutcome, StageTimings};
use crate::repository::MetadataRepository;
use hummer_dupdetect::{
    annotate_object_ids, detect_duplicates_par, DetectionResult, DetectorConfig, OBJECT_ID_COLUMN,
};
use hummer_engine::Table;
use hummer_fusion::{fuse, FunctionRegistry, FusionSpec, ResolutionSpec};
use hummer_matching::{integrate, match_star_par, MatchResult};
use std::time::Instant;

/// Where in the six-step flow the wizard currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WizardPhase {
    /// Step 2: schema matching ran; correspondences may be adjusted.
    AdjustMatching,
    /// Step 3: transformation ran; the duplicate definition (attributes,
    /// thresholds, strategy) may be adjusted.
    AdjustDuplicateDefinition,
    /// Step 4: detection ran; pairs may be confirmed/rejected.
    ConfirmDuplicates,
    /// Step 5: resolution functions may be assigned per column.
    SpecifyResolution,
    /// Step 6: fusion ran; the result is available.
    BrowseResult,
}

impl WizardPhase {
    fn name(&self) -> &'static str {
        match self {
            WizardPhase::AdjustMatching => "AdjustMatching",
            WizardPhase::AdjustDuplicateDefinition => "AdjustDuplicateDefinition",
            WizardPhase::ConfirmDuplicates => "ConfirmDuplicates",
            WizardPhase::SpecifyResolution => "SpecifyResolution",
            WizardPhase::BrowseResult => "BrowseResult",
        }
    }
}

/// The step-wise pipeline.
#[derive(Debug)]
pub struct Wizard {
    config: HummerConfig,
    phase: WizardPhase,
    tables: Vec<Table>,
    match_results: Vec<MatchResult>,
    integrated: Option<Table>,
    detection: Option<DetectionResult>,
    resolutions: Vec<(String, ResolutionSpec)>,
    timings: StageTimings,
}

impl Wizard {
    /// Step 1 (choose sources) + the automatic part of step 2: fetch the
    /// aliases from the repository and run schema matching. The first alias
    /// supplies the preferred schema.
    pub fn start(
        repo: &MetadataRepository,
        aliases: &[&str],
        config: HummerConfig,
    ) -> Result<Wizard> {
        if aliases.is_empty() {
            return Err(HummerError::Config(
                "wizard needs at least one source".into(),
            ));
        }
        let tables: Vec<Table> = aliases
            .iter()
            .map(|a| repo.get(a).cloned())
            .collect::<Result<_>>()?;
        let t0 = Instant::now();
        let refs: Vec<&Table> = tables.iter().collect();
        let match_results = match_star_par(&refs, &config.matcher, config.parallelism);
        let timings = StageTimings {
            matching: t0.elapsed(),
            ..Default::default()
        };
        Ok(Wizard {
            config,
            phase: WizardPhase::AdjustMatching,
            tables,
            match_results,
            integrated: None,
            detection: None,
            resolutions: Vec::new(),
            timings,
        })
    }

    /// The current phase.
    pub fn phase(&self) -> WizardPhase {
        self.phase
    }

    fn expect_phase(&self, expected: WizardPhase, action: &str) -> Result<()> {
        if self.phase == expected {
            Ok(())
        } else {
            Err(HummerError::WizardPhase {
                action: action.to_string(),
                phase: self.phase.name().to_string(),
            })
        }
    }

    // -- step 2: adjust matching ------------------------------------------

    /// The matching results (one per non-preferred source), for inspection.
    pub fn match_results(&self) -> &[MatchResult] {
        &self.match_results
    }

    /// Mutable matching results — add or delete correspondences
    /// (only before [`Wizard::confirm_matching`]).
    pub fn match_results_mut(&mut self) -> Result<&mut [MatchResult]> {
        self.expect_phase(WizardPhase::AdjustMatching, "adjust matching")?;
        Ok(&mut self.match_results)
    }

    /// Accept the (possibly adjusted) matching and run the transformation:
    /// rename, tag with `sourceID`, full outer union. Advances to step 3.
    pub fn confirm_matching(&mut self) -> Result<&Table> {
        self.expect_phase(WizardPhase::AdjustMatching, "confirm matching")?;
        let t0 = Instant::now();
        let refs: Vec<&Table> = self.tables.iter().collect();
        let integrated = integrate(&refs, &self.match_results, "Integrated")?;
        self.timings.transformation = t0.elapsed();
        self.integrated = Some(integrated);
        self.phase = WizardPhase::AdjustDuplicateDefinition;
        Ok(self.integrated.as_ref().expect("just set"))
    }

    /// The integrated table (available from step 3 on).
    pub fn integrated(&self) -> Option<&Table> {
        self.integrated.as_ref()
    }

    // -- step 3: adjust duplicate definition --------------------------------

    /// The detector configuration, adjustable in step 3 ("users can
    /// optionally adjust the results of the heuristics by hand").
    pub fn detector_config_mut(&mut self) -> Result<&mut DetectorConfig> {
        self.expect_phase(
            WizardPhase::AdjustDuplicateDefinition,
            "adjust duplicate definition",
        )?;
        Ok(&mut self.config.detector)
    }

    /// Run duplicate detection with the current definition. Advances to
    /// step 4.
    pub fn run_detection(&mut self) -> Result<&DetectionResult> {
        self.expect_phase(WizardPhase::AdjustDuplicateDefinition, "run detection")?;
        let integrated = self.integrated.as_ref().expect("set at confirm_matching");
        let t0 = Instant::now();
        let detection =
            detect_duplicates_par(integrated, &self.config.detector, self.config.parallelism)?;
        self.timings.detection = t0.elapsed();
        self.detection = Some(detection);
        self.phase = WizardPhase::ConfirmDuplicates;
        Ok(self.detection.as_ref().expect("just set"))
    }

    // -- step 4: confirm duplicates ----------------------------------------

    /// The detection result (pairs, unsure cases, clusters).
    pub fn detection(&self) -> Option<&DetectionResult> {
        self.detection.as_ref()
    }

    /// Mutable detection result for confirming unsure pairs / rejecting
    /// false positives (call `recluster()` after edits, or just proceed —
    /// [`Wizard::confirm_duplicates`] reclusters).
    pub fn detection_mut(&mut self) -> Result<&mut DetectionResult> {
        self.expect_phase(WizardPhase::ConfirmDuplicates, "edit duplicates")?;
        Ok(self.detection.as_mut().expect("set at run_detection"))
    }

    /// Accept the (possibly adjusted) duplicates. Advances to step 5.
    pub fn confirm_duplicates(&mut self) -> Result<()> {
        self.expect_phase(WizardPhase::ConfirmDuplicates, "confirm duplicates")?;
        self.detection.as_mut().expect("set").recluster();
        self.phase = WizardPhase::SpecifyResolution;
        Ok(())
    }

    // -- step 5: specify resolution functions -------------------------------

    /// Assign a resolution function to a column (step 5). Columns without
    /// an assignment default to `COALESCE`.
    pub fn set_resolution(
        &mut self,
        column: impl Into<String>,
        spec: ResolutionSpec,
    ) -> Result<()> {
        self.expect_phase(WizardPhase::SpecifyResolution, "specify resolution")?;
        self.resolutions.push((column.into(), spec));
        Ok(())
    }

    /// Run fusion and produce the final outcome. Advances to step 6.
    pub fn finish(&mut self, registry: &FunctionRegistry) -> Result<PipelineOutcome> {
        self.expect_phase(WizardPhase::SpecifyResolution, "finish")?;
        let integrated = self.integrated.clone().expect("set at confirm_matching");
        let detection = self.detection.clone().expect("set at run_detection");
        let annotated = annotate_object_ids(&integrated, &detection)?;
        let t0 = Instant::now();
        let mut spec = FusionSpec::by_key(vec![OBJECT_ID_COLUMN])
            .drop_column(OBJECT_ID_COLUMN)
            .drop_column(hummer_matching::SOURCE_ID_COLUMN)
            .with_parallelism(self.config.parallelism);
        for (col, rspec) in &self.resolutions {
            spec = spec.resolve(col.clone(), rspec.clone());
        }
        let fused = fuse(&annotated, &spec, registry)?;
        self.timings.fusion = t0.elapsed();
        self.phase = WizardPhase::BrowseResult;
        Ok(PipelineOutcome {
            result: fused.table,
            lineage: fused.lineage,
            sample_conflicts: fused.sample_conflicts,
            conflict_count: fused.conflict_count,
            match_results: self.match_results.clone(),
            integrated,
            detection,
            timings: self.timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::{table, Value};
    use hummer_matching::{MatcherConfig, SniffConfig};

    fn repo() -> MetadataRepository {
        let mut r = MetadataRepository::new();
        r.register_table(
            "EE",
            table! {
                "EE" => ["Name", "Age"];
                ["John Smith", 24],
                ["Mary Jones", 22],
                ["Peter Miller", 27],
            },
        )
        .unwrap();
        r.register_table(
            "CS",
            table! {
                "CS" => ["FullName", "Years"];
                ["John Smith", 25],
                ["Mary Jones", 22],
            },
        )
        .unwrap();
        r
    }

    fn config() -> HummerConfig {
        HummerConfig {
            matcher: MatcherConfig {
                sniff: SniffConfig {
                    min_similarity: 0.2,
                    ..Default::default()
                },
                ..Default::default()
            },
            detector: DetectorConfig {
                threshold: 0.7,
                unsure_threshold: 0.55,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn full_walkthrough() {
        let r = repo();
        let mut w = Wizard::start(&r, &["EE", "CS"], config()).unwrap();
        assert_eq!(w.phase(), WizardPhase::AdjustMatching);
        assert_eq!(w.match_results().len(), 1);

        let integrated = w.confirm_matching().unwrap();
        assert_eq!(integrated.len(), 5);
        assert_eq!(w.phase(), WizardPhase::AdjustDuplicateDefinition);

        w.run_detection().unwrap();
        assert_eq!(w.phase(), WizardPhase::ConfirmDuplicates);
        assert_eq!(w.detection().unwrap().object_count(), 3);

        w.confirm_duplicates().unwrap();
        w.set_resolution("Age", ResolutionSpec::named("max"))
            .unwrap();
        let out = w.finish(&FunctionRegistry::standard()).unwrap();
        assert_eq!(w.phase(), WizardPhase::BrowseResult);
        assert_eq!(out.result.len(), 3);
        let name = out.result.resolve("Name").unwrap();
        let age = out.result.resolve("Age").unwrap();
        let john = out
            .result
            .rows()
            .iter()
            .find(|r| r[name] == Value::text("John Smith"))
            .unwrap();
        assert_eq!(john[age], Value::Int(25));
    }

    #[test]
    fn user_can_fix_matching_before_transform() {
        let r = repo();
        let mut w = Wizard::start(&r, &["EE", "CS"], config()).unwrap();
        // Simulate a user override: force an extra correspondence.
        w.match_results_mut().unwrap()[0].add("Age", "Years", 1.0);
        let integrated = w.confirm_matching().unwrap();
        assert!(integrated.schema().contains("Age"));
        assert!(!integrated.schema().contains("Years"));
    }

    #[test]
    fn user_can_reject_duplicate_pair() {
        let r = repo();
        let mut w = Wizard::start(&r, &["EE", "CS"], config()).unwrap();
        w.confirm_matching().unwrap();
        w.run_detection().unwrap();
        let n_before = w.detection().unwrap().object_count();
        // Reject every detected pair → everything becomes a singleton.
        let pairs: Vec<_> = w.detection().unwrap().pairs.clone();
        for p in &pairs {
            w.detection_mut().unwrap().reject_pair(p.left, p.right);
        }
        w.confirm_duplicates().unwrap();
        let out = w.finish(&FunctionRegistry::standard()).unwrap();
        assert_eq!(out.result.len(), 5);
        assert!(n_before < 5);
    }

    #[test]
    fn phase_violations_are_rejected() {
        let r = repo();
        let mut w = Wizard::start(&r, &["EE", "CS"], config()).unwrap();
        assert!(w.run_detection().is_err()); // must confirm matching first
        assert!(w
            .set_resolution("Age", ResolutionSpec::named("max"))
            .is_err());
        assert!(w.finish(&FunctionRegistry::standard()).is_err());
        w.confirm_matching().unwrap();
        assert!(w.match_results_mut().is_err()); // too late to adjust
        assert!(w.confirm_duplicates().is_err()); // detection not run yet
    }

    #[test]
    fn detector_config_adjustable_in_step3() {
        let r = repo();
        let mut w = Wizard::start(&r, &["EE", "CS"], config()).unwrap();
        w.confirm_matching().unwrap();
        w.detector_config_mut().unwrap().attributes = Some(vec!["Name".into()]);
        let det = w.run_detection().unwrap();
        assert_eq!(det.attributes_used, vec!["Name"]);
    }

    #[test]
    fn empty_aliases_rejected() {
        let r = repo();
        assert!(Wizard::start(&r, &[], config()).is_err());
    }
}
