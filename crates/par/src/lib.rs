//! # hummer-par — std-only intra-query parallelism
//!
//! The HumMer pipeline is embarrassingly parallel at several stages:
//! candidate-pair scoring in duplicate detection, the per-duplicate
//! field-similarity matrices of DUMAS schema matching, and per-cluster
//! conflict resolution in fusion. This crate is the shared execution layer
//! those stages fan out through — scoped fork-join helpers built on
//! [`std::thread::scope`], no external dependencies, sized from
//! [`std::thread::available_parallelism`].
//!
//! ## Determinism contract
//!
//! Every helper here merges results in **input order**: `par_map(p, xs, f)`
//! returns exactly `xs.iter().map(f).collect()` for any degree, and
//! [`par_chunks`] returns per-chunk results in chunk order. As long as the
//! worker closure is a pure function of its item, output is bit-identical
//! to the sequential path — which is how the repo's property tests and
//! `exp10_parallel` can assert byte-equality between a 1-thread and an
//! 8-thread run.
//!
//! ## Composing with a server worker pool
//!
//! A serving layer that already runs N worker threads should hand each
//! request an intra-query degree of roughly `cores / N`
//! ([`Parallelism::auto_shared`]) so the two layers multiply to the
//! machine's capacity instead of oversubscribing it.
//!
//! ## Example
//!
//! ```
//! use hummer_par::{par_map, Parallelism};
//!
//! let xs: Vec<u64> = (0..1000).collect();
//! let seq = par_map(Parallelism::sequential(), &xs, |x| x * x);
//! let par = par_map(Parallelism::degree(4), &xs, |x| x * x);
//! assert_eq!(seq, par); // deterministic merge order
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// How many threads a parallelizable stage may use.
///
/// A degree of 1 ([`Parallelism::sequential`], also the `Default`) runs the
/// stage inline on the calling thread — no threads are spawned, no overhead
/// is paid. Higher degrees fork the work across that many scoped threads
/// and join before returning; results are merged in input order, so the
/// degree never changes *what* is computed, only how fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    degree: NonZeroUsize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// Degree 1: run inline, spawn nothing.
    pub fn sequential() -> Self {
        Parallelism {
            degree: NonZeroUsize::MIN,
        }
    }

    /// Use the given number of threads (0 is clamped to 1).
    pub fn degree(n: usize) -> Self {
        Parallelism {
            degree: NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"),
        }
    }

    /// One thread per available core
    /// ([`std::thread::available_parallelism`]; 1 if unknown).
    pub fn auto() -> Self {
        Parallelism {
            degree: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The fair per-worker share of the machine when `workers` threads
    /// already run concurrently: `max(1, cores / workers)`.
    ///
    /// This is the composition rule for a serving layer: a connection pool
    /// of N workers hands each request `auto_shared(N)` so pool × intra-query
    /// threads ≈ cores instead of N × cores.
    pub fn auto_shared(workers: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism::degree(cores / workers.max(1))
    }

    /// The configured thread count (≥ 1).
    pub fn get(&self) -> usize {
        self.degree.get()
    }

    /// Whether work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.degree.get() == 1
    }
}

/// Evenly split `len` items into at most `degree` contiguous ranges.
///
/// Every range is non-empty, ranges cover `0..len` in order, and sizes
/// differ by at most one (the first `len % chunks` ranges get the extra
/// item). Returns an empty vector for `len == 0`.
pub fn chunk_ranges(len: usize, degree: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = degree.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Apply `f` to each contiguous chunk of `items`, with at most
/// `par.get()` chunks processed on as many threads; per-chunk results come
/// back **in chunk order**.
///
/// `f` receives the chunk's offset into `items` (its first element's index)
/// and the chunk slice. This is the right shape when the worker wants to
/// batch per-thread state (e.g. local accumulators that the caller merges
/// in order) instead of paying a closure call per item. The columnar pair
/// scorer (`hummer_dupdetect::score_candidate_pairs`) composes with this
/// directly: each chunk runs the block kernel with its own scratch, and the
/// in-chunk-order merge keeps the output bit-identical to sequential.
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = chunk_ranges(items.len(), par.get());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| f(r.start, &items[r])).collect();
    }
    FORKED_THREADS.fetch_add(ranges.len() as u64, std::sync::atomic::Ordering::Relaxed);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                let chunk = &items[r.clone()];
                scope.spawn(move || f(r.start, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Process-wide count of scoped worker threads ever forked by
/// [`par_chunks`] (and everything built on it). Sequential fast paths
/// spawn nothing and count nothing.
static FORKED_THREADS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total scoped worker threads forked by this process so far — a cheap
/// gauge of how much intra-query fan-out actually happened (the server
/// exposes it as `hummer_par_forks_total`).
pub fn forked_threads_total() -> u64 {
    FORKED_THREADS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Map `f` over `items` on up to `par.get()` threads; the result vector is
/// in input order — element `i` is `f(i, &items[i])` — for any degree.
pub fn par_map_indexed<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if par.is_sequential() || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let per_chunk = par_chunks(par, items, |offset, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(k, x)| f(offset + k, x))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Map `f` over `items` on up to `par.get()` threads, preserving input
/// order. Equivalent to `items.iter().map(f).collect()` for any degree.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(par, items, |_, x| f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_clamps_to_one() {
        assert_eq!(Parallelism::degree(0).get(), 1);
        assert!(Parallelism::degree(0).is_sequential());
        assert_eq!(Parallelism::degree(8).get(), 8);
        assert!(!Parallelism::degree(8).is_sequential());
    }

    #[test]
    fn default_is_sequential() {
        assert!(Parallelism::default().is_sequential());
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::auto().get() >= 1);
    }

    #[test]
    fn auto_shared_never_zero() {
        assert!(Parallelism::auto_shared(0).get() >= 1);
        assert!(Parallelism::auto_shared(1024).get() >= 1);
        // The shares multiply to at most the machine (up to rounding).
        let workers = 4;
        let share = Parallelism::auto_shared(workers).get();
        assert!(share * workers <= Parallelism::auto().get().max(workers));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 3, 7, 100, 101] {
            for degree in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, degree);
                assert!(ranges.len() <= degree.max(1));
                let mut expected = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    expected = r.end;
                }
                assert_eq!(expected, len, "covers 0..len");
                if !ranges.is_empty() {
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(max - min <= 1, "balanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_all_degrees() {
        let xs: Vec<i64> = (0..997).collect();
        let expected: Vec<i64> = xs.iter().map(|x| x * 3 - 1).collect();
        for degree in 1..=9 {
            let got = par_map(Parallelism::degree(degree), &xs, |x| x * 3 - 1);
            assert_eq!(got, expected, "degree {degree}");
        }
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let xs = vec!["a", "b", "c", "d", "e"];
        let got = par_map_indexed(Parallelism::degree(3), &xs, |i, x| format!("{i}{x}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn par_chunks_merges_in_chunk_order() {
        let xs: Vec<usize> = (0..100).collect();
        let sums = par_chunks(Parallelism::degree(4), &xs, |offset, chunk| {
            (offset, chunk.iter().sum::<usize>())
        });
        assert_eq!(sums.len(), 4);
        // Offsets ascend — chunk order is preserved.
        for pair in sums.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        let total: usize = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u8> = Vec::new();
        assert!(par_map(Parallelism::degree(4), &xs, |x| *x).is_empty());
        assert!(par_chunks(Parallelism::degree(4), &xs, |_, c| c.len()).is_empty());
    }

    #[test]
    fn degree_larger_than_input() {
        let xs = vec![1, 2];
        assert_eq!(par_map(Parallelism::degree(64), &xs, |x| x + 1), vec![2, 3]);
    }
}
