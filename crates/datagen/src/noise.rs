//! Controlled dirt: typos, nulls, and conflicting values.
//!
//! Every injection is driven by a seeded RNG so experiments are exactly
//! reproducible.

use hummer_engine::Value;
use rand::rngs::StdRng;
use rand::Rng;

/// Apply one random character-level edit (substitute / delete / insert /
/// transpose) to a string. The result is guaranteed to differ from the
/// input for non-empty strings; empty strings are returned unchanged.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let mut out = chars.clone();
    let pos = rng.gen_range(0..chars.len());
    match rng.gen_range(0..4) {
        0 => {
            out[pos] = random_letter_except(rng, out[pos]);
        }
        1 => {
            out.remove(pos);
        }
        2 => {
            out.insert(pos, random_letter(rng));
        }
        _ => {
            // Transpose an adjacent *differing* pair; fall back to
            // substitution when no such pair exists (e.g. "aaa").
            let swap_at = (0..out.len().saturating_sub(1))
                .map(|k| (pos + k) % (out.len() - 1).max(1))
                .find(|&k| out[k] != out[k + 1]);
            match swap_at {
                Some(k) => out.swap(k, k + 1),
                None => out[pos] = random_letter_except(rng, out[pos]),
            }
        }
    }
    // An insert of the deleted char next to itself etc. cannot happen with
    // the constructions above, but a substitution at the only position of a
    // 1-char string may still reproduce the original via insert+delete
    // coincidences — guard explicitly.
    let result: String = out.into_iter().collect();
    if result == s {
        // Deterministic fallback: append a letter.
        let mut forced = s.to_string();
        forced.push(random_letter(rng));
        forced
    } else {
        result
    }
}

fn random_letter(rng: &mut StdRng) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

fn random_letter_except(rng: &mut StdRng, not: char) -> char {
    loop {
        let c = random_letter(rng);
        if c != not {
            return c;
        }
    }
}

/// Apply `n` independent typos.
pub fn typos(s: &str, n: usize, rng: &mut StdRng) -> String {
    let mut out = s.to_string();
    for _ in 0..n {
        out = typo(&out, rng);
    }
    out
}

/// Perturb a value to create a *conflict*: numbers shift by a small relative
/// amount (at least 1), dates shift by days, text gets 1-2 typos, booleans
/// flip. `NULL` stays `NULL`.
pub fn perturb(v: &Value, rng: &mut StdRng) -> Value {
    match v {
        Value::Null => Value::Null,
        Value::Int(i) => {
            let delta = ((i.abs() / 20).max(1)) * if rng.gen_bool(0.5) { 1 } else { -1 };
            Value::Int(i + delta)
        }
        Value::Float(f) => {
            let rel = 1.0 + rng.gen_range(-10..=10) as f64 / 100.0;
            let shifted = f * rel;
            if (shifted - f).abs() < f64::EPSILON {
                Value::Float(f + 1.0)
            } else {
                Value::Float((shifted * 100.0).round() / 100.0)
            }
        }
        Value::Bool(b) => Value::Bool(!b),
        Value::Text(s) => {
            // Two typos can cancel (swap + swap back); insist on a change.
            let mut t = typos(s, 1 + rng.gen_range(0..2), rng);
            while t == *s {
                t = typo(&t, rng);
            }
            Value::Text(t)
        }
        Value::Date(d) => {
            let mut day =
                d.day as i32 + rng.gen_range(1..=5) * if rng.gen_bool(0.5) { 1 } else { -1 };
            day = day.clamp(1, 28);
            Value::Date(hummer_engine::Date::new(d.year, d.month, day as u8).expect("clamped day"))
        }
    }
}

/// Dirty one value in place according to the given rates: with
/// `null_rate` it becomes `NULL`, else with `conflict_rate` it is perturbed,
/// else with `typo_rate` (text only) it gets one typo.
pub fn dirty_value(
    v: &Value,
    typo_rate: f64,
    null_rate: f64,
    conflict_rate: f64,
    rng: &mut StdRng,
) -> Value {
    if !v.is_null() && rng.gen_bool(null_rate.clamp(0.0, 1.0)) {
        return Value::Null;
    }
    if !v.is_null() && rng.gen_bool(conflict_rate.clamp(0.0, 1.0)) {
        return perturb(v, rng);
    }
    if let Value::Text(s) = v {
        if rng.gen_bool(typo_rate.clamp(0.0, 1.0)) {
            return Value::Text(typo(s, rng));
        }
    }
    v.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn typo_is_one_edit_operation() {
        // One typo = substitute/delete/insert (Levenshtein ≤ 1) or an
        // adjacent transposition (Levenshtein 2). A substitution may pick
        // the original letter back, so 0 is possible, never more than 2.
        let mut r = rng();
        for _ in 0..200 {
            let t = typo("john smith", &mut r);
            let d = levenshtein_local(&t, "john smith");
            assert!(d <= 2, "edit distance {d} for {t:?}");
        }
    }

    // Tiny local Levenshtein so datagen does not depend on textsim.
    fn levenshtein_local(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0; b.len() + 1];
        for (i, ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn typo_of_empty_is_empty() {
        let mut r = rng();
        assert_eq!(typo("", &mut r), "");
    }

    #[test]
    fn perturb_always_changes_non_null() {
        let mut r = rng();
        let values = [
            Value::Int(100),
            Value::Int(0),
            Value::Float(9.99),
            Value::Bool(true),
            Value::text("Berlin"),
            Value::Date(hummer_engine::Date::new(2004, 12, 26).unwrap()),
        ];
        for v in &values {
            for _ in 0..50 {
                let p = perturb(v, &mut r);
                assert_ne!(&p, v, "perturb must conflict: {v:?}");
                assert!(!p.is_null());
            }
        }
    }

    #[test]
    fn perturb_null_stays_null() {
        let mut r = rng();
        assert!(perturb(&Value::Null, &mut r).is_null());
    }

    #[test]
    fn dirty_value_rates_zero_is_identity() {
        let mut r = rng();
        let v = Value::text("stable");
        for _ in 0..20 {
            assert_eq!(dirty_value(&v, 0.0, 0.0, 0.0, &mut r), v);
        }
    }

    #[test]
    fn dirty_value_null_rate_one_nullifies() {
        let mut r = rng();
        assert!(dirty_value(&Value::Int(5), 0.0, 1.0, 0.0, &mut r).is_null());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            assert_eq!(typo("reproducible", &mut a), typo("reproducible", &mut b));
        }
    }
}
