//! # hummer-datagen — workloads, gold standards, and metrics
//!
//! The original HumMer demo ran on hand-collected data (CD shop catalogs,
//! tsunami-relief registries, student rosters) that was never published.
//! This crate synthesizes worlds with the same *properties* — duplicates
//! across autonomous sources, schematic heterogeneity, missing values, and
//! contradictions — but with a machine-checkable gold standard, which is
//! what the experiment suite in EXPERIMENTS.md evaluates against.
//!
//! * [`entities`] — deterministic clean worlds (persons, CDs, disaster
//!   records),
//! * [`noise`] — seeded typo / null / conflict injection,
//! * [`generator`] — derive heterogeneous dirty sources with known row ↔
//!   entity mapping and known attribute correspondences,
//! * [`scenarios`] — the paper's §1 demo scenarios, pre-configured,
//! * [`metrics`] — precision / recall / F1 for pairs, clusterings,
//!   ranked candidate lists, and schema correspondences.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod entities;
pub mod generator;
pub mod metrics;
pub mod noise;
pub mod scenarios;

pub use entities::EntityKind;
pub use generator::{generate, DirtyConfig, GeneratedSource, GeneratedWorld, SourceSpec};
pub use metrics::{
    cluster_pair_metrics, correspondence_metrics, pair_metrics, precision_at_k, PrecisionRecall,
};
pub use noise::{dirty_value, perturb, typo, typos};
