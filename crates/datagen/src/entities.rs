//! Deterministic entity synthesis: the clean "real world" that dirty
//! sources are derived from.
//!
//! The original demo used hand-collected data (CD shops, tsunami records,
//! student rosters) that was never published; we synthesize worlds with the
//! same shape and a *known gold standard* (see DESIGN.md §3).

use hummer_engine::{row, Date, Row, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// First-name pool (mixed origins, as in the demo's multinational data).
pub const FIRST_NAMES: [&str; 40] = [
    "John", "Mary", "Peter", "Anna", "Michael", "Laura", "Thomas", "Julia", "Robert", "Emma",
    "Daniel", "Sophie", "Andreas", "Marie", "Stefan", "Clara", "Martin", "Eva", "Paul", "Lena",
    "Markus", "Nina", "Felix", "Sarah", "Jonas", "Mia", "Lukas", "Hannah", "David", "Laila",
    "Karim", "Aisha", "Ravi", "Priya", "Chen", "Mei", "Kenji", "Yuki", "Carlos", "Lucia",
];

/// Last-name pool.
pub const LAST_NAMES: [&str; 40] = [
    "Smith",
    "Jones",
    "Miller",
    "Brown",
    "Wilson",
    "Taylor",
    "Davies",
    "Evans",
    "Thomas",
    "Johnson",
    "Schmidt",
    "Mueller",
    "Schneider",
    "Fischer",
    "Weber",
    "Meyer",
    "Wagner",
    "Becker",
    "Hoffmann",
    "Koch",
    "Richter",
    "Klein",
    "Wolf",
    "Neumann",
    "Schwarz",
    "Krueger",
    "Hartmann",
    "Lange",
    "Werner",
    "Krause",
    "Lehmann",
    "Maier",
    "Huber",
    "Fuchs",
    "Vogel",
    "Keller",
    "Frank",
    "Berger",
    "Winkler",
    "Roth",
];

/// City pool.
pub const CITIES: [&str; 24] = [
    "Berlin",
    "Hamburg",
    "Munich",
    "Cologne",
    "Frankfurt",
    "Stuttgart",
    "Dresden",
    "Leipzig",
    "Hannover",
    "Bremen",
    "Potsdam",
    "Rostock",
    "Kiel",
    "Erfurt",
    "Mainz",
    "Trondheim",
    "Oslo",
    "Bergen",
    "Vienna",
    "Zurich",
    "Basel",
    "Prague",
    "Amsterdam",
    "Antwerp",
];

/// Band/artist pool for the CD-shopping scenario.
pub const ARTISTS: [&str; 20] = [
    "The Beatles",
    "Pink Floyd",
    "Led Zeppelin",
    "Queen",
    "The Rolling Stones",
    "David Bowie",
    "Radiohead",
    "Nirvana",
    "Miles Davis",
    "John Coltrane",
    "Johnny Cash",
    "Bob Dylan",
    "Aretha Franklin",
    "Stevie Wonder",
    "Kraftwerk",
    "Daft Punk",
    "Portishead",
    "Bjork",
    "Herbie Hancock",
    "The Clash",
];

/// Album-title word pools (combined to synthesize distinct titles).
pub const TITLE_HEADS: [&str; 16] = [
    "Abbey", "Dark", "Electric", "Golden", "Silent", "Midnight", "Crimson", "Blue", "Wild",
    "Broken", "Endless", "Neon", "Paper", "Velvet", "Hollow", "Distant",
];

/// Album-title tails.
pub const TITLE_TAILS: [&str; 16] = [
    "Road", "Side", "Dreams", "Hours", "Echoes", "Mirror", "Garden", "Harvest", "River", "Signals",
    "Horizon", "Letters", "Shadows", "Machine", "Stations", "Fields",
];

/// Music genres.
pub const GENRES: [&str; 8] = [
    "Rock",
    "Pop",
    "Jazz",
    "Electronic",
    "Folk",
    "Blues",
    "Classical",
    "Soul",
];

/// Villages for the disaster-registry scenario.
pub const VILLAGES: [&str; 16] = [
    "Kalmunai",
    "Batticaloa",
    "Trincomalee",
    "Galle",
    "Matara",
    "Hambantota",
    "Ampara",
    "Mullaitivu",
    "Banda Aceh",
    "Meulaboh",
    "Calang",
    "Sigli",
    "Phuket",
    "Khao Lak",
    "Nagapattinam",
    "Cuddalore",
];

/// Status values for disaster records.
pub const STATUSES: [&str; 4] = ["missing", "found", "hospitalized", "evacuated"];

/// Hospital names for disaster records.
pub const HOSPITALS: [&str; 8] = [
    "General Hospital",
    "St. Mary Clinic",
    "Red Cross Station",
    "Field Hospital 3",
    "Coastal Medical Center",
    "District Clinic",
    "Mobile Unit A",
    "Mercy Hospital",
];

/// A kind of real-world entity to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// People: `Name, City, Age, Phone` (students, customers).
    Person,
    /// CDs in a shop catalog: `Artist, Title, Year, Price, Genre`.
    Cd,
    /// Disaster-registry records:
    /// `Name, Village, Status, Hospital, LastSeen`.
    DisasterRecord,
}

impl EntityKind {
    /// The canonical (preferred-schema) column names of this kind.
    pub fn columns(&self) -> &'static [&'static str] {
        match self {
            EntityKind::Person => &["Name", "City", "Age", "Phone"],
            EntityKind::Cd => &["Artist", "Title", "Year", "Price", "Genre"],
            EntityKind::DisasterRecord => &["Name", "Village", "Status", "Hospital", "LastSeen"],
        }
    }

    /// Synthesize the clean row of entity `id` using `rng` for the
    /// free attributes. Entity identity (the fields that make two records
    /// "the same object") is a deterministic function of `id`, so
    /// duplicates of entity `id` agree on identity fields by construction.
    pub fn make_row(&self, id: usize, rng: &mut StdRng) -> Row {
        match self {
            EntityKind::Person => {
                let first = FIRST_NAMES[id % FIRST_NAMES.len()];
                let last = LAST_NAMES[(id / FIRST_NAMES.len() + id) % LAST_NAMES.len()];
                let city = CITIES[(id * 7 + 3) % CITIES.len()];
                let age = 18 + ((id * 13) % 60) as i64;
                let phone = format!(
                    "+49-{:03}-{:05}",
                    (id * 37) % 900 + 100,
                    (id * 971) % 90000 + 10000
                );
                row![format!("{first} {last}"), city, age, phone]
            }
            EntityKind::Cd => {
                let artist = ARTISTS[id % ARTISTS.len()];
                let title = format!(
                    "{} {}",
                    TITLE_HEADS[(id / ARTISTS.len()) % TITLE_HEADS.len()],
                    TITLE_TAILS[(id * 11 + 5) % TITLE_TAILS.len()]
                );
                let year = 1960 + ((id * 17) % 45) as i64;
                let price = 5.0 + rng.gen_range(0..2500) as f64 / 100.0;
                let genre = GENRES[(id * 3) % GENRES.len()];
                row![artist, title, year, price, genre]
            }
            EntityKind::DisasterRecord => {
                let first = FIRST_NAMES[(id * 3 + 1) % FIRST_NAMES.len()];
                let last = LAST_NAMES[(id * 5 + 2) % LAST_NAMES.len()];
                let village = VILLAGES[id % VILLAGES.len()];
                let status = STATUSES[rng.gen_range(0..STATUSES.len())];
                let hospital = if status == "hospitalized" {
                    Value::text(HOSPITALS[id % HOSPITALS.len()])
                } else {
                    Value::Null
                };
                let day = (id % 27 + 1) as u8;
                let date = Date::new(2004, 12, day).expect("valid day");
                Row::from_values(vec![
                    Value::text(format!("{first} {last}")),
                    Value::text(village),
                    Value::text(status),
                    hospital,
                    Value::Date(date),
                ])
            }
        }
    }

    /// Build the clean table of `n` entities. Row index = entity id.
    pub fn clean_table(&self, n: usize, rng: &mut StdRng) -> Table {
        let rows: Vec<Row> = (0..n).map(|id| self.make_row(id, rng)).collect();
        Table::from_rows(self.kind_name(), self.columns(), rows)
            .expect("generated rows match schema")
    }

    /// A display name for the kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EntityKind::Person => "Persons",
            EntityKind::Cd => "CDs",
            EntityKind::DisasterRecord => "DisasterRecords",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_tables_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            EntityKind::Person,
            EntityKind::Cd,
            EntityKind::DisasterRecord,
        ] {
            let t = kind.clean_table(50, &mut rng);
            assert_eq!(t.len(), 50);
            assert_eq!(t.schema().len(), kind.columns().len());
        }
    }

    #[test]
    fn identity_fields_deterministic_per_id() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999); // different rng
        let a = EntityKind::Person.make_row(7, &mut r1);
        let b = EntityKind::Person.make_row(7, &mut r2);
        // Person rows are fully deterministic in id.
        assert_eq!(a, b);
    }

    #[test]
    fn cd_identity_fields_stable_but_price_random() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = EntityKind::Cd.make_row(3, &mut r1);
        let b = EntityKind::Cd.make_row(3, &mut r2);
        assert_eq!(a[0], b[0]); // artist
        assert_eq!(a[1], b[1]); // title
        assert_eq!(a[2], b[2]); // year
                                // price differs between shops — that's the point of the scenario
    }

    #[test]
    fn entities_are_mostly_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = EntityKind::Person.clean_table(200, &mut rng);
        let mut names: Vec<String> = t.rows().iter().map(|r| r[0].to_string()).collect();
        names.sort();
        names.dedup();
        assert!(
            names.len() > 150,
            "name collisions too frequent: {}",
            names.len()
        );
    }

    #[test]
    fn disaster_hospital_consistent_with_status() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = EntityKind::DisasterRecord.clean_table(100, &mut rng);
        let status = t.resolve("Status").unwrap();
        let hospital = t.resolve("Hospital").unwrap();
        for r in t.rows() {
            if r[status] == Value::text("hospitalized") {
                assert!(!r[hospital].is_null());
            } else {
                assert!(r[hospital].is_null());
            }
        }
    }
}
