//! The paper's demo scenarios (§1), as ready-made generated worlds:
//!
//! * **CD shopping** — "a customer shopping for CDs might want to supply
//!   only the different sites to search on": three shop catalogs with
//!   different field labels (web sites "use different labels for data
//!   fields"), overlapping stock, and diverging prices.
//! * **Disaster registry** — the tsunami scenario: "data about damages,
//!   missing persons, hospital treatments etc. is often collected multiple
//!   times (causing duplicates) at different levels of detail (causing
//!   schematic heterogeneity) and with different levels of accuracy
//!   (causing data conflicts)".
//! * **Student rosters** — the running EE/CS example of §2.1.
//! * **Cleansing service** — "users of such a service simply submit sets of
//!   heterogeneous and dirty data and receive a consistent and clean data
//!   set in response": a single table with internal duplicates.

use crate::entities::EntityKind;
use crate::generator::{generate, DirtyConfig, GeneratedWorld, SourceSpec};

/// Three CD-store catalogs with heterogeneous labels and conflicting
/// prices/years. `entities` ≈ catalog size; the stores cover ~70 % of the
/// stock each, so most CDs appear in at least two shops.
pub fn cd_shopping(entities: usize, seed: u64) -> GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Cd,
        entities,
        sources: vec![
            SourceSpec::plain("CDPalace"),
            SourceSpec::plain("DiscountDiscs")
                .rename("Artist", "Interpret")
                .rename("Title", "AlbumTitle")
                .rename("Price", "Cost")
                .shuffled(),
            SourceSpec::plain("MusicMile")
                .rename("Title", "Album")
                .rename("Year", "Released")
                .drop("Genre")
                .shuffled(),
        ],
        coverage: 0.7,
        typo_rate: 0.08,
        null_rate: 0.04,
        // Prices differ between shops almost always; handled by generic
        // conflict rate — high to reflect the scenario.
        conflict_rate: 0.25,
        dup_within_source: 0.0,
        seed,
    })
}

/// Three disaster-relief registries at different levels of detail.
pub fn disaster_registry(entities: usize, seed: u64) -> GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::DisasterRecord,
        entities,
        sources: vec![
            // Field team: full detail.
            SourceSpec::plain("FieldTeam"),
            // Hospital list: different labels, no village.
            SourceSpec::plain("HospitalList")
                .rename("Name", "Patient")
                .rename("Status", "Condition")
                .rename("LastSeen", "Admitted")
                .drop("Village")
                .shuffled(),
            // Relatives' reports: coarse, error-prone.
            SourceSpec::plain("MissingReports")
                .rename("Name", "Person")
                .rename("Village", "LastLocation")
                .drop("Hospital")
                .drop("Status"),
        ],
        coverage: 0.6,
        typo_rate: 0.15, // names written down in a hurry
        null_rate: 0.1,
        conflict_rate: 0.12,
        dup_within_source: 0.1, // the same person reported twice
        seed,
    })
}

/// The paper's EE/CS student rosters (§2.1): two departments, overlapping
/// students, ages that disagree ("assuming students only get older").
pub fn student_rosters(entities: usize, seed: u64) -> GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Person,
        entities,
        sources: vec![
            SourceSpec::plain("EE_Student").drop("Phone"),
            SourceSpec::plain("CS_Students")
                .rename("Name", "FullName")
                .rename("Age", "Years")
                .drop("Phone")
                .shuffled(),
        ],
        coverage: 0.6,
        typo_rate: 0.05,
        null_rate: 0.03,
        conflict_rate: 0.15, // ages recorded in different semesters
        dup_within_source: 0.0,
        seed,
    })
}

/// The two-source person world of the scalability experiments (exp7,
/// exp13), as a named preset: source B relabels `Name`/`City` and shuffles
/// its columns, so the pipeline has real schema matching to do at scale.
/// With `coverage: 0.7` the union holds ≈ `1.4 × entities` rows, so
/// `entities = 7200` produces a ≈ 10 000-row union — an order of magnitude
/// past the paper-scale scenario worlds, which is what the columnar hot
/// path is sized for.
pub fn person_scale(entities: usize, seed: u64) -> GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Person,
        entities,
        sources: vec![
            SourceSpec::plain("A"),
            SourceSpec::plain("B")
                .rename("Name", "FullName")
                .rename("City", "Town")
                .shuffled(),
        ],
        coverage: 0.7,
        typo_rate: 0.08,
        null_rate: 0.05,
        conflict_rate: 0.1,
        dup_within_source: 0.0,
        seed,
    })
}

/// A single dirty customer table for the online-cleansing-service scenario:
/// one source, heavy internal duplication and noise.
pub fn cleansing_service(entities: usize, seed: u64) -> GeneratedWorld {
    generate(&DirtyConfig {
        kind: EntityKind::Person,
        entities,
        sources: vec![SourceSpec::plain("CustomerDump")],
        coverage: 1.0,
        typo_rate: 0.12,
        null_rate: 0.08,
        conflict_rate: 0.1,
        dup_within_source: 0.5,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_shopping_shape() {
        let w = cd_shopping(60, 1);
        assert_eq!(w.sources.len(), 3);
        assert!(w.sources[1].table.schema().contains("Interpret"));
        assert!(w.sources[2].table.schema().contains("Released"));
        assert!(!w.sources[2].table.schema().contains("Genre"));
        assert!(!w.gold_union_pairs().is_empty());
    }

    #[test]
    fn disaster_registry_shape() {
        let w = disaster_registry(80, 2);
        assert_eq!(w.sources.len(), 3);
        assert!(w.sources[1].table.schema().contains("Patient"));
        assert!(!w.sources[1].table.schema().contains("Village"));
        assert!(w.sources[2].table.schema().contains("LastLocation"));
    }

    #[test]
    fn student_rosters_shape() {
        let w = student_rosters(40, 3);
        assert_eq!(w.sources.len(), 2);
        assert_eq!(w.sources[0].table.name(), "EE_Student");
        assert!(w.sources[1].table.schema().contains("FullName"));
        assert!(w.sources[1].table.schema().contains("Years"));
    }

    #[test]
    fn cleansing_service_has_internal_dups() {
        let w = cleansing_service(50, 4);
        assert_eq!(w.sources.len(), 1);
        assert!(w.sources[0].table.len() > 55, "expect ~50% extra dups");
    }

    #[test]
    fn person_scale_shape() {
        let w = person_scale(100, 7);
        assert_eq!(w.sources.len(), 2);
        assert_eq!(w.sources[0].table.name(), "A");
        assert!(w.sources[1].table.schema().contains("FullName"));
        assert!(w.sources[1].table.schema().contains("Town"));
        // coverage 0.7 per source → union ≈ 1.4 × entities.
        let union: usize = w.sources.iter().map(|s| s.table.len()).sum();
        assert!((120..=160).contains(&union), "union was {union}");
    }

    #[test]
    fn scenarios_deterministic() {
        let a = cd_shopping(30, 9);
        let b = cd_shopping(30, 9);
        for (x, y) in a.sources.iter().zip(&b.sources) {
            assert_eq!(x.table.rows(), y.table.rows());
        }
    }
}
