//! Evaluation metrics: precision / recall / F1 for duplicate pairs,
//! clusterings, and schema correspondences.

use std::collections::HashSet;

/// Precision and recall (with derived F1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// True positives / predicted positives (1.0 when nothing predicted).
    pub precision: f64,
    /// True positives / gold positives (1.0 when gold is empty).
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn normalize(pairs: &[(usize, usize)]) -> HashSet<(usize, usize)> {
    pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect()
}

/// Pair-level precision/recall of predicted duplicate pairs against gold
/// pairs (order within a pair is ignored).
pub fn pair_metrics(predicted: &[(usize, usize)], gold: &[(usize, usize)]) -> PrecisionRecall {
    let p = normalize(predicted);
    let g = normalize(gold);
    let tp = p.intersection(&g).count() as f64;
    PrecisionRecall {
        precision: if p.is_empty() {
            1.0
        } else {
            tp / p.len() as f64
        },
        recall: if g.is_empty() {
            1.0
        } else {
            tp / g.len() as f64
        },
    }
}

/// Pairwise precision/recall of a clustering: every pair of rows sharing a
/// predicted cluster id is a predicted pair, every pair sharing a gold id a
/// gold pair. The standard pairwise clustering metric used in duplicate
/// detection.
pub fn cluster_pair_metrics(predicted_ids: &[usize], gold_ids: &[usize]) -> PrecisionRecall {
    assert_eq!(
        predicted_ids.len(),
        gold_ids.len(),
        "clusterings must label the same rows"
    );
    let pairs_of = |ids: &[usize]| -> HashSet<(usize, usize)> {
        let mut by: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
        for (row, &id) in ids.iter().enumerate() {
            by.entry(id).or_default().push(row);
        }
        let mut out = HashSet::new();
        for members in by.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    out.insert((members[i], members[j]));
                }
            }
        }
        out
    };
    let p = pairs_of(predicted_ids);
    let g = pairs_of(gold_ids);
    let tp = p.intersection(&g).count() as f64;
    PrecisionRecall {
        precision: if p.is_empty() {
            1.0
        } else {
            tp / p.len() as f64
        },
        recall: if g.is_empty() {
            1.0
        } else {
            tp / g.len() as f64
        },
    }
}

/// Precision among the first `k` ranked pairs (DUMAS's "the most similar
/// tuples are in fact duplicates" claim, measured). Returns 1.0 for `k = 0`.
pub fn precision_at_k(ranked: &[(usize, usize)], gold: &[(usize, usize)], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let g = normalize(gold);
    let taken: Vec<(usize, usize)> = ranked
        .iter()
        .take(k)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    if taken.is_empty() {
        return 1.0;
    }
    let tp = taken.iter().filter(|p| g.contains(p)).count();
    tp as f64 / taken.len() as f64
}

/// Correspondence-level precision/recall: predicted `(label, canonical)`
/// rename pairs against the gold mapping (both case-insensitive).
pub fn correspondence_metrics(
    predicted: &[(String, String)],
    gold: &[(String, String)],
) -> PrecisionRecall {
    let norm = |pairs: &[(String, String)]| -> HashSet<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_ascii_lowercase(), b.to_ascii_lowercase()))
            .collect()
    };
    let p = norm(predicted);
    let g = norm(gold);
    let tp = p.intersection(&g).count() as f64;
    PrecisionRecall {
        precision: if p.is_empty() {
            1.0
        } else {
            tp / p.len() as f64
        },
        recall: if g.is_empty() {
            1.0
        } else {
            tp / g.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let gold = vec![(0, 1), (2, 3)];
        let m = pair_metrics(&gold, &gold);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn order_within_pair_ignored() {
        let m = pair_metrics(&[(1, 0)], &[(0, 1)]);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn partial_prediction() {
        let gold = vec![(0, 1), (2, 3), (4, 5)];
        let pred = vec![(0, 1), (6, 7)];
        let m = pair_metrics(&pred, &gold);
        assert_eq!(m.precision, 0.5);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let m = pair_metrics(&[], &[]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1(), 1.0);
        let m2 = pair_metrics(&[], &[(0, 1)]);
        assert_eq!(m2.precision, 1.0);
        assert_eq!(m2.recall, 0.0);
        assert_eq!(m2.f1(), 0.0);
    }

    #[test]
    fn cluster_metrics_match_pair_view() {
        // predicted: {0,1},{2},{3}; gold: {0,1,2},{3}
        let m = cluster_pair_metrics(&[0, 0, 1, 2], &[0, 0, 0, 1]);
        // predicted pairs: (0,1); gold pairs: (0,1),(0,2),(1,2)
        assert_eq!(m.precision, 1.0);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same rows")]
    fn cluster_metrics_len_mismatch_panics() {
        cluster_pair_metrics(&[0], &[0, 1]);
    }

    #[test]
    fn precision_at_k_prefix() {
        let gold = vec![(0, 1), (2, 3)];
        let ranked = vec![(0, 1), (2, 3), (4, 5), (6, 7)];
        assert_eq!(precision_at_k(&ranked, &gold, 1), 1.0);
        assert_eq!(precision_at_k(&ranked, &gold, 2), 1.0);
        assert_eq!(precision_at_k(&ranked, &gold, 4), 0.5);
        assert_eq!(precision_at_k(&ranked, &gold, 0), 1.0);
        // k beyond ranked length uses what exists.
        assert_eq!(precision_at_k(&ranked[..2], &gold, 10), 1.0);
    }

    #[test]
    fn correspondence_case_insensitive() {
        let pred = vec![("fullname".to_string(), "NAME".to_string())];
        let gold = vec![("FullName".to_string(), "Name".to_string())];
        let m = correspondence_metrics(&pred, &gold);
        assert_eq!(m.f1(), 1.0);
    }
}
