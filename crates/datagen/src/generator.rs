//! The dirty-source generator: derive heterogeneous, duplicate-ridden,
//! conflicting sources from a clean entity table, keeping the gold standard.
//!
//! This reproduces the *properties* the HumMer demo data exercised
//! (paper §1): identical real-world objects represented in several sources
//! (duplicates), under different schemata (heterogeneity), with missing
//! values and contradictions (conflicts) — but, unlike the demo's
//! hand-collected data, with machine-checkable ground truth.

use crate::entities::EntityKind;
use crate::noise::dirty_value;
use hummer_engine::{Row, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Schema variation of one generated source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Source alias (table name).
    pub name: String,
    /// Renames applied to canonical columns: `(canonical, source_label)`.
    pub renames: Vec<(String, String)>,
    /// Canonical columns this source does not carry at all.
    pub dropped: Vec<String>,
    /// Shuffle the column order (schematic heterogeneity beyond labels).
    pub shuffle_columns: bool,
}

impl SourceSpec {
    /// A source that keeps the canonical schema.
    pub fn plain(name: impl Into<String>) -> Self {
        SourceSpec {
            name: name.into(),
            renames: Vec::new(),
            dropped: Vec::new(),
            shuffle_columns: false,
        }
    }

    /// Add a rename.
    pub fn rename(mut self, canonical: impl Into<String>, label: impl Into<String>) -> Self {
        self.renames.push((canonical.into(), label.into()));
        self
    }

    /// Drop a canonical column.
    pub fn drop(mut self, canonical: impl Into<String>) -> Self {
        self.dropped.push(canonical.into());
        self
    }

    /// Shuffle column order.
    pub fn shuffled(mut self) -> Self {
        self.shuffle_columns = true;
        self
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DirtyConfig {
    /// What kind of entities populate the world.
    pub kind: EntityKind,
    /// Number of distinct real-world entities.
    pub entities: usize,
    /// The sources to derive.
    pub sources: Vec<SourceSpec>,
    /// Fraction of entities each source covers (1.0 = every entity in every
    /// source; 0.5 = each source samples half the world).
    pub coverage: f64,
    /// Probability a text field in a source row gets a typo.
    pub typo_rate: f64,
    /// Probability a field is nulled out.
    pub null_rate: f64,
    /// Probability a field is perturbed into a contradicting value.
    pub conflict_rate: f64,
    /// Expected extra duplicates *within* a source per entity (0.0 = none;
    /// 0.3 = ~30 % of rows have an extra in-source duplicate).
    pub dup_within_source: f64,
    /// RNG seed — everything is deterministic in this.
    pub seed: u64,
}

impl DirtyConfig {
    /// A sensible two-source default for `kind` with mild dirt.
    pub fn two_sources(kind: EntityKind, entities: usize, seed: u64) -> Self {
        DirtyConfig {
            kind,
            entities,
            sources: vec![SourceSpec::plain("SourceA"), SourceSpec::plain("SourceB")],
            coverage: 0.7,
            typo_rate: 0.1,
            null_rate: 0.05,
            conflict_rate: 0.1,
            dup_within_source: 0.0,
            seed,
        }
    }
}

/// One generated source table plus its row-level gold labels.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// The dirty table (schema per its [`SourceSpec`]).
    pub table: Table,
    /// Gold entity id of each row.
    pub entity_ids: Vec<usize>,
}

/// A generated world: the clean truth, the dirty sources, and the gold
/// schema mapping.
#[derive(Debug, Clone)]
pub struct GeneratedWorld {
    /// The clean entity table (canonical schema; row index = entity id).
    pub clean: Table,
    /// The derived sources.
    pub sources: Vec<GeneratedSource>,
    /// Gold attribute correspondences per source:
    /// `gold_renames[i]` maps this source's label → canonical name.
    pub gold_renames: Vec<HashMap<String, String>>,
}

impl GeneratedWorld {
    /// Gold duplicate pairs *within the outer union* of all sources, as
    /// index pairs into the concatenated row space (source 0 rows first).
    /// Two rows are gold-duplicates iff they share an entity id.
    pub fn gold_union_pairs(&self) -> Vec<(usize, usize)> {
        let ids = self.gold_union_entity_ids();
        let mut by_entity: HashMap<usize, Vec<usize>> = HashMap::new();
        for (row, &e) in ids.iter().enumerate() {
            by_entity.entry(e).or_default().push(row);
        }
        let mut pairs = Vec::new();
        for members in by_entity.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    pairs.push((members[i], members[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Gold entity id per row of the outer union (sources concatenated in
    /// order).
    pub fn gold_union_entity_ids(&self) -> Vec<usize> {
        self.sources
            .iter()
            .flat_map(|s| s.entity_ids.iter().copied())
            .collect()
    }
}

/// Generate a dirty world.
pub fn generate(cfg: &DirtyConfig) -> GeneratedWorld {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let clean = cfg.kind.clean_table(cfg.entities, &mut rng);
    let canonical: Vec<String> = clean
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();

    let mut sources = Vec::with_capacity(cfg.sources.len());
    let mut gold_renames = Vec::with_capacity(cfg.sources.len());

    for spec in &cfg.sources {
        // Which entities does this source cover?
        let mut covered: Vec<usize> = (0..cfg.entities)
            .filter(|_| rng.gen_bool(cfg.coverage.clamp(0.0, 1.0)))
            .collect();
        // Guarantee a non-trivial overlap sample even at low coverage.
        if covered.is_empty() && cfg.entities > 0 {
            covered.push(rng.gen_range(0..cfg.entities));
        }

        // Column layout for this source.
        let mut kept: Vec<usize> = (0..canonical.len())
            .filter(|&i| {
                !spec
                    .dropped
                    .iter()
                    .any(|d| d.eq_ignore_ascii_case(&canonical[i]))
            })
            .collect();
        if spec.shuffle_columns {
            kept.shuffle(&mut rng);
        }
        let label_of = |canon: &str| -> String {
            spec.renames
                .iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(canon))
                .map(|(_, l)| l.clone())
                .unwrap_or_else(|| canon.to_string())
        };
        let labels: Vec<String> = kept.iter().map(|&i| label_of(&canonical[i])).collect();
        let gold: HashMap<String, String> = kept
            .iter()
            .zip(&labels)
            .map(|(&i, l)| (l.clone(), canonical[i].clone()))
            .collect();

        // Rows: dirty copies of the covered entities (+ in-source dups).
        let mut rows: Vec<Row> = Vec::new();
        let mut entity_ids: Vec<usize> = Vec::new();
        for &e in &covered {
            let copies = 1 + usize::from(rng.gen_bool(cfg.dup_within_source.clamp(0.0, 1.0)));
            for _ in 0..copies {
                let clean_row = &clean.rows()[e];
                let values: Vec<Value> = kept
                    .iter()
                    .map(|&i| {
                        dirty_value(
                            &clean_row[i],
                            cfg.typo_rate,
                            cfg.null_rate,
                            cfg.conflict_rate,
                            &mut rng,
                        )
                    })
                    .collect();
                rows.push(Row::from_values(values));
                entity_ids.push(e);
            }
        }

        let table =
            Table::from_rows(spec.name.clone(), &labels, rows).expect("generated schema is valid");
        sources.push(GeneratedSource { table, entity_ids });
        gold_renames.push(gold);
    }

    GeneratedWorld {
        clean,
        sources,
        gold_renames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> GeneratedWorld {
        let cfg = DirtyConfig {
            kind: EntityKind::Person,
            entities: 50,
            sources: vec![
                SourceSpec::plain("A"),
                SourceSpec::plain("B")
                    .rename("Name", "FullName")
                    .rename("City", "Town")
                    .drop("Phone")
                    .shuffled(),
            ],
            coverage: 0.8,
            typo_rate: 0.1,
            null_rate: 0.05,
            conflict_rate: 0.1,
            dup_within_source: 0.2,
            seed: 42,
        };
        generate(&cfg)
    }

    #[test]
    fn deterministic_in_seed() {
        let a = world();
        let b = world();
        assert_eq!(a.sources[0].table.rows(), b.sources[0].table.rows());
        assert_eq!(a.sources[1].table.rows(), b.sources[1].table.rows());
    }

    #[test]
    fn renames_and_drops_applied() {
        let w = world();
        let b = &w.sources[1].table;
        assert!(b.schema().contains("FullName"));
        assert!(b.schema().contains("Town"));
        assert!(!b.schema().contains("Name"));
        assert!(!b.schema().contains("Phone"));
        // Gold mapping points back to canonical names.
        assert_eq!(w.gold_renames[1].get("FullName").unwrap(), "Name");
        assert_eq!(w.gold_renames[1].get("Town").unwrap(), "City");
    }

    #[test]
    fn entity_ids_track_rows() {
        let w = world();
        for s in &w.sources {
            assert_eq!(s.table.len(), s.entity_ids.len());
            for &e in &s.entity_ids {
                assert!(e < 50);
            }
        }
    }

    #[test]
    fn in_source_duplicates_generated() {
        let w = world();
        let ids = &w.sources[0].entity_ids;
        let mut seen = std::collections::HashSet::new();
        let dups = ids.iter().filter(|e| !seen.insert(**e)).count();
        assert!(
            dups > 0,
            "dup_within_source=0.2 should create in-source dups"
        );
    }

    #[test]
    fn gold_union_pairs_are_consistent() {
        let w = world();
        let ids = w.gold_union_entity_ids();
        let pairs = w.gold_union_pairs();
        for (i, j) in &pairs {
            assert_eq!(ids[*i], ids[*j]);
            assert!(i < j);
        }
        // Every cross-source repeat shows up as at least one pair.
        let n0 = w.sources[0].table.len();
        let any_cross = pairs.iter().any(|&(i, j)| i < n0 && j >= n0);
        assert!(any_cross, "80% coverage must give cross-source duplicates");
    }

    #[test]
    fn zero_noise_copies_are_clean() {
        let cfg = DirtyConfig {
            typo_rate: 0.0,
            null_rate: 0.0,
            conflict_rate: 0.0,
            dup_within_source: 0.0,
            coverage: 1.0,
            ..DirtyConfig::two_sources(EntityKind::Person, 10, 7)
        };
        let w = generate(&cfg);
        for s in &w.sources {
            assert_eq!(s.table.len(), 10);
            for (row, &e) in s.table.rows().iter().zip(&s.entity_ids) {
                assert_eq!(row, &w.clean.rows()[e]);
            }
        }
    }

    #[test]
    fn coverage_bounds_row_count() {
        let cfg = DirtyConfig {
            coverage: 0.5,
            ..DirtyConfig::two_sources(EntityKind::Cd, 200, 11)
        };
        let w = generate(&cfg);
        for s in &w.sources {
            assert!(
                s.table.len() > 50 && s.table.len() < 150,
                "{}",
                s.table.len()
            );
        }
    }

    #[test]
    fn empty_world() {
        let cfg = DirtyConfig {
            entities: 0,
            ..DirtyConfig::two_sources(EntityKind::Person, 0, 1)
        };
        let w = generate(&cfg);
        assert!(w.clean.is_empty());
        for s in &w.sources {
            assert!(s.table.is_empty());
        }
        assert!(w.gold_union_pairs().is_empty());
    }
}
