//! A minimal HTTP/1.1 request reader and response writer.
//!
//! Covers exactly what the fusion service's wire protocol needs: request
//! line + headers + `Content-Length` bodies, keep-alive connections, and
//! plain (unchunked) responses. No TLS, no chunked encoding, no pipelining
//! beyond serial keep-alive — the loadgen client and `curl` are the target
//! audience.

use crate::error::{Result, ServerError};
use std::io::{BufRead, Write};

/// Upper bound on an accepted body (64 MiB) — a CSV upload beyond this is
/// almost certainly a mistake, and the limit keeps a single connection from
/// exhausting memory.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 128;

/// Upper bound on one request/header line. `Content-Length` alone caps the
/// body; without this, a peer streaming bytes with no newline would grow a
/// `read_line` String without bound.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Upper bound on a whole request head (request line + headers) for the
/// incremental parser — a peer that never sends the blank line cannot grow
/// a connection buffer past this.
pub const MAX_HEAD_BYTES: usize = 2 * MAX_LINE_BYTES;

/// `read_line` with a hard length cap (the terminating newline may sit at
/// the cap boundary; anything longer is a 400).
fn read_line_capped<R: BufRead>(stream: &mut R, out: &mut String) -> Result<usize> {
    let n = std::io::Read::take(&mut *stream, MAX_LINE_BYTES as u64 + 1).read_line(out)?;
    if n > MAX_LINE_BYTES {
        return Err(ServerError::BadRequest(format!(
            "line exceeds the {MAX_LINE_BYTES}-byte limit"
        )));
    }
    Ok(n)
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `PUT`, …).
    pub method: String,
    /// Path component, percent-decoding *not* applied (table names are
    /// plain identifiers), query string stripped.
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (case-insensitive) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// The body as UTF-8, or a 400 error.
    pub fn body_utf8(&self) -> Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServerError::BadRequest("request body is not valid UTF-8".into()))
    }
}

/// Parse `GET /path?query HTTP/1.1` into `(method, path)` — method
/// uppercased, query string stripped (the protocol carries parameters in
/// bodies).
fn parse_request_line(line: &str) -> Result<(String, String)> {
    if line.is_empty() {
        return Err(ServerError::BadRequest("empty request line".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServerError::BadRequest("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ServerError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ServerError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ServerError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok((method, path))
}

/// Parse one `Name: value` header line into the lowercased-name pair.
fn parse_header_line(h: &str) -> Result<(String, String)> {
    let (name, value) = h
        .split_once(':')
        .ok_or_else(|| ServerError::BadRequest(format!("malformed header `{h}`")))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// The declared body length, validated against [`MAX_BODY_BYTES`].
fn content_length(headers: &[(String, String)]) -> Result<usize> {
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ServerError::BadRequest(format!("bad Content-Length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(ServerError::BadRequest(format!(
            "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    Ok(length)
}

/// Read one request from the stream. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive end-of-life).
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Option<Request>> {
    let mut line = String::new();
    if read_line_capped(stream, &mut line)? == 0 {
        return Ok(None);
    }
    let (method, path) = parse_request_line(line.trim_end_matches(['\r', '\n']))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if read_line_capped(stream, &mut h)? == 0 {
            return Err(ServerError::BadRequest(
                "connection closed mid-headers".into(),
            ));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ServerError::BadRequest("too many headers".into()));
        }
        headers.push(parse_header_line(h)?);
    }

    let mut body = vec![0u8; content_length(&headers)?];
    stream.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Where the request head ends in `buf`: the index just past the blank
/// line. Accepts `\r\n\r\n` and the tolerant bare `\n\n` form.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        match buf[i] {
            b'\n' => {
                if buf.get(i + 1) == Some(&b'\n') {
                    return Some(i + 2);
                }
                if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                    return Some(i + 3);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Incremental parse for the event loop: try to extract one complete
/// request from the front of a connection buffer.
///
/// * `Ok(Some((request, consumed)))` — a full request occupied the first
///   `consumed` bytes; the caller drains them and keeps the rest (the
///   start of a pipelined successor).
/// * `Ok(None)` — the buffer holds a valid *prefix*; read more bytes.
/// * `Err` — the prefix can never become a valid request (oversized head,
///   malformed line, bad `Content-Length`, …); answer 400 and close.
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>> {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(ServerError::BadRequest(format!(
                    "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
                )));
            }
            return Ok(None);
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServerError::BadRequest("request head is not valid UTF-8".into()))?;

    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| ServerError::BadRequest("empty request line".into()))?;
    if request_line.len() > MAX_LINE_BYTES {
        return Err(ServerError::BadRequest(format!(
            "line exceeds the {MAX_LINE_BYTES}-byte limit"
        )));
    }
    let (method, path) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for h in lines {
        if h.is_empty() {
            break;
        }
        if h.len() > MAX_LINE_BYTES {
            return Err(ServerError::BadRequest(format!(
                "line exceeds the {MAX_LINE_BYTES}-byte limit"
            )));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ServerError::BadRequest("too many headers".into()));
        }
        headers.push(parse_header_line(h)?);
    }

    let body_len = content_length(&headers)?;
    let consumed = head_end + body_len;
    if buf.len() < consumed {
        return Ok(None); // body still arriving
    }
    let body = buf[head_end..consumed].to_vec();
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
        },
        consumed,
    )))
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Ask the client to close the connection after this response.
    pub close: bool,
    /// Additional response headers as `(name, value)` pairs (e.g.
    /// `x-hummer-trace`). Names go out as given; keep them lowercase.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A binary response (`application/octet-stream`) — the shard wire
    /// format travels this way.
    pub fn octets(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response (Prometheus exposition uses this).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// An attached extra header's value, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.extra_headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The reason phrase for a status code.
    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Internal Server Error",
        }
    }

    /// Serialize this response to wire bytes (head + body in one buffer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Writing to a Vec cannot fail.
        write_response(&mut out, self).expect("serializing into memory");
        out
    }
}

/// Serialize a response onto the stream. Head and body go out in a single
/// write: two small segments would trip Nagle + delayed-ACK stalls
/// (~40–200 ms per request) on keep-alive connections.
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        Response::reason(response.status),
        response.content_type,
        response.body.len(),
        if response.close {
            "close"
        } else {
            "keep-alive"
        },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut message = Vec::with_capacity(head.len() + response.body.len());
    message.extend_from_slice(head.as_bytes());
    message.extend_from_slice(&response.body);
    stream.write_all(&message)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let req = parse("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nBODY")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"BODY");
        assert!(!req.wants_close());
    }

    #[test]
    fn strips_query_string_and_uppercases_method() {
        let req = parse("get /tables?verbose=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/tables");
    }

    #[test]
    fn connection_close_detected() {
        let req = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.status(), 400, "{bad:?} → {e}");
        }
    }

    #[test]
    fn endless_header_line_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status(), 400);
        let raw = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "b".repeat(MAX_LINE_BYTES + 10)
        );
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn oversized_body_rejected() {
        let e = parse(&format!(
            "PUT /tables/x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ))
        .unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn truncated_body_is_io_error() {
        let e = parse("POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, ServerError::Io(_)));
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_serialize_before_body() {
        let mut out = Vec::new();
        let r = Response::text(200, "ok").with_header("x-hummer-trace", "00000000deadbeef");
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-hummer-trace: 00000000deadbeef\r\n"));
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..head_end].contains("x-hummer-trace"));
        assert!(text.ends_with("ok"));
        assert!(text.contains("content-type: text/plain; version=0.0.4; charset=utf-8\r\n"));
    }

    #[test]
    fn try_parse_incremental_prefixes() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODYGET /h";
        // Every proper prefix up to the full request is "keep reading".
        for cut in 0..47 {
            assert!(
                try_parse_request(&raw[..cut]).unwrap().is_none(),
                "cut {cut}"
            );
        }
        // The full request parses and reports exactly its own bytes as
        // consumed, leaving the pipelined successor in place.
        let (req, consumed) = try_parse_request(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"BODY");
        assert_eq!(consumed, 47);
        assert_eq!(&raw[consumed..], b"GET /h");
    }

    #[test]
    fn try_parse_tolerates_bare_lf() {
        let (req, consumed) = try_parse_request(b"GET /tables HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/tables");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(consumed, 30);
    }

    #[test]
    fn try_parse_rejects_unbounded_head() {
        // No blank line and past the head cap: the prefix can never become
        // a request, so the parser errs instead of asking for more bytes.
        let junk = vec![b'a'; MAX_HEAD_BYTES + 1];
        let e = try_parse_request(&junk).unwrap_err();
        assert_eq!(e.status(), 400);
        // Under the cap the verdict is "keep reading".
        assert!(try_parse_request(&junk[..MAX_HEAD_BYTES])
            .unwrap()
            .is_none());
    }

    #[test]
    fn try_parse_rejects_oversized_line_and_body() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "b".repeat(MAX_LINE_BYTES + 10)
        );
        assert_eq!(try_parse_request(raw.as_bytes()).unwrap_err().status(), 400);
        let raw = format!(
            "PUT /tables/x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(try_parse_request(raw.as_bytes()).unwrap_err().status(), 400);
        assert_eq!(
            try_parse_request(b"GARBAGE\r\n\r\n").unwrap_err().status(),
            400
        );
    }

    #[test]
    fn new_reason_phrases_serialize() {
        let mut out = Vec::new();
        let mut r = Response::json(408, "{}");
        r.close = true;
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
        assert!(text.contains("connection: close"));
        let bytes = Response::json(503, "{}").to_bytes();
        assert!(bytes.starts_with(b"HTTP/1.1 503 Service Unavailable\r\n"));
    }

    #[test]
    fn body_utf8_guard() {
        let req = Request {
            method: "POST".into(),
            path: "/query".into(),
            headers: vec![],
            body: vec![0xFF, 0xFE],
        };
        assert_eq!(req.body_utf8().unwrap_err().status(), 400);
    }
}
