//! The nonblocking event-loop serving path.
//!
//! `std`-only readiness handling: the listener and every accepted socket
//! run in nonblocking mode, and each worker thread sweeps its own set of
//! per-connection state machines — accept a burst, pump every connection
//! one step, sleep ~1 ms only when nothing moved. With no `epoll` binding
//! available (this workspace forbids non-`std` dependencies), the sweep
//! *is* the readiness mechanism; at the north-star scale of hundreds of
//! connections per worker the sweep cost is dwarfed by request execution.
//!
//! ## Per-connection state machine
//!
//! ```text
//!             bytes arrive            request complete
//!   idle ───────────────▶ reading ─────────────────▶ executing
//!    ▲                      │  ▲                         │
//!    │   response flushed   │  │ pipelined bytes         │ response bytes
//!    └────────── writing ◀──┼──┴─────────────────────────┘
//!                  │        │
//!                  ▼        ▼
//!                closed (error / timeout / EOF / `connection: close`)
//! ```
//!
//! * **reading** — header/body bytes accumulate in the connection buffer;
//!   [`crate::http::try_parse_request`] decides `complete` / `need more` /
//!   `never valid` (400). A started request that stalls past the read
//!   deadline is answered `408` and closed; a connection idle past the
//!   idle deadline is reclaimed silently.
//! * **executing** — the request runs *inline* on the worker through the
//!   same `execute_request` as the blocking path (panic
//!   containment included: a panicked handler yields `500` + close and the
//!   slot is recycled).
//! * **writing** — the serialized response drains through nonblocking
//!   writes; on completion the connection returns to reading (keep-alive)
//!   or closes.
//!
//! One request is served per connection per sweep, so a pipelining client
//! cannot starve its neighbors.
//!
//! ## Admission control
//!
//! A shared live-connection counter caps concurrently open sockets
//! (`ServerConfig::max_connections`). Arrivals beyond the cap get an
//! immediate `503` with `Retry-After: 1` and are closed — overload
//! degrades into fast, explicit rejections instead of unbounded queueing.
//!
//! ## Shutdown
//!
//! The shutdown flag stops accepting; idle connections close immediately,
//! in-flight requests finish and flush; each worker exits once its set is
//! empty.

use crate::error::ServerError;
use crate::http::{try_parse_request, write_response, Response};
use crate::server::{execute_request, HummerServer, ShutdownHandle};
use crate::service::FusionService;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connections accepted per worker per sweep before yielding to pumping —
/// bounds accept-side latency under a connection storm without starving
/// established connections.
const ACCEPT_BURST: usize = 32;

/// How long a worker parks when a full sweep made no progress.
const PARK: Duration = Duration::from_millis(1);

/// Read chunk size per pump step.
const READ_CHUNK: usize = 16 * 1024;

/// Event-loop tuning, copied out of the server config.
#[derive(Debug, Clone, Copy)]
struct Options {
    max_connections: usize,
    read_timeout: Duration,
    idle_timeout: Duration,
}

/// Was the transient error a "try again later" (nonblocking readiness)?
fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted)
}

/// Serve `server` with the event loop until shutdown; returns after every
/// worker drained its connections.
pub(crate) fn run(server: HummerServer) -> std::io::Result<()> {
    let HummerServer {
        listener,
        service,
        threads,
        shutdown,
        local_addr,
        max_connections,
        read_timeout,
        idle_timeout,
        ..
    } = server;
    listener.set_nonblocking(true)?;
    let listener = Arc::new(listener);
    let options = Options {
        max_connections,
        read_timeout,
        idle_timeout,
    };
    let live = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..threads.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let live = Arc::clone(&live);
            std::thread::Builder::new()
                .name(format!("hummer-event-{i}"))
                .spawn(move || {
                    worker_loop(&listener, &service, &shutdown, local_addr, &live, options)
                })
                .expect("spawn event worker")
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// One worker: accept a burst, pump every owned connection, park briefly
/// when idle.
fn worker_loop(
    listener: &TcpListener,
    service: &Arc<FusionService>,
    shutdown: &Arc<AtomicBool>,
    local_addr: std::net::SocketAddr,
    live: &AtomicUsize,
    options: Options,
) {
    let handle = ShutdownHandle::from_parts(local_addr, Arc::clone(shutdown));
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        let shutting_down = shutdown.load(Ordering::SeqCst);
        let mut progress = false;

        if !shutting_down {
            for _ in 0..ACCEPT_BURST {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        // Reserve a slot; over the cap → fast 503.
                        if live.fetch_add(1, Ordering::SeqCst) >= options.max_connections {
                            live.fetch_sub(1, Ordering::SeqCst);
                            service.metrics().record_overload_reject();
                            reject_overloaded(stream, service);
                            continue;
                        }
                        match Conn::adopt(stream, options, service) {
                            Some(conn) => conns.push(conn),
                            None => {
                                live.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                    }
                    Err(ref e) if would_block(e) => break,
                    Err(_) => break, // transient accept failure
                }
            }
        }

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            match conns[i].pump(service, &handle, now, &mut scratch, shutting_down) {
                Pump::Keep { moved } => {
                    progress |= moved;
                    i += 1;
                }
                Pump::Close => {
                    progress = true;
                    conns.swap_remove(i).finish(service);
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        if shutting_down && conns.is_empty() {
            return;
        }
        if !progress {
            std::thread::sleep(PARK);
        }
    }
}

/// Refuse an over-cap connection: blocking write of `503` +
/// `Retry-After`, then drop. The socket was accepted from a nonblocking
/// listener, so flip it to blocking with a short timeout for the one
/// write — portable regardless of whether nonblocking was inherited.
fn reject_overloaded(stream: TcpStream, service: &FusionService) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut r = Response::json(
        503,
        "{\"error\":\"server is at its connection limit\",\"status\":503}",
    );
    r.close = true;
    let r = r.with_header("retry-after", "1");
    // Overload rejects get an accept-time trace id too: the connection never
    // reaches dispatch, but the client's error is still correlatable.
    let r = crate::server::finish_rejected(
        service,
        r,
        service.tracer().allocate_trace_id(),
        Duration::ZERO,
    );
    let _ = write_response(&mut stream, &r);
}

/// What the sweep should do with a connection after one pump.
enum Pump {
    /// Keep the connection; `moved` reports whether any byte or state
    /// transition happened (drives the park heuristic).
    Keep { moved: bool },
    /// Remove and drop the connection, releasing its slot.
    Close,
}

/// I/O state of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// Draining a serialized response.
    Writing,
}

/// One connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// When the current activity expires: read deadline while a request is
    /// in flight, idle deadline between requests, write deadline while
    /// draining.
    deadline: Instant,
    /// A request has started arriving (first byte seen, not yet answered).
    in_request: bool,
    /// Close once `outbuf` drains.
    close_after_write: bool,
    /// Peer EOF observed (half-close): serve what is buffered, then close.
    eof: bool,
    options: Options,
    /// Current phase label for the conn-state histograms.
    phase: &'static str,
    phase_since: Instant,
    /// Trace id allocated at accept time, so a request rejected before
    /// dispatch (408/400) is still traceable via `X-Hummer-Trace`.
    pretrace: Option<u64>,
}

impl Conn {
    /// Wrap a fresh socket; `None` if it cannot be made nonblocking.
    fn adopt(stream: TcpStream, options: Options, service: &FusionService) -> Option<Conn> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        let now = Instant::now();
        Some(Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            state: ConnState::Reading,
            deadline: now + options.idle_timeout,
            in_request: false,
            close_after_write: false,
            eof: false,
            options,
            phase: "idle",
            phase_since: now,
            pretrace: service.tracer().allocate_trace_id(),
        })
    }

    /// Finish a pre-dispatch rejection: stamp the accept-time trace id onto
    /// the response and account it under the `rejected` endpoint label. The
    /// latency charged is the time spent in the current phase (how long the
    /// doomed request was allowed to dawdle).
    fn reject(&self, service: &FusionService, response: Response, now: Instant) -> Response {
        crate::server::finish_rejected(
            service,
            response,
            self.pretrace,
            now.saturating_duration_since(self.phase_since),
        )
    }

    /// Record time spent in the current phase and enter a new one.
    fn set_phase(&mut self, service: &FusionService, phase: &'static str, now: Instant) {
        if self.phase != phase {
            service
                .metrics()
                .record_conn_state(self.phase, now.saturating_duration_since(self.phase_since));
            self.phase = phase;
            self.phase_since = now;
        }
    }

    /// Flush the current phase's residency on close.
    fn finish(mut self, service: &FusionService) {
        let now = Instant::now();
        self.set_phase(service, "closed", now);
    }

    /// One step of the state machine.
    fn pump(
        &mut self,
        service: &Arc<FusionService>,
        shutdown: &ShutdownHandle,
        now: Instant,
        scratch: &mut [u8],
        shutting_down: bool,
    ) -> Pump {
        match self.state {
            ConnState::Reading => self.pump_read(service, shutdown, now, scratch, shutting_down),
            ConnState::Writing => self.pump_write(service, now),
        }
    }

    fn pump_read(
        &mut self,
        service: &Arc<FusionService>,
        shutdown: &ShutdownHandle,
        now: Instant,
        scratch: &mut [u8],
        shutting_down: bool,
    ) -> Pump {
        let mut moved = false;
        // Drain whatever the socket has ready (bounded by the sweep's one
        // chunk) unless the peer already half-closed.
        if !self.eof {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.eof = true;
                    moved = true;
                }
                Ok(n) => {
                    if !self.in_request {
                        self.in_request = true;
                        self.deadline = now + self.options.read_timeout;
                        self.set_phase(service, "reading", now);
                    }
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    moved = true;
                }
                Err(ref e) if would_block(e) => {}
                Err(_) => return Pump::Close, // transport error
            }
        }

        // Serve at most one buffered request per sweep (fairness across
        // the worker's connections).
        if !self.inbuf.is_empty() {
            match try_parse_request(&self.inbuf) {
                Ok(Some((request, consumed))) => {
                    self.inbuf.drain(..consumed);
                    self.set_phase(service, "executing", now);
                    let mut response = execute_request(&request, service, shutdown);
                    response.close = response.close
                        || request.wants_close()
                        || self.eof
                        || shutdown.is_requested();
                    // `start_write`'s transition out of "executing" records
                    // the handler's residency in the conn-state histogram.
                    return self.start_write(service, &response, Instant::now());
                }
                Ok(None) => {} // valid prefix: keep reading
                Err(e) => {
                    // Protocol junk can never become a request: 400, close.
                    let r = crate::server::error_response(&e, true);
                    let r = self.reject(service, r, now);
                    return self.start_write(service, &r, now);
                }
            }
        }

        if self.eof {
            if self.inbuf.is_empty() && !self.in_request {
                return Pump::Close; // clean close between requests
            }
            // Half-close mid-request: the prefix can never complete.
            let e = ServerError::BadRequest("connection half-closed mid-request".into());
            let r = crate::server::error_response(&e, true);
            let r = self.reject(service, r, now);
            return self.start_write(service, &r, now);
        }

        if now >= self.deadline {
            if self.in_request {
                // A started request stalled (slowloris or a dead peer).
                service.metrics().record_read_timeout();
                let mut r = Response::json(
                    408,
                    "{\"error\":\"request did not arrive in time\",\"status\":408}",
                );
                r.close = true;
                let r = self.reject(service, r, now);
                return self.start_write(service, &r, now);
            }
            service.metrics().record_idle_reclaim();
            return Pump::Close; // silent idle reclamation
        }

        if shutting_down && !self.in_request && self.inbuf.is_empty() {
            return Pump::Close; // idle at shutdown: no more requests coming
        }

        Pump::Keep { moved }
    }

    /// Serialize `response` and enter the writing state (flushing what the
    /// socket will take right away).
    fn start_write(&mut self, service: &FusionService, response: &Response, now: Instant) -> Pump {
        self.outbuf = response.to_bytes();
        self.out_pos = 0;
        self.close_after_write = response.close;
        self.in_request = false;
        self.state = ConnState::Writing;
        self.deadline = now + self.options.read_timeout;
        self.set_phase(service, "writing", now);
        self.pump_write(service, now)
    }

    fn pump_write(&mut self, service: &FusionService, now: Instant) -> Pump {
        let mut moved = false;
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => return Pump::Close,
                Ok(n) => {
                    self.out_pos += n;
                    moved = true;
                }
                Err(ref e) if would_block(e) => {
                    if now >= self.deadline {
                        return Pump::Close; // peer stopped draining
                    }
                    return Pump::Keep { moved };
                }
                Err(_) => return Pump::Close,
            }
        }
        let _ = self.stream.flush();
        if self.close_after_write {
            return Pump::Close;
        }
        // Back to keep-alive; pipelined bytes already buffered count as a
        // started request for deadline purposes.
        self.outbuf.clear();
        self.out_pos = 0;
        self.state = ConnState::Reading;
        self.in_request = !self.inbuf.is_empty();
        self.deadline = now
            + if self.in_request {
                self.options.read_timeout
            } else {
                self.options.idle_timeout
            };
        self.set_phase(
            service,
            if self.in_request { "reading" } else { "idle" },
            now,
        );
        Pump::Keep { moved: true }
    }
}
