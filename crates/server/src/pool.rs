//! A fixed-size worker thread pool over an `mpsc` channel.
//!
//! The accept loop hands each connection to the pool; a worker runs the
//! whole keep-alive conversation. Dropping the pool closes the channel and
//! joins the workers after they finish in-flight jobs — which is exactly the
//! graceful-shutdown semantics the server needs.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (minimum 1).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("hummer-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the recv; run the job outside.
                        let job = match receiver.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => break, // channel closed: shut down
                        };
                        // A panicking job (bad request data hitting an
                        // unexpected code path) must not shrink the pool —
                        // that would silently degrade capacity until the
                        // server stops serving.
                        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                            eprintln!("hummer-worker: job panicked; worker continues");
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job; it runs on the first free worker.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            // Send fails only if all workers died; jobs are best-effort then.
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // closes the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs_concurrently_and_joins_on_drop() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins: all queued jobs must have completed
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("boom"));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool); // joins: the post-panic job must still have run
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_size_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
