//! `promlint` — lint a Prometheus text exposition.
//!
//! ```text
//! promlint FILE        # or `-` / no argument for stdin
//! ```
//!
//! Exit 0 with a one-line summary when the exposition is clean; exit 1
//! listing every violation otherwise. `scripts/server_smoke.sh` runs this
//! against a live `/metrics` scrape so format regressions fail CI.

use hummer_server::promlint::lint;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let text = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promlint: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        Some("--help") | Some("-h") => {
            println!("usage: promlint [FILE|-]  (lints a Prometheus text exposition)");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promlint: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let report = lint(&text);
    if report.ok() {
        println!(
            "promlint: OK — {} samples, {} families, {} exemplars",
            report.samples, report.families, report.exemplars
        );
        ExitCode::SUCCESS
    } else {
        for e in &report.errors {
            eprintln!("promlint: {e}");
        }
        eprintln!(
            "promlint: {} error(s) in {} samples / {} families",
            report.errors.len(),
            report.samples,
            report.families
        );
        ExitCode::FAILURE
    }
}
