//! `loadgen` — drive a running `hummer-serve` with generated scenario
//! worlds and report throughput/latency plus the server's cache hit rate.
//!
//! ```text
//! loadgen --addr HOST:PORT [--connections N] [--requests N]
//!         [--worlds N] [--entities N] [--seed N] [--update-ratio F]
//!         [--coordinator-mode]
//! ```
//!
//! Each world is one of the paper's demo scenarios (CD shopping, disaster
//! registry, student rosters, cleansing service) with tables uploaded under
//! world-prefixed names; the request mix fans `FUSE BY` queries over all
//! worlds round-robin, so a warm server answers almost everything from the
//! prepared-pipeline cache. With `--update-ratio F` (0 < F < 1) that
//! fraction of requests becomes `POST /tables/{name}/delta` row updates,
//! exercising delta ingestion — and the incremental cache-upgrade path —
//! under concurrent queries.
//!
//! Against a `--coordinator` server, pass `--coordinator-mode` to extend
//! the report with scatter-gather visibility: per-request shard fan-out
//! (from the `X-Hummer-Shards` response header) and, from the server's
//! `/metrics.json`, per-worker call counts with p50/p99 latency plus
//! retry/fallback totals.

use hummer_server::loadgen::{
    http_request, run_load, scenario_worlds, update_pool_for_worlds, upload_world, LoadConfig,
};
use hummer_server::Json;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--connections N] [--requests N] \
         [--worlds N] [--entities N] [--seed N] [--update-ratio F] \
         [--coordinator-mode]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::new();
    let mut connections = 8usize;
    let mut requests = 200usize;
    let mut worlds_n = 4usize;
    let mut entities = 60usize;
    let mut seed = 2005u64;
    let mut update_ratio = 0.0f64;
    let mut coordinator_mode = false;
    fn next_num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        match args.next().and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => usage(),
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--connections" => connections = next_num(&mut args),
            "--requests" => requests = next_num(&mut args),
            "--worlds" => worlds_n = next_num(&mut args),
            "--entities" => entities = next_num(&mut args),
            "--seed" => seed = next_num(&mut args),
            "--update-ratio" => update_ratio = next_num(&mut args),
            "--coordinator-mode" => coordinator_mode = true,
            _ => usage(),
        }
    }
    if addr.is_empty() || !(0.0..1.0).contains(&update_ratio) {
        usage();
    }

    match http_request(&addr, "GET", "/healthz", "text/plain", b"") {
        Ok((200, _)) => {}
        other => {
            eprintln!("loadgen: server at {addr} not healthy: {other:?}");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("loadgen: generating {worlds_n} scenario worlds ({entities} entities each)");
    let worlds = scenario_worlds(worlds_n, entities, seed);
    let mut sql_pool = Vec::new();
    for (i, world) in worlds.iter().enumerate() {
        match upload_world(&addr, &format!("w{i}"), world) {
            Ok(sql) => sql_pool.push(sql),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (update_every, update_pool) = if update_ratio > 0.0 {
        let prefixed: Vec<(String, &hummer_datagen::GeneratedWorld)> = worlds
            .iter()
            .enumerate()
            .map(|(i, w)| (format!("w{i}"), w))
            .collect();
        (
            (1.0 / update_ratio).round().max(1.0) as usize,
            update_pool_for_worlds(&prefixed),
        )
    } else {
        (0, Vec::new())
    };
    if update_every > 0 {
        eprintln!(
            "loadgen: mixed workload — every {update_every}th request is a delta update \
             ({} delta bodies)",
            update_pool.len()
        );
    }

    eprintln!("loadgen: {connections} connections x {requests} total requests");
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        connections,
        requests,
        sql_pool,
        update_every,
        update_pool,
    });

    let metrics = http_request(&addr, "GET", "/metrics.json", "text/plain", b"")
        .ok()
        .filter(|(status, _)| *status == 200)
        .and_then(|(_, body)| Json::parse(&body).ok());
    let cache = metrics.as_ref().and_then(|m| {
        m.get("prepared_cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
    });
    let store = metrics.as_ref().and_then(|m| m.get("store").cloned());

    // One render path for plain and coordinator mode (the shared section —
    // including the slowest-10 trace ids — cannot diverge between them).
    print!("{}", report.render(coordinator_mode));
    match cache {
        Some(rate) => println!("cache_hit_rate   {rate:.3}"),
        None => println!("cache_hit_rate   n/a"),
    }
    // Durable mode: surface the server's store counters so a logged-catalog
    // run is distinguishable from an in-memory one in the report.
    match store {
        Some(store) => {
            let int = |key: &str| store.get(key).and_then(Json::as_i64).unwrap_or(0);
            println!("durable_mode     yes");
            println!(
                "store_fsync      {}",
                match store.get("fsync") {
                    Some(Json::Bool(true)) => "on",
                    Some(Json::Bool(false)) => "off",
                    _ => "n/a",
                }
            );
            println!("wal_bytes        {}", int("wal_bytes"));
            println!("wal_records      {}", int("wal_records"));
            println!("snapshots        {}", int("snapshots_written"));
            println!(
                "recovery_ms      {:.3}",
                store
                    .get("recovery_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            );
        }
        None => println!("durable_mode     no"),
    }
    // Coordinator-mode extras that need the server's /metrics.json:
    // worker-level latency/retry/fallback counters as the coordinator
    // recorded them (the client-side scatter tallies came from `render`).
    if coordinator_mode {
        match metrics.as_ref().and_then(|m| m.get("shard")) {
            Some(shard) => {
                let int = |key: &str| shard.get(key).and_then(Json::as_i64).unwrap_or(0);
                println!("worker_requests  {}", int("worker_requests"));
                println!("worker_retries   {}", int("worker_retries"));
                println!("worker_fallbacks {}", int("worker_fallbacks"));
                println!("worker_errors    {}", int("worker_errors"));
                if let Some(workers) = shard.get("workers").and_then(Json::as_array) {
                    for (i, w) in workers.iter().enumerate() {
                        let f = |key: &str| w.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                        println!(
                            "worker_{i:02}        {} calls={} p50={:.3} ms p99={:.3} ms",
                            w.get("worker").and_then(Json::as_str).unwrap_or("?"),
                            w.get("calls").and_then(Json::as_i64).unwrap_or(0),
                            f("p50_ms"),
                            f("p99_ms"),
                        );
                    }
                }
            }
            None => println!("shard_metrics    n/a"),
        }
    }
    if report.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
