//! `hummer-serve` — run the HumMer fusion query service.
//!
//! ```text
//! hummer-serve [--addr HOST:PORT] [--threads N] [--par N] [--cache N]
//!              [--narrow-schemas] [--preload NAME=FILE.csv ...]
//!              [--blocking] [--max-connections N] [--read-timeout-ms N]
//!              [--idle-timeout-ms N]
//!              [--coordinator workers=HOST:PORT,HOST:PORT] [--shards K]
//!              [--worker-timeout-ms N] [--no-fallback]
//!              [--data-dir DIR] [--compact-after-bytes N] [--no-fsync]
//!              [--group-commit-window-us N]
//! ```
//!
//! With `--coordinator workers=…` the server becomes a scatter-gather
//! coordinator: cold prepares plan up to `--shards` shards and scatter
//! them to the listed workers (each a plain `hummer-serve` holding the
//! same tables is fine — the shard request carries its own data). Worker
//! failures retry once on a distinct worker and then fall back to local
//! execution, so answers stay byte-identical; `--no-fallback` turns the
//! fallback off to surface 502/504 instead.
//!
//! `--par N` sets the intra-query thread budget each request may use for
//! the parallelizable pipeline stages (matching, detection, fusion).
//! Without the flag the budget defaults to the fair per-worker share of
//! the machine, `max(1, cores / --threads)`, so worker pool × intra-query
//! threads ≈ cores instead of oversubscribing.
//!
//! With `--data-dir` the catalog is durable: the server recovers every
//! registered source (content versions included) from the directory on
//! boot and write-ahead-logs each mutation before acking it. A `kill -9`'d
//! server restarted on the same directory serves byte-identical fusion
//! results.
//!
//! The process serves until `POST /shutdown` arrives, then drains in-flight
//! requests and exits 0.

use hummer_server::{
    CoordinatorOptions, EventLog, HummerServer, ObsConfig, Parallelism, ServerConfig,
    ServiceConfig, ServingMode,
};
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "\
usage: hummer-serve [OPTIONS]

Serving:
  --addr HOST:PORT        bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --threads N             worker threads (default 4). Event mode: each worker
                          multiplexes many connections; blocking mode: one
                          connection per worker
  --par N                 intra-query thread budget per request
                          (default: max(1, cores / --threads))
  --cache N               prepared-pipeline cache capacity, in source sets (default 64)
  --narrow-schemas        pipeline tuning for narrow (2-3 column) sources
  --preload NAME=FILE.csv register a CSV file before serving (repeatable)
  --blocking              serve with the legacy thread-per-connection blocking
                          path instead of the nonblocking event loop
  --max-connections N     admission cap on open connections; arrivals beyond it
                          get 503 + Retry-After (event mode; default 1024)
  --read-timeout-ms N     a started request must arrive in full within N ms or
                          the connection is answered 408 and closed
                          (event mode; default 30000)
  --idle-timeout-ms N     idle keep-alive connections are reclaimed after N ms
                          (event mode; default 60000)

Coordinator mode (see README \"Distributed fusion\"):
  --coordinator workers=HOST:PORT,HOST:PORT
                          scatter shard tasks of cold prepares to these
                          workers (each one a plain hummer-serve) and gather
                          the partials; answers stay byte-identical
  --shards K              target shard count per scatter (default 4)
  --worker-timeout-ms N   per-worker request timeout (default 30000)
  --no-fallback           fail the query with 502/504 instead of running a
                          twice-failed batch locally

Observability:
  --trace-ring N          span-ring capacity, in span records (default 65536);
                          responses carry X-Hummer-Trace and GET /trace/{id}
                          returns a request's span tree while it is in the ring
  --no-trace              disable tracing entirely (spans become no-ops;
                          /metrics histograms still record)
  --log-json PATH         append a sampled structured event log (JSON lines,
                          one event per request/delta/scatter) to PATH; the
                          sampler always keeps errors, overload rejects, and
                          the slowest decile, and counts what it drops

Durability (see README \"Durability\"):
  --data-dir DIR          persist the catalog in DIR: recover on boot, then
                          write-ahead-log every register/delta/deregister
                          before acking it (default: in-memory only)
  --compact-after-bytes N roll the WAL into a fresh snapshot once it exceeds
                          N bytes; 0 disables auto-compaction (default 8388608)
  --no-fsync              skip fsync on commit - benchmarking escape hatch;
                          survives kill -9 but not power loss (default: fsync on)
  --group-commit-window-us N
                          let the WAL commit leader linger N microseconds so
                          concurrent writers share one fsync; 0 commits
                          immediately (default 0)

  -h, --help              print this help and exit
";

fn usage() -> ! {
    eprintln!("{HELP}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut par: Option<usize> = None;
    let mut trace_ring = 65536usize;
    let mut trace = true;
    let mut preloads: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage()),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--par" => {
                par = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cache" => {
                config.service.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--narrow-schemas" => config.service.pipeline = ServiceConfig::narrow_schema().pipeline,
            "--preload" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => preloads.push((name.to_string(), path.to_string())),
                    None => usage(),
                }
            }
            "--data-dir" => {
                config.data_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--compact-after-bytes" => {
                config.store.compact_after_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-fsync" => config.store.fsync = false,
            "--group-commit-window-us" => {
                config.store.group_commit_window_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--coordinator" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let addrs = spec.strip_prefix("workers=").unwrap_or_else(|| usage());
                let workers: Vec<String> = addrs
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
                if workers.is_empty() {
                    usage();
                }
                config
                    .service
                    .coordinator
                    .get_or_insert_with(CoordinatorOptions::default)
                    .workers = workers;
            }
            "--shards" => {
                let k: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| usage());
                config
                    .service
                    .coordinator
                    .get_or_insert_with(CoordinatorOptions::default)
                    .shards = k;
            }
            "--worker-timeout-ms" => {
                let t = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage());
                config
                    .service
                    .coordinator
                    .get_or_insert_with(CoordinatorOptions::default)
                    .timeout = t;
            }
            "--no-fallback" => {
                config
                    .service
                    .coordinator
                    .get_or_insert_with(CoordinatorOptions::default)
                    .fallback_local = false;
            }
            "--blocking" => config.mode = ServingMode::Blocking,
            "--max-connections" => {
                config.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--read-timeout-ms" => {
                config.read_timeout = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage())
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage())
            }
            "--trace-ring" => {
                trace_ring = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-trace" => trace = false,
            "--log-json" => {
                let path = args.next().unwrap_or_else(|| usage());
                match EventLog::to_path(std::path::Path::new(&path)) {
                    Ok(log) => config.service.event_log = log,
                    Err(e) => {
                        eprintln!("hummer-serve: cannot open event log {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    // Compose the two thread layers: N workers x this degree ~ cores.
    config.service.pipeline.parallelism = match par {
        Some(n) => Parallelism::degree(n),
        None => Parallelism::auto_shared(config.threads.max(1)),
    };
    // Tracing is on by default — the overhead contract (exp14) keeps the
    // instrumented pipeline within 3% of bare, so the visibility is
    // effectively free; --no-trace turns spans into no-ops.
    if trace {
        config.service.pipeline.obs = ObsConfig::enabled(trace_ring.max(1));
    }

    let server = match HummerServer::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hummer-serve: cannot start on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &config.data_dir {
        let stats = server
            .service()
            .store_stats()
            .expect("durable server has store stats");
        eprintln!(
            "hummer-serve: durable catalog at {} — recovered {} table(s) in {:.1} ms \
             (generation {}, {} WAL record(s), fsync {})",
            dir.display(),
            server.service().tables().len(),
            stats.recovery_ms,
            stats.generation,
            stats.wal_records,
            if stats.fsync { "on" } else { "OFF" },
        );
    }
    // A recovered table wins over its --preload file: the file is the
    // *initial* content, and re-uploading it on every restart would
    // silently roll back acked deltas the WAL faithfully replayed.
    let recovered: Vec<String> = server
        .service()
        .tables()
        .into_iter()
        .map(|t| t.name.to_ascii_lowercase())
        .collect();
    for (name, path) in &preloads {
        if recovered.contains(&name.to_ascii_lowercase()) {
            eprintln!("hummer-serve: `{name}` recovered from the data dir; skipping preload");
            continue;
        }
        let csv = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("hummer-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match server.service().put_table(name, &csv) {
            Ok(info) => eprintln!("hummer-serve: preloaded `{name}` ({} rows)", info.rows),
            Err(e) => {
                eprintln!("hummer-serve: preload `{name}` failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(co) = &config.service.coordinator {
        eprintln!(
            "hummer-serve: coordinator mode — scattering up to {} shard(s) to [{}] \
             (timeout {} ms, local fallback {})",
            co.shards,
            co.workers.join(", "),
            co.timeout.as_millis(),
            if co.fallback_local { "on" } else { "OFF" },
        );
    }
    eprintln!(
        "hummer-serve: listening on {} ({} mode, {} workers x {} intra-query threads, \
         tracing {}); POST /shutdown to stop",
        server.local_addr(),
        match config.mode {
            ServingMode::Event => "event",
            ServingMode::Blocking => "blocking",
        },
        config.threads.max(1),
        config.service.pipeline.parallelism.get(),
        if trace {
            "on (X-Hummer-Trace + GET /trace/{id})"
        } else {
            "OFF"
        },
    );
    match server.run() {
        Ok(()) => {
            eprintln!("hummer-serve: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hummer-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
