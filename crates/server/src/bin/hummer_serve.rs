//! `hummer-serve` — run the HumMer fusion query service.
//!
//! ```text
//! hummer-serve [--addr HOST:PORT] [--threads N] [--par N] [--cache N]
//!              [--narrow-schemas] [--preload NAME=FILE.csv ...]
//! ```
//!
//! `--par N` sets the intra-query thread budget each request may use for
//! the parallelizable pipeline stages (matching, detection, fusion).
//! Without the flag the budget defaults to the fair per-worker share of
//! the machine, `max(1, cores / --threads)`, so worker pool × intra-query
//! threads ≈ cores instead of oversubscribing.
//!
//! The process serves until `POST /shutdown` arrives, then drains in-flight
//! requests and exits 0.

use hummer_server::{HummerServer, Parallelism, ServerConfig, ServiceConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: hummer-serve [--addr HOST:PORT] [--threads N] [--par N] [--cache N] \
         [--narrow-schemas] [--preload NAME=FILE.csv ...]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut par: Option<usize> = None;
    let mut preloads: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage()),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--par" => {
                par = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cache" => {
                config.service.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--narrow-schemas" => config.service.pipeline = ServiceConfig::narrow_schema().pipeline,
            "--preload" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => preloads.push((name.to_string(), path.to_string())),
                    None => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // Compose the two thread layers: N workers x this degree ~ cores.
    config.service.pipeline.parallelism = match par {
        Some(n) => Parallelism::degree(n),
        None => Parallelism::auto_shared(config.threads.max(1)),
    };

    let server = match HummerServer::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hummer-serve: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    for (name, path) in &preloads {
        let csv = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("hummer-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match server.service().put_table(name, &csv) {
            Ok(info) => eprintln!("hummer-serve: preloaded `{name}` ({} rows)", info.rows),
            Err(e) => {
                eprintln!("hummer-serve: preload `{name}` failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "hummer-serve: listening on {} ({} workers x {} intra-query threads); \
         POST /shutdown to stop",
        server.local_addr(),
        config.threads.max(1),
        config.service.pipeline.parallelism.get(),
    );
    match server.run() {
        Ok(()) => {
            eprintln!("hummer-serve: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hummer-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
