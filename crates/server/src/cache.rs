//! The prepared-pipeline cache — the server's key performance piece.
//!
//! Preparation (DUMAS schema matching, the renamed outer-union transform,
//! and duplicate detection's `objectID` annotation) dominates the cost of a
//! fusion query and depends only on the *source tables*, not on the query's
//! select list, predicates, or resolution functions. So the cache keys on
//! the ordered source-table set together with each table's content version:
//! any repeat query over the same sources skips straight to fusion + query
//! execution, and any re-upload changes a version and misses naturally.
//!
//! Eviction is LRU over a fixed capacity. Entries are `Arc`-shared so a hit
//! hands out the artifacts without copying tables under the lock.

use hummer_core::PreparedSources;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the query-ordered `(alias lowercase, content version)` list.
/// Order matters — the first source donates the preferred schema.
pub type PreparedKey = Vec<(String, u64)>;

/// Hit/miss counters (monotone; snapshot via [`PreparedCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only a stale version).
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Current entry count.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    artifacts: Arc<PreparedSources>,
    last_used: u64,
}

/// An LRU map from source-set keys to prepared artifacts.
#[derive(Debug)]
pub struct PreparedCache {
    entries: HashMap<PreparedKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PreparedCache {
    /// A cache holding at most `capacity` prepared source sets (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PreparedCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up prepared artifacts, refreshing recency on a hit.
    pub fn get(&mut self, key: &PreparedKey) -> Option<Arc<PreparedSources>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&entry.artifacts))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert artifacts under `key`, evicting the least-recently-used entry
    /// beyond capacity and any stale versions of the same source names.
    pub fn insert(&mut self, key: PreparedKey, artifacts: Arc<PreparedSources>) {
        // A new version of a source set makes all entries over the same
        // names dead weight; drop them eagerly rather than waiting for LRU.
        let names: Vec<&String> = key.iter().map(|(n, _)| n).collect();
        let stale: Vec<PreparedKey> = self
            .entries
            .keys()
            .filter(|k| *k != &key && k.iter().map(|(n, _)| n).eq(names.iter().copied()))
            .cloned()
            .collect();
        for k in stale {
            self.entries.remove(&k);
            self.evictions += 1;
        }

        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                artifacts,
                last_used: self.tick,
            },
        );
        while self.entries.len() > self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// The live entries whose key references source `name` at `version` —
    /// the entries a delta to that table can *upgrade* in place instead of
    /// invalidating. Recency is not refreshed (this is bookkeeping, not a
    /// query hit).
    pub fn entries_for_source(
        &self,
        name: &str,
        version: u64,
    ) -> Vec<(PreparedKey, Arc<PreparedSources>)> {
        self.entries
            .iter()
            .filter(|(k, _)| k.iter().any(|(n, v)| n == name && *v == version))
            .map(|(k, e)| (k.clone(), Arc::clone(&e.artifacts)))
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }

    /// Drop all entries (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_core::{prepare_tables, HummerConfig};
    use hummer_engine::table;

    fn artifacts() -> Arc<PreparedSources> {
        let t =
            table! { "A" => ["Name", "City"]; ["John Smith", "Berlin"], ["Mary Jones", "Hamburg"] };
        Arc::new(prepare_tables(&[&t], &HummerConfig::default()).unwrap())
    }

    fn key(parts: &[(&str, u64)]) -> PreparedKey {
        parts.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn miss_then_hit() {
        let mut c = PreparedCache::new(4);
        let k = key(&[("a", 1), ("b", 1)]);
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), artifacts());
        assert!(c.get(&k).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn version_bump_misses_and_supersedes() {
        let mut c = PreparedCache::new(4);
        c.insert(key(&[("a", 1)]), artifacts());
        assert!(c.get(&key(&[("a", 2)])).is_none());
        // Inserting the new version drops the stale entry for the same name
        // set instead of letting both linger.
        c.insert(key(&[("a", 2)]), artifacts());
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        assert!(c.get(&key(&[("a", 1)])).is_none());
        assert!(c.get(&key(&[("a", 2)])).is_some());
    }

    #[test]
    fn order_is_significant() {
        // (a, b) and (b, a) prepare different preferred schemas.
        let mut c = PreparedCache::new(4);
        c.insert(key(&[("a", 1), ("b", 1)]), artifacts());
        assert!(c.get(&key(&[("b", 1), ("a", 1)])).is_none());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = PreparedCache::new(2);
        c.insert(key(&[("a", 1)]), artifacts());
        c.insert(key(&[("b", 1)]), artifacts());
        assert!(c.get(&key(&[("a", 1)])).is_some()); // refresh a
        c.insert(key(&[("c", 1)]), artifacts()); // evicts b
        assert!(c.get(&key(&[("a", 1)])).is_some());
        assert!(c.get(&key(&[("b", 1)])).is_none());
        assert!(c.get(&key(&[("c", 1)])).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn entries_for_source_matches_name_and_version() {
        let mut c = PreparedCache::new(4);
        c.insert(key(&[("a", 1), ("b", 2)]), artifacts());
        c.insert(key(&[("b", 2)]), artifacts());
        c.insert(key(&[("a", 3)]), artifacts());
        let hits = c.entries_for_source("b", 2);
        assert_eq!(hits.len(), 2);
        assert!(c.entries_for_source("b", 9).is_empty());
        assert_eq!(c.entries_for_source("a", 3).len(), 1);
        // No recency refresh, no counter movement.
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = PreparedCache::new(2);
        c.insert(key(&[("a", 1)]), artifacts());
        assert!(c.get(&key(&[("a", 1)])).is_some());
        c.clear();
        assert!(c.get(&key(&[("a", 1)])).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.entries, 0);
    }
}
