//! The server's error type and its HTTP status mapping.
//!
//! Every fallible layer below the wire (socket I/O, CSV ingestion, SQL
//! parsing, pipeline execution) converts into [`ServerError`] via `From`, and
//! [`ServerError::status`] maps each variant onto the HTTP status the wire
//! protocol reports: client mistakes are 400/404/405, everything the server
//! itself broke is 500.

use crate::json::JsonError;
use hummer_core::HummerError;
use hummer_engine::EngineError;
use hummer_query::QueryError;
use std::fmt;

/// Any failure while serving a request.
#[derive(Debug)]
pub enum ServerError {
    /// Socket / transport failure (connection reset, short read, …).
    Io(std::io::Error),
    /// The client sent something unparseable: bad request line, bad CSV,
    /// bad JSON, bad SQL. → 400.
    BadRequest(String),
    /// The query referenced a table nobody uploaded. → 404.
    UnknownTable(String),
    /// No route matches the request path. → 404.
    NotFound(String),
    /// The path exists but not with this method. → 405.
    MethodNotAllowed(String),
    /// The durable catalog store failed (WAL append, snapshot, recovery).
    /// Carries file + operation context end-to-end. → 500.
    Store(hummer_store::StoreError),
    /// The server failed while executing a well-formed request. → 500.
    Internal(String),
    /// Coordinator-mode scatter failed: a remote shard worker was
    /// unreachable, errored, or timed out (after the retry, with local
    /// fallback disabled). Names the failing worker so the JSON error body
    /// identifies the culprit. → 504 on timeout, 502 otherwise.
    Coordinator {
        /// Address of the worker that failed.
        worker: String,
        /// What went wrong.
        cause: String,
        /// True when the failure was a timeout.
        timeout: bool,
    },
}

impl ServerError {
    /// The HTTP status code this error reports on the wire.
    pub fn status(&self) -> u16 {
        match self {
            ServerError::Io(_) => 500,
            ServerError::BadRequest(_) => 400,
            ServerError::UnknownTable(_) | ServerError::NotFound(_) => 404,
            ServerError::MethodNotAllowed(_) => 405,
            ServerError::Store(_) => 500,
            ServerError::Internal(_) => 500,
            ServerError::Coordinator { timeout, .. } => {
                if *timeout {
                    504
                } else {
                    502
                }
            }
        }
    }

    /// The canonical reason phrase for [`ServerError::status`].
    pub fn reason(&self) -> &'static str {
        match self.status() {
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            502 => "Bad Gateway",
            504 => "Gateway Timeout",
            _ => "Internal Server Error",
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            ServerError::NotFound(path) => write!(f, "no such resource: {path}"),
            ServerError::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            ServerError::Store(e) => write!(f, "store error: {e}"),
            ServerError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServerError::Coordinator {
                worker,
                cause,
                timeout,
            } => {
                let kind = if *timeout { "timed out" } else { "failed" };
                write!(f, "shard worker {worker} {kind}: {cause}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<hummer_store::StoreError> for ServerError {
    fn from(e: hummer_store::StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<JsonError> for ServerError {
    fn from(e: JsonError) -> Self {
        ServerError::BadRequest(e.to_string())
    }
}

/// CSV upload failures are the client's fault; anything else the engine
/// reports mid-pipeline is ours.
impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Parse(msg) => ServerError::BadRequest(format!("CSV parse error: {msg}")),
            other => ServerError::Internal(other.to_string()),
        }
    }
}

impl From<QueryError> for ServerError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Lex { .. } | QueryError::Parse { .. } | QueryError::Semantic(_) => {
                ServerError::BadRequest(e.to_string())
            }
            QueryError::UnknownTable(name) => ServerError::UnknownTable(name),
            other => ServerError::Internal(other.to_string()),
        }
    }
}

impl From<HummerError> for ServerError {
    fn from(e: HummerError) -> Self {
        match e {
            HummerError::UnknownSource(name) => ServerError::UnknownTable(name),
            HummerError::Query(q) => ServerError::from(q),
            other => ServerError::Internal(other.to_string()),
        }
    }
}

/// Worker failures surface the coordinator variant (with the failing
/// worker's address intact); everything else a shard run breaks is ours.
impl From<hummer_shard::ShardError> for ServerError {
    fn from(e: hummer_shard::ShardError) -> Self {
        match e {
            hummer_shard::ShardError::Worker {
                worker,
                cause,
                timeout,
            } => ServerError::Coordinator {
                worker,
                cause,
                timeout,
            },
            // A frame from a binary speaking another protocol version is the
            // *caller's* problem (mixed-version fleet), not an internal bug:
            // answer 400 so the peer's retry/fallback logic sees a typed,
            // non-retryable rejection instead of a generic 500.
            mismatch @ hummer_shard::ShardError::VersionMismatch { .. } => {
                ServerError::BadRequest(mismatch.to_string())
            }
            other => ServerError::Internal(other.to_string()),
        }
    }
}

/// Result alias for the server.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn status_mapping() {
        assert_eq!(ServerError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServerError::UnknownTable("t".into()).status(), 404);
        assert_eq!(ServerError::NotFound("/x".into()).status(), 404);
        assert_eq!(ServerError::MethodNotAllowed("PATCH".into()).status(), 405);
        assert_eq!(ServerError::Internal("x".into()).status(), 500);
        assert_eq!(ServerError::Io(std::io::Error::other("x")).status(), 500);
        assert_eq!(ServerError::BadRequest("x".into()).reason(), "Bad Request");
        assert_eq!(
            ServerError::Internal("x".into()).reason(),
            "Internal Server Error"
        );
    }

    #[test]
    fn from_io_preserves_source() {
        let e = ServerError::from(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"));
        assert!(matches!(e, ServerError::Io(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn query_errors_map_by_kind() {
        let parse = hummer_query::parse("SELEKT nope").unwrap_err();
        assert_eq!(ServerError::from(parse).status(), 400);
        let unknown = QueryError::UnknownTable("ghosts".into());
        let e = ServerError::from(unknown);
        assert_eq!(e.status(), 404);
        assert!(e.to_string().contains("ghosts"));
    }

    #[test]
    fn engine_parse_is_bad_request() {
        let csv_err = hummer_engine::csv::read_csv_str("T", "").unwrap_err();
        let e = ServerError::from(csv_err);
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("CSV"));
    }

    #[test]
    fn hummer_unknown_source_is_404() {
        let e = ServerError::from(HummerError::UnknownSource("x".into()));
        assert_eq!(e.status(), 404);
        let e = ServerError::from(HummerError::Config("bad".into()));
        assert_eq!(e.status(), 500);
    }

    #[test]
    fn store_errors_are_500_with_full_context() {
        let e = ServerError::from(hummer_store::StoreError::io(
            "append to",
            "/data/wal-3.log",
            std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"),
        ));
        assert_eq!(e.status(), 500);
        let msg = e.to_string();
        assert!(msg.contains("append to"), "{msg}");
        assert!(msg.contains("/data/wal-3.log"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn coordinator_errors_name_the_worker() {
        let failed = ServerError::Coordinator {
            worker: "10.0.0.7:7788".into(),
            cause: "connection refused".into(),
            timeout: false,
        };
        assert_eq!(failed.status(), 502);
        assert_eq!(failed.reason(), "Bad Gateway");
        assert!(failed.to_string().contains("10.0.0.7:7788"));

        let timed_out = ServerError::Coordinator {
            worker: "10.0.0.8:7788".into(),
            cause: "read response: timed out".into(),
            timeout: true,
        };
        assert_eq!(timed_out.status(), 504);
        assert_eq!(timed_out.reason(), "Gateway Timeout");
        assert!(timed_out.to_string().contains("timed out"));
    }

    #[test]
    fn shard_worker_error_maps_to_coordinator() {
        let e = ServerError::from(hummer_shard::ShardError::Worker {
            worker: "w1:7788".into(),
            cause: "worker answered 500".into(),
            timeout: false,
        });
        assert!(matches!(e, ServerError::Coordinator { .. }));
        assert_eq!(e.status(), 502);
        let e = ServerError::from(hummer_shard::ShardError::Wire("bad magic".into()));
        assert_eq!(e.status(), 500);
    }

    #[test]
    fn json_error_is_bad_request() {
        let e = ServerError::from(crate::json::Json::parse("{oops").unwrap_err());
        assert_eq!(e.status(), 400);
    }
}
