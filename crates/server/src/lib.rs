//! # hummer-server — HumMer as a long-lived fusion query service
//!
//! The paper's HumMer is a library plus one-shot experiment binaries; this
//! crate is the production shape the ROADMAP asks for: a multi-threaded
//! HTTP/1.1 server (`std::net` only — no external dependencies) owning a
//! shared, versioned table catalog and serving Fuse By SQL over a small
//! JSON wire protocol.
//!
//! The performance centerpiece is the **prepared-pipeline cache**
//! ([`cache`]): DUMAS schema matching, the renamed outer-union transform,
//! and duplicate detection's `objectID` annotation are keyed by the
//! (ordered) source-table set and each table's content version, so repeated
//! queries over the same sources skip straight to fusion + query execution.
//!
//! * [`service`] — the transport-independent core: catalog, cache, metrics,
//!   and the optional durable store (`hummer_store`) that write-ahead-logs
//!   every catalog mutation and recovers it on boot;
//! * [`server`] — listener, routing, graceful shutdown, and the serving
//!   mode switch ([`ServingMode`]);
//! * [`event`] — the default nonblocking event-loop serving path:
//!   per-connection state machines, read/idle timeouts, 503 admission
//!   control (the blocking worker-[`pool`] path stays selectable);
//! * [`http`] — minimal HTTP/1.1 request/response framing;
//! * [`json`] — the hand-rolled JSON writer/parser the wire protocol uses;
//! * [`error`] — [`ServerError`] with HTTP status mapping;
//! * [`metrics`] — lock-free latency histograms (`hummer_obs`), request
//!   counts, stage aggregates; exposed as Prometheus text on `GET /metrics`
//!   and JSON on `GET /metrics.json`, with per-request span trees on
//!   `GET /trace/{id}`;
//! * [`loadgen`] — the load-generating client (also a binary).
//!
//! ## In-process quickstart
//!
//! ```
//! use hummer_server::{HummerServer, ServerConfig, ServiceConfig};
//! use hummer_server::loadgen::http_request;
//!
//! let mut config = ServerConfig::default();
//! config.addr = "127.0.0.1:0".into(); // ephemeral port
//! config.service = ServiceConfig::narrow_schema();
//! let server = HummerServer::bind(config).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = server.shutdown_handle();
//! let thread = std::thread::spawn(move || server.run().unwrap());
//!
//! let (status, _) = http_request(
//!     &addr, "PUT", "/tables/People", "text/csv",
//!     b"Name,City\nJohn Smith,Berlin\nJon Smith,Berlin\n",
//! ).unwrap();
//! assert_eq!(status, 200);
//! let (status, body) = http_request(
//!     &addr, "POST", "/query", "text/plain",
//!     b"SELECT Name, City FUSE FROM People FUSE BY (objectID)",
//! ).unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"row_count\""));
//!
//! handle.shutdown();
//! thread.join().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod event;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod promlint;
pub mod server;
pub mod service;

pub use cache::{CacheStats, PreparedCache, PreparedKey};
pub use error::{Result, ServerError};
pub use hummer_core::{ObsConfig, Parallelism, Tracer};
pub use hummer_obs::{EventLog, EventRecord};
pub use hummer_store::{CatalogStore, StoreOptions, StoreStats};
pub use json::{Json, JsonError};
pub use metrics::{Metrics, MetricsSnapshot};
pub use pool::ThreadPool;
pub use server::{HummerServer, ServerConfig, ServingMode, ShutdownHandle};
pub use service::{
    parse_delta, CoordinatorOptions, DeltaApplyResult, FusionService, QueryResult, ServiceConfig,
    TableInfo,
};
