//! The long-lived HTTP server: listener, routing, graceful shutdown.
//!
//! ## Endpoints
//!
//! | method & path                | effect |
//! |------------------------------|--------|
//! | `PUT /tables/{name}`         | register/replace a table from a CSV body |
//! | `POST /tables/{name}/delta`  | apply row-level changes; *upgrades* cached pipelines in place |
//! | `DELETE /tables/{name}`      | deregister a table |
//! | `GET /tables`                | list registered tables |
//! | `POST /query`                | execute Fuse By SQL (raw text or `{"sql": …}`) |
//! | `POST /shard/execute`        | run a batch of shard tasks (binary wire format; coordinator → worker) |
//! | `GET /metrics`               | the whole registry in Prometheus text format |
//! | `GET /metrics.json`          | request counts, p50/p99 latency, stage + cache + delta + store stats as JSON |
//! | `GET /trace/{id}`            | span tree of a finished request (id from the `X-Hummer-Trace` header) |
//! | `GET /healthz`               | liveness probe |
//! | `POST /shutdown`             | graceful shutdown (finish in-flight, then exit) |
//!
//! When the service tracer is enabled (`hummer-serve` default), every
//! response carries an `X-Hummer-Trace` header naming the request's trace
//! id; `GET /trace/{id}` returns that request's span tree while it is
//! still in the ring.
//!
//! With [`ServerConfig::data_dir`] set, the catalog is durable: every
//! mutation is write-ahead-logged before it is acked, and `bind` recovers
//! the pre-crash catalog (content versions included) from the newest valid
//! snapshot plus the WAL tail.
//!
//! The accept loop hands each connection to a fixed [`ThreadPool`]; one
//! worker owns the whole keep-alive conversation. Shutdown sets a flag and
//! nudges the listener with a loopback connection so `accept` wakes; the
//! pool drains in-flight requests before `run` returns.

use crate::error::{Result, ServerError};
use crate::http::{read_request, write_response, Request, Response};
use crate::json::Json;
use crate::pool::ThreadPool;
use crate::service::{
    delta_result_to_json, metrics_to_json, metrics_to_prometheus, parse_delta,
    query_result_to_json, FusionService, ServiceConfig, TableInfo,
};
use hummer_obs::{EventRecord, Span, TraceNode, TraceTree};
use hummer_store::{CatalogStore, StoreOptions};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which I/O discipline [`HummerServer::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingMode {
    /// Nonblocking readiness-driven event loop (the default): each worker
    /// multiplexes many connections through per-connection state machines,
    /// with read/idle timeouts and 503 admission control. See the
    /// [`crate::event`] module.
    #[default]
    Event,
    /// Thread-per-connection blocking I/O: one pool worker owns the whole
    /// keep-alive conversation. Kept selectable for apples-to-apples
    /// comparisons (the exp15 identity gate runs both modes against the
    /// same catalog).
    Blocking,
}

/// Server construction parameters.
///
/// Two thread layers compose here: the worker pool (`threads`) provides
/// *inter*-query concurrency, while `service.pipeline.parallelism` is the
/// *intra*-query degree each request may fan pipeline stages out to.
/// Configure them so they multiply to roughly the machine —
/// `hummer_core::Parallelism::auto_shared(threads)` is the fair per-worker
/// share (what the `hummer-serve` binary defaults to). Both default
/// conservatively: 4 workers × sequential queries.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub threads: usize,
    /// Service (pipeline + cache) configuration, including the per-request
    /// intra-query parallelism knob.
    pub service: ServiceConfig,
    /// Durable-catalog directory. `None` (the default) keeps the catalog in
    /// memory only; `Some(dir)` recovers the catalog from `dir` on bind and
    /// write-ahead-logs every mutation before acking it.
    pub data_dir: Option<std::path::PathBuf>,
    /// Store tuning (fsync discipline, compaction threshold); only
    /// meaningful with `data_dir`.
    pub store: StoreOptions,
    /// I/O discipline: nonblocking event loop (default) or the legacy
    /// thread-per-connection blocking path.
    pub mode: ServingMode,
    /// Admission cap on concurrently open connections (event mode).
    /// Arrivals beyond the cap get `503` + `Retry-After` and are closed
    /// instead of queueing unboundedly.
    pub max_connections: usize,
    /// How long a *started* request may take to arrive in full before the
    /// connection is answered `408` and closed (event mode).
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before it is silently reclaimed (event mode).
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            service: ServiceConfig::default(),
            data_dir: None,
            store: StoreOptions::default(),
            mode: ServingMode::default(),
            max_connections: 1024,
            read_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// A handle that can stop a running server from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Assemble a handle from its parts (event workers build their own).
    pub(crate) fn from_parts(addr: SocketAddr, flag: Arc<AtomicBool>) -> ShutdownHandle {
        ShutdownHandle { addr, flag }
    }

    /// Request shutdown: set the flag and wake the acceptor.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Nudge the blocking accept; any connection (even one that is
        // immediately dropped) suffices.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The HTTP server.
#[derive(Debug)]
pub struct HummerServer {
    pub(crate) listener: TcpListener,
    pub(crate) service: Arc<FusionService>,
    pub(crate) threads: usize,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) local_addr: SocketAddr,
    pub(crate) mode: ServingMode,
    pub(crate) max_connections: usize,
    pub(crate) read_timeout: Duration,
    pub(crate) idle_timeout: Duration,
}

impl HummerServer {
    /// Bind the listener and build the shared service — recovering the
    /// catalog from [`ServerConfig::data_dir`] when one is configured. The
    /// server does not accept connections until [`HummerServer::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<HummerServer> {
        let service = match &config.data_dir {
            Some(dir) => {
                let (store, recovery) = CatalogStore::open(dir, config.store.clone())?;
                FusionService::with_store(config.service, store, recovery)
            }
            None => FusionService::new(config.service),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(HummerServer {
            listener,
            service: Arc::new(service),
            threads: config.threads,
            shutdown: Arc::new(AtomicBool::new(false)),
            local_addr,
            mode: config.mode,
            max_connections: config.max_connections.max(1),
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service (to preload tables before serving).
    pub fn service(&self) -> &Arc<FusionService> {
        &self.service
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.local_addr,
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until shutdown is requested. Returns after all workers drained
    /// their in-flight connections.
    pub fn run(self) -> std::io::Result<()> {
        match self.mode {
            ServingMode::Event => crate::event::run(self),
            ServingMode::Blocking => self.run_blocking(),
        }
    }

    /// The legacy thread-per-connection path.
    fn run_blocking(self) -> std::io::Result<()> {
        let pool = ThreadPool::new(self.threads);
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            let service = Arc::clone(&self.service);
            let shutdown = self.shutdown_handle();
            pool.execute(move || handle_connection(stream, &service, &shutdown));
        }
        drop(pool); // join workers: graceful drain
        Ok(())
    }
}

/// How often an idle worker re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serve one keep-alive connection until close, error, or shutdown.
fn handle_connection(stream: TcpStream, service: &FusionService, shutdown: &ShutdownHandle) {
    let peer_writable = stream.try_clone();
    let mut writer = match peer_writable {
        Ok(w) => w,
        Err(_) => return,
    };
    // Accept-time trace id: even a request rejected before dispatch gets
    // an `X-Hummer-Trace` header (see `finish_rejected`).
    let pretrace = service.tracer().allocate_trace_id();
    // A read timeout lets the worker notice shutdown while parked on an
    // idle keep-alive connection instead of blocking the drain forever.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        // Wait for the next request's first byte via fill_buf: a timeout
        // here consumes nothing, so polling cannot corrupt request framing.
        match reader.fill_buf() {
            Ok([]) => return, // clean close between requests
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.is_requested() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A request has started: allow a generous window for the rest of it
        // (the clone shares the socket, so this reaches the reader too).
        let _ = writer.set_read_timeout(Some(Duration::from_secs(30)));
        let started = Instant::now();
        let request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean close between requests
            Err(e) => {
                // Transport gone → nothing to answer; protocol junk → 400,
                // stamped with the accept-time trace id and accounted under
                // the `rejected` endpoint label.
                if !matches!(e, ServerError::Io(_)) {
                    let r = finish_rejected(
                        service,
                        error_response(&e, true),
                        pretrace,
                        started.elapsed(),
                    );
                    let _ = write_response(&mut writer, &r);
                }
                return;
            }
        };
        let wants_close = request.wants_close();
        let mut response = execute_request(&request, service, shutdown);
        response.close = response.close || wants_close || shutdown.is_requested();
        if write_response(&mut writer, &response).is_err() || response.close {
            return;
        }
        let _ = writer.set_read_timeout(Some(IDLE_POLL));
    }
}

/// Execute one parsed request against the service: root span, routing,
/// panic containment, trace header, request metrics. Both serving paths
/// funnel through here; transport concerns (keep-alive, when to close the
/// socket) stay with the caller — except that a panicked handler always
/// demands a close, which the returned response carries.
pub(crate) fn execute_request(
    request: &Request,
    service: &FusionService,
    shutdown: &ShutdownHandle,
) -> Response {
    let endpoint = endpoint_label(request);
    let started = Instant::now();
    // One root span per request, named by its normalized endpoint; the
    // service threads it through the pipeline so stage spans nest under
    // it. Dropped *before* the response goes out, so a client that
    // immediately asks `/trace/{id}` sees the complete tree.
    let root = service.tracer().trace(endpoint.clone());
    let trace_id = root.trace_id();
    let routed = catch_unwind(AssertUnwindSafe(|| {
        route(request, service, shutdown, &root)
    }));
    drop(root);
    let mut response = match routed {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => error_response(&e, false),
        Err(_) => {
            // The handler panicked. Answer 500 *and close the socket* —
            // before this existed, the client hung until its own timeout.
            // Any state the handler half-built is suspect, so the
            // connection does not survive.
            service.metrics().record_worker_panic();
            error_response(
                &ServerError::Internal("handler panicked; connection closed".into()),
                true,
            )
        }
    };
    if let Some(id) = trace_id {
        response = response.with_header("x-hummer-trace", format!("{id:016x}"));
    }
    let is_error = response.status >= 400;
    let latency = started.elapsed();
    service
        .metrics()
        .record_request(&endpoint, latency, is_error, trace_id);
    service.events().emit(&EventRecord {
        kind: "request",
        trace: trace_id,
        endpoint: &endpoint,
        status: response.status,
        latency_us: latency.as_micros().min(u64::MAX as u128) as u64,
        shards: response
            .header("x-hummer-shards")
            .and_then(|v| v.parse().ok()),
        error: is_error,
    });
    response
}

/// The metrics label for a request: normalized method + route. Unmatched
/// paths all share one bucket — recording raw paths would let junk traffic
/// grow the metrics map (and its latency rings) without bound.
fn endpoint_label(request: &Request) -> String {
    let route = match request.path.as_str() {
        "/healthz" | "/tables" | "/query" | "/shard/execute" | "/metrics" | "/metrics.json"
        | "/shutdown" => request.path.as_str(),
        p if p.starts_with("/tables/") && p.ends_with("/delta") => "/tables/{name}/delta",
        p if p.starts_with("/tables/") => "/tables/{name}",
        p if p.starts_with("/trace/") => "/trace/{id}",
        _ => "{other}",
    };
    let method = match request.method.as_str() {
        "GET" | "PUT" | "POST" | "DELETE" | "HEAD" | "OPTIONS" | "PATCH" => request.method.as_str(),
        _ => "{other}",
    };
    format!("{method} {route}")
}

/// Finish a response produced *before* dispatch (408 slowloris, 400
/// protocol junk, 503 overload): stamp `X-Hummer-Trace` from the
/// connection's accept-time trace id, count it under the `rejected`
/// endpoint label, and offer it to the event log. These rejections never
/// reach [`execute_request`], so without this they were untraceable and
/// invisible to the request metrics.
pub(crate) fn finish_rejected(
    service: &FusionService,
    mut response: Response,
    trace: Option<u64>,
    latency: Duration,
) -> Response {
    if let Some(id) = trace {
        response = response.with_header("x-hummer-trace", format!("{id:016x}"));
    }
    service
        .metrics()
        .record_request("rejected", latency, true, trace);
    service.events().emit(&EventRecord {
        kind: "reject",
        trace,
        endpoint: "rejected",
        status: response.status,
        latency_us: latency.as_micros().min(u64::MAX as u128) as u64,
        shards: None,
        error: true,
    });
    response
}

pub(crate) fn error_response(e: &ServerError, close: bool) -> Response {
    let body = Json::object()
        .with("error", e.to_string())
        .with("status", i64::from(e.status()))
        .to_string_compact();
    let mut r = Response::json(e.status(), body);
    r.close = close;
    r
}

fn table_info_json(info: &TableInfo) -> Json {
    Json::object()
        .with("table", info.name.clone())
        .with("rows", info.rows)
        .with(
            "columns",
            Json::Arr(info.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        )
        .with("version", info.version)
}

/// A trace tree as wire JSON: nested `{name, node, start_us, duration_us,
/// counters, children}` objects under `{trace, orphans, roots}`. `node` is
/// absent for local spans and names the worker for spliced remote spans.
fn trace_node_json(node: &TraceNode) -> Json {
    let mut counters = Json::object();
    for (name, value) in &node.record.counters {
        counters.push(name.as_ref(), Json::Int(*value as i64));
    }
    let mut obj = Json::object().with("name", node.record.name.to_string());
    if let Some(worker) = &node.record.node {
        obj = obj.with("node", worker.clone());
    }
    obj.with("start_us", node.record.start_us)
        .with("duration_us", node.record.duration_us)
        .with("counters", counters)
        .with(
            "children",
            Json::Arr(node.children.iter().map(trace_node_json).collect()),
        )
}

fn trace_tree_json(tree: &TraceTree) -> Json {
    Json::object()
        .with("trace", format!("{:016x}", tree.trace))
        .with("span_count", tree.span_count())
        .with("orphans", tree.orphans)
        .with(
            "roots",
            Json::Arr(tree.roots.iter().map(trace_node_json).collect()),
        )
}

/// Dispatch one request. `parent` is the per-request root span — stage
/// spans of traced endpoints nest under it.
fn route(
    request: &Request,
    service: &FusionService,
    shutdown: &ShutdownHandle,
    parent: &Span,
) -> Result<Response> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::json(
            200,
            Json::object().with("status", "ok").to_string_compact(),
        )),
        ("GET", "/tables") => {
            let tables: Vec<Json> = service.tables().iter().map(table_info_json).collect();
            Ok(Response::json(
                200,
                Json::object()
                    .with("tables", Json::Arr(tables))
                    .to_string_compact(),
            ))
        }
        ("GET", "/metrics") => Ok(Response::text(200, metrics_to_prometheus(service))),
        ("GET", "/metrics.json") => Ok(Response::json(
            200,
            metrics_to_json(service).to_string_compact(),
        )),
        ("GET", path) if path.starts_with("/trace/") => {
            let id_text = &path["/trace/".len()..];
            let id = u64::from_str_radix(id_text, 16)
                .map_err(|_| ServerError::BadRequest(format!("bad trace id `{id_text}`")))?;
            let tree = service
                .tracer()
                .trace_tree(id)
                .ok_or_else(|| ServerError::NotFound(format!("trace {id_text}")))?;
            Ok(Response::json(
                200,
                trace_tree_json(&tree).to_string_compact(),
            ))
        }
        ("POST", "/query") => {
            let body = request.body_utf8()?;
            let sql = extract_sql(body, request.header("content-type"))?;
            let result = service.query_traced(&sql, parent)?;
            let mut serialize_span = parent.child("serialize");
            let body = query_result_to_json(&result).to_string_compact();
            serialize_span.count("bytes", body.len() as u64);
            drop(serialize_span);
            let mut response = Response::json(200, body);
            if let Some(k) = result.shards {
                // Coordinator mode: how many shards fanned out for this
                // request (0 = served from the prepared cache).
                response = response.with_header("x-hummer-shards", k.to_string());
            }
            Ok(response)
        }
        // Worker side of scatter-gather: a coordinator posts a binary batch
        // of shard tasks; the worker runs detect/cluster/fuse per shard and
        // answers with binary partials. See `hummer_shard::wire`.
        ("POST", "/shard/execute") => {
            let body = service.shard_execute(&request.body, parent)?;
            Ok(Response::octets(200, body))
        }
        // Fault injection for the panic-containment regression tests; only
        // routable when the service opted in (`debug_panic_route`),
        // otherwise the path falls through to 404.
        ("POST", "/__test/panic") if service.debug_panic_route() => {
            panic!("fault injection: POST /__test/panic")
        }
        ("POST", "/shutdown") => {
            // Full shutdown (flag + acceptor wake): without the wake the
            // listener would keep the process alive until the next
            // unrelated connection arrived.
            shutdown.shutdown();
            let mut r = Response::json(
                200,
                Json::object()
                    .with("status", "shutting down")
                    .to_string_compact(),
            );
            r.close = true;
            Ok(r)
        }
        ("POST", path)
            if path.len() > "/tables//delta".len()
                && path.starts_with("/tables/")
                && path.ends_with("/delta") =>
        {
            let name = &path["/tables/".len()..path.len() - "/delta".len()];
            let delta = parse_delta(name, request.body_utf8()?)?;
            let outcome = service.apply_delta_traced(name, &delta, parent)?;
            Ok(Response::json(
                200,
                delta_result_to_json(&outcome).to_string_compact(),
            ))
        }
        ("PUT", path) if path.starts_with("/tables/") => {
            let name = &path["/tables/".len()..];
            let info = service.put_table(name, request.body_utf8()?)?;
            Ok(Response::json(
                200,
                table_info_json(&info).to_string_compact(),
            ))
        }
        ("DELETE", path) if path.len() > "/tables/".len() && path.starts_with("/tables/") => {
            let name = &path["/tables/".len()..];
            let info = service.delete_table(name)?;
            Ok(Response::json(
                200,
                table_info_json(&info)
                    .with("deleted", true)
                    .to_string_compact(),
            ))
        }
        (_, path)
            if path == "/healthz"
                || path == "/tables"
                || path == "/metrics"
                || path == "/metrics.json"
                || path == "/query"
                || path == "/shard/execute"
                || path == "/shutdown"
                || path.starts_with("/tables/")
                || path.starts_with("/trace/") =>
        {
            Err(ServerError::MethodNotAllowed(format!(
                "{} {}",
                request.method, path
            )))
        }
        (_, path) => Err(ServerError::NotFound(path.to_string())),
    }
}

/// `POST /query` accepts raw SQL or a JSON document `{"sql": "..."}`.
fn extract_sql(body: &str, content_type: Option<&str>) -> Result<String> {
    let looks_json = content_type.is_some_and(|c| c.contains("application/json"))
        || body.trim_start().starts_with('{');
    if looks_json {
        let doc = Json::parse(body)?;
        return doc
            .get("sql")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                ServerError::BadRequest("JSON query body needs a string `sql` field".into())
            });
    }
    let sql = body.trim();
    if sql.is_empty() {
        return Err(ServerError::BadRequest("empty query body".into()));
    }
    Ok(sql.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_sql_variants() {
        assert_eq!(extract_sql("SELECT 1", None).unwrap(), "SELECT 1");
        assert_eq!(
            extract_sql("{\"sql\": \"SELECT 1\"}", Some("application/json")).unwrap(),
            "SELECT 1"
        );
        assert_eq!(extract_sql("  {\"sql\": \"S\"} ", None).unwrap(), "S");
        assert!(extract_sql("{\"nope\": 1}", None).is_err());
        assert!(extract_sql("   ", None).is_err());
        assert!(extract_sql("{broken", Some("application/json")).is_err());
    }

    #[test]
    fn endpoint_labels_normalize_table_names() {
        let req = Request {
            method: "PUT".into(),
            path: "/tables/EE_Student".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(endpoint_label(&req), "PUT /tables/{name}");
        let req = Request {
            method: "POST".into(),
            path: "/tables/EE_Student/delta".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(endpoint_label(&req), "POST /tables/{name}/delta");
    }

    #[test]
    fn routing_statuses() {
        let service = FusionService::new(ServiceConfig::default());
        // A handle whose wake nudge goes nowhere (no listener behind it).
        let shutdown = ShutdownHandle {
            addr: "127.0.0.1:9".parse().unwrap(),
            flag: Arc::new(AtomicBool::new(false)),
        };
        let noop = Span::noop();
        let req = |method: &str, path: &str, body: &[u8]| Request {
            method: method.into(),
            path: path.into(),
            headers: vec![],
            body: body.to_vec(),
        };
        let ok = route(&req("GET", "/healthz", b""), &service, &shutdown, &noop).unwrap();
        assert_eq!(ok.status, 200);
        let e = route(&req("GET", "/nope", b""), &service, &shutdown, &noop).unwrap_err();
        assert_eq!(e.status(), 404);
        let e = route(&req("DELETE", "/query", b""), &service, &shutdown, &noop).unwrap_err();
        assert_eq!(e.status(), 405);
        let e = route(
            &req("POST", "/query", b"SELECT * FROM Ghosts"),
            &service,
            &shutdown,
            &noop,
        )
        .unwrap_err();
        assert_eq!(e.status(), 404);
        let put = route(
            &req("PUT", "/tables/T", b"a,b\n1,2\n"),
            &service,
            &shutdown,
            &noop,
        )
        .unwrap();
        assert_eq!(put.status, 200);
        // Delta endpoint: applies and answers 200 with the new version.
        let d = route(
            &req("POST", "/tables/T/delta", br#"{"insert": [[3, 4]]}"#),
            &service,
            &shutdown,
            &noop,
        )
        .unwrap();
        assert_eq!(d.status, 200);
        let body = String::from_utf8(d.body.clone()).unwrap();
        assert!(body.contains("\"rows\":2"), "{body}");
        // Unknown table and malformed bodies surface proper statuses.
        let e = route(
            &req("POST", "/tables/Nope/delta", br#"{"delete": [0]}"#),
            &service,
            &shutdown,
            &noop,
        )
        .unwrap_err();
        assert_eq!(e.status(), 404);
        // Degenerate delta paths (no table name) must not panic on the
        // name slice; they fall through to method-not-allowed.
        for degenerate in ["/tables/delta", "/tables//delta"] {
            let e = route(&req("POST", degenerate, b"{}"), &service, &shutdown, &noop).unwrap_err();
            assert_eq!(e.status(), 405, "{degenerate}");
        }
        let e = route(
            &req("POST", "/tables/T/delta", b"{"),
            &service,
            &shutdown,
            &noop,
        )
        .unwrap_err();
        assert_eq!(e.status(), 400);
        // Deregistration: 200 with the final shape, then 404 on repeat.
        let del = route(&req("DELETE", "/tables/T", b""), &service, &shutdown, &noop).unwrap();
        assert_eq!(del.status, 200);
        let body = String::from_utf8(del.body.clone()).unwrap();
        assert!(body.contains("\"deleted\":true"), "{body}");
        let e = route(&req("DELETE", "/tables/T", b""), &service, &shutdown, &noop).unwrap_err();
        assert_eq!(e.status(), 404);
        // A bare DELETE /tables/ (no name) is method-not-allowed, not a panic.
        let e = route(&req("DELETE", "/tables/", b""), &service, &shutdown, &noop).unwrap_err();
        assert_eq!(e.status(), 405);
        assert!(!shutdown.is_requested());
        let bye = route(&req("POST", "/shutdown", b""), &service, &shutdown, &noop).unwrap();
        assert_eq!(bye.status, 200);
        assert!(bye.close);
        assert!(shutdown.is_requested());
    }

    #[test]
    fn metrics_routes_and_trace_endpoint() {
        use crate::service::ServiceConfig;
        use hummer_core::ObsConfig;
        let mut config = ServiceConfig::narrow_schema();
        config.pipeline.obs = ObsConfig::enabled(4096);
        let service = FusionService::new(config);
        service
            .put_table("A", "Name,Age\nJohn Smith,24\nMary Jones,22\n")
            .unwrap();
        service
            .put_table("B", "Name,Age\nJohn Smith,25\nAda Lovelace,28\n")
            .unwrap();
        let shutdown = ShutdownHandle {
            addr: "127.0.0.1:9".parse().unwrap(),
            flag: Arc::new(AtomicBool::new(false)),
        };
        let req = |method: &str, path: &str, body: &[u8]| Request {
            method: method.into(),
            path: path.into(),
            headers: vec![],
            body: body.to_vec(),
        };

        // A traced query: stage spans nest under the request root.
        let root = service.tracer().trace("POST /query");
        let trace_id = root.trace_id().unwrap();
        let r = route(
            &req(
                "POST",
                "/query",
                b"SELECT Name FUSE FROM A, B FUSE BY (objectID)",
            ),
            &service,
            &shutdown,
            &root,
        )
        .unwrap();
        assert_eq!(r.status, 200);
        drop(root);

        // The trace endpoint returns the assembled tree.
        let t = route(
            &req("GET", &format!("/trace/{trace_id:016x}"), b""),
            &service,
            &shutdown,
            &Span::noop(),
        )
        .unwrap();
        let tree = Json::parse(std::str::from_utf8(&t.body).unwrap()).unwrap();
        let roots = tree.get("roots").unwrap().as_array().unwrap();
        assert_eq!(roots.len(), 1, "one request root, no orphans");
        let names: Vec<&str> = roots[0]
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"prepare"), "{names:?}");
        assert!(names.contains(&"fuse"), "{names:?}");
        assert!(names.contains(&"serialize"), "{names:?}");

        // Unknown and malformed trace ids.
        let e = route(
            &req("GET", "/trace/ffffffffffffffff", b""),
            &service,
            &shutdown,
            &Span::noop(),
        )
        .unwrap_err();
        assert_eq!(e.status(), 404);
        let e = route(
            &req("GET", "/trace/not-hex", b""),
            &service,
            &shutdown,
            &Span::noop(),
        )
        .unwrap_err();
        assert_eq!(e.status(), 400);

        // /metrics is Prometheus text; /metrics.json is the JSON document.
        let m = route(
            &req("GET", "/metrics", b""),
            &service,
            &shutdown,
            &Span::noop(),
        )
        .unwrap();
        assert!(m.content_type.starts_with("text/plain"));
        let text = String::from_utf8(m.body).unwrap();
        assert!(
            text.contains("# TYPE hummer_stage_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("hummer_stage_seconds_bucket{stage=\"detect\""),
            "{text}"
        );
        assert!(
            text.contains("hummer_prepared_cache_misses_total 1"),
            "{text}"
        );
        let j = route(
            &req("GET", "/metrics.json", b""),
            &service,
            &shutdown,
            &Span::noop(),
        )
        .unwrap();
        assert_eq!(j.content_type, "application/json");
        let doc = Json::parse(std::str::from_utf8(&j.body).unwrap()).unwrap();
        assert!(doc.get("prepared_cache").is_some());
    }
}
