//! The load-generating client: a minimal HTTP/1.1 client plus a
//! multi-connection load driver with latency statistics.
//!
//! Used three ways: as the `loadgen` binary (fan N concurrent connections
//! over generated scenario worlds against a remote server), from
//! `exp9_serving` (the serving-path BENCH numbers), and from the smoke
//! integration test.

use crate::error::{Result, ServerError};
use crate::json::Json;
use hummer_obs::{Histogram, HistogramSnapshot};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A persistent keep-alive client connection.
#[derive(Debug)]
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?; // latency benchmark client: no Nagle
        let writer = stream.try_clone()?;
        Ok(Client {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issue one request; reconnects once if the pooled connection died
    /// (e.g. the server restarted between calls).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<(u16, String)> {
        self.request_traced(method, path, content_type, body)
            .map(|(status, body, _)| (status, body))
    }

    /// [`Client::request`], also returning the `X-Hummer-Trace` header the
    /// server attaches when its tracer is enabled.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<(u16, String, Option<String>)> {
        self.request_meta(method, path, content_type, body)
            .map(|m| (m.status, m.body, m.trace))
    }

    /// [`Client::request`] returning the full response metadata, including
    /// the `X-Hummer-Shards` fan-out header coordinator-mode servers attach
    /// to `/query` answers.
    pub fn request_meta(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<ResponseMeta> {
        match self.request_once(method, path, content_type, body) {
            Err(ServerError::Io(_)) => {
                let fresh = Client::connect(&self.addr)?;
                *self = fresh;
                self.request_once(method, path, content_type, body)
            }
            other => other,
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<ResponseMeta> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
            self.addr,
            body.len(),
        );
        // One write per request (see `write_response` on the Nagle stall).
        let mut message = Vec::with_capacity(head.len() + body.len());
        message.extend_from_slice(head.as_bytes());
        message.extend_from_slice(body);
        self.writer.write_all(&message)?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// One parsed HTTP response with the headers the load driver cares about.
#[derive(Debug, Clone)]
pub struct ResponseMeta {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// `X-Hummer-Trace` header, when the server's tracer is enabled.
    pub trace: Option<String>,
    /// `X-Hummer-Shards` header: the shard fan-out of a coordinator-mode
    /// `/query` (0 = answered from the prepared cache). `None` when the
    /// server is not in coordinator mode.
    pub shards: Option<u64>,
}

/// Read one HTTP response: status line, headers (capturing
/// `X-Hummer-Trace` and `X-Hummer-Shards`), `Content-Length` body.
fn read_response<R: BufRead>(reader: &mut R) -> Result<ResponseMeta> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(ServerError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServerError::BadRequest(format!("bad status line `{status_line}`")))?;
    let mut content_length = 0usize;
    let mut trace = None;
    let mut shards = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            )));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ServerError::BadRequest(format!("bad content-length `{value}`"))
                })?;
            } else if name.trim().eq_ignore_ascii_case("x-hummer-trace") {
                trace = Some(value.trim().to_string());
            } else if name.trim().eq_ignore_ascii_case("x-hummer-shards") {
                shards = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| ResponseMeta {
            status,
            body: text,
            trace,
            shards,
        })
        .map_err(|_| ServerError::BadRequest("response body is not UTF-8".into()))
}

/// One-shot convenience request on a fresh connection.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(u16, String)> {
    Client::connect(addr)?
        .request_once(method, path, content_type, body)
        .map(|m| (m.status, m.body))
}

/// Upload one scenario world's sources as `{prefix}_{source}` tables and
/// return the `FUSE BY (objectID)` query exercising them.
pub fn upload_world(
    addr: &str,
    prefix: &str,
    world: &hummer_datagen::GeneratedWorld,
) -> Result<String> {
    let mut aliases = Vec::new();
    for source in &world.sources {
        let alias = format!("{prefix}_{}", source.table.name());
        let csv = hummer_engine::csv::write_csv_str(&source.table);
        let (status, body) = http_request(
            addr,
            "PUT",
            &format!("/tables/{alias}"),
            "text/csv",
            csv.as_bytes(),
        )?;
        if status != 200 {
            return Err(ServerError::Internal(format!(
                "upload {alias} failed with {status}: {body}"
            )));
        }
        aliases.push(alias);
    }
    Ok(format!(
        "SELECT * FUSE FROM {} FUSE BY (objectID)",
        aliases.join(", ")
    ))
}

/// Build the delta-request pool for the mixed read/update workload: for
/// each uploaded world (same `prefix` as [`upload_world`]), two alternating
/// updates of row 0 of its first source — the original row and a perturbed
/// variant — so consecutive deltas genuinely change content and exercise
/// the server's incremental cache-upgrade path.
pub fn update_pool_for_worlds(
    prefixed_worlds: &[(String, &hummer_datagen::GeneratedWorld)],
) -> Vec<(String, String)> {
    use crate::service::value_to_json;
    let mut pool = Vec::new();
    for (prefix, world) in prefixed_worlds {
        let Some(source) = world.sources.first() else {
            continue;
        };
        let Some(row) = source.table.rows().first() else {
            continue;
        };
        let path = format!("/tables/{prefix}_{}/delta", source.table.name());
        let original: Vec<Json> = row.values().iter().map(value_to_json).collect();
        let mut perturbed = original.clone();
        if let Some(slot) = perturbed.iter_mut().find(|v| matches!(v, Json::Str(_))) {
            if let Json::Str(s) = slot {
                s.push_str(" upd");
            }
        } else {
            perturbed.push(Json::Str("upd".into())); // won't arise: worlds carry text
        }
        for values in [perturbed, original] {
            let body = Json::object()
                .with(
                    "update",
                    Json::Arr(vec![Json::object()
                        .with("row", 0usize)
                        .with("values", Json::Arr(values))]),
                )
                .to_string_compact();
            pool.push((path.clone(), body));
        }
    }
    pool
}

/// Generate a standard world mix, cycling the paper's four demo scenarios.
pub fn scenario_worlds(
    count: usize,
    entities: usize,
    seed: u64,
) -> Vec<hummer_datagen::GeneratedWorld> {
    use hummer_datagen::scenarios::{
        cd_shopping, cleansing_service, disaster_registry, student_rosters,
    };
    (0..count)
        .map(|i| {
            let s = seed + i as u64;
            match i % 4 {
                0 => cd_shopping(entities, s),
                1 => disaster_registry(entities, s),
                2 => student_rosters(entities, s),
                _ => cleansing_service(entities, s),
            }
        })
        .collect()
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server `host:port`.
    pub addr: String,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// SQL statements cycled round-robin across requests.
    pub sql_pool: Vec<String>,
    /// Every `update_every`-th request becomes a delta `POST` drawn from
    /// `update_pool` instead of a query (`0` = read-only run). This is the
    /// mixed read/update mode exercising delta ingestion under concurrent
    /// queries.
    pub update_every: usize,
    /// `(path, json_body)` delta requests, cycled like `sql_pool`.
    pub update_pool: Vec<(String, String)>,
}

impl LoadConfig {
    /// A read-only run (no deltas).
    pub fn read_only(
        addr: String,
        connections: usize,
        requests: usize,
        sql_pool: Vec<String>,
    ) -> Self {
        LoadConfig {
            addr,
            connections,
            requests,
            sql_pool,
            update_every: 0,
            update_pool: Vec::new(),
        }
    }
}

/// Aggregated load-run results.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that returned HTTP 200.
    pub ok: usize,
    /// Requests that failed (transport error or non-200).
    pub errors: usize,
    /// Of `errors`, how many were `503` admission-control rejections
    /// (overloaded server shedding load rather than queueing).
    pub rejects: usize,
    /// Of `ok`, how many were delta (update) requests.
    pub updates_ok: usize,
    /// Of `errors`, how many were delta (update) requests.
    pub update_errors: usize,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Mean latency (ms) over successful requests.
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 90th-percentile latency (ms).
    pub p90_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile latency (ms).
    pub p999_ms: f64,
    /// Merged latency histogram of all successful requests (microsecond
    /// samples) — the percentiles above are read from it.
    pub latency: HistogramSnapshot,
    /// The slowest successful requests, worst first (at most 10):
    /// `(latency_ms, trace_id)` where the trace id comes from the server's
    /// `X-Hummer-Trace` header (`None` when tracing is disabled). Feed an
    /// id to `GET /trace/{id}` to see where that request's time went.
    pub slowest: Vec<(f64, Option<String>)>,
    /// Coordinator mode: successful `/query` answers whose
    /// `X-Hummer-Shards` header reported a fan-out `> 0` (cold prepares
    /// that scattered to workers). 0 against a non-coordinator server.
    pub scatter_requests: usize,
    /// Coordinator mode: total shards scattered across those requests.
    pub shards_scattered: u64,
    /// Coordinator mode: the largest single-request fan-out observed.
    pub fanout_max: u64,
    /// Coordinator mode: answers served from the prepared cache
    /// (`X-Hummer-Shards: 0`).
    pub cache_served: usize,
}

/// Latency percentile over an unsorted millisecond sample (`p` in `[0, 100]`);
/// delegates to the crate's one percentile implementation.
pub fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    crate::metrics::percentile(samples, p)
}

/// Fan `connections` threads over the server, each issuing its share of
/// `requests` (round-robin over `sql_pool`) on a persistent connection.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let connections = config.connections.max(1);
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for _ in 0..connections {
        let next = Arc::clone(&next);
        let addr = config.addr.clone();
        let pool = config.sql_pool.clone();
        let updates = config.update_pool.clone();
        let update_every = if config.update_pool.is_empty() {
            0
        } else {
            config.update_every
        };
        let total = config.requests;
        handles.push(thread::spawn(move || {
            // Lock-free per-thread histogram; merged after the join. The
            // slowest list keeps the worst 10 with their trace ids so the
            // tail can be explained span-by-span via `GET /trace/{id}`.
            let hist = Histogram::new();
            let mut tally = ThreadTally::default();
            let mut client = Client::connect(&addr).ok();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let Some(c) = client.as_mut() else {
                    tally.errors += 1;
                    continue;
                };
                // The mixed workload interleaves deltas deterministically:
                // every `update_every`-th global request mutates a source.
                let is_update = update_every > 0 && i % update_every == update_every - 1;
                let t0 = Instant::now();
                let outcome = if is_update {
                    let (path, body) = &updates[(i / update_every) % updates.len()];
                    c.request_meta("POST", path, "application/json", body.as_bytes())
                } else {
                    let sql = &pool[i % pool.len()];
                    c.request_meta("POST", "/query", "text/plain", sql.as_bytes())
                };
                match outcome {
                    Ok(m) if m.status == 200 => {
                        let elapsed = t0.elapsed();
                        hist.record_duration(elapsed);
                        push_slowest(&mut tally.slowest, elapsed.as_secs_f64() * 1e3, m.trace);
                        if is_update {
                            tally.updates_ok += 1;
                        }
                        // Coordinator-mode servers report each answer's
                        // shard fan-out; 0 means the prepared cache had it.
                        match m.shards {
                            Some(0) => tally.cache_served += 1,
                            Some(k) => {
                                tally.scatter_requests += 1;
                                tally.shards_scattered += k;
                                tally.fanout_max = tally.fanout_max.max(k);
                            }
                            None => {}
                        }
                    }
                    Ok(m) => {
                        tally.errors += 1;
                        if m.status == 503 {
                            tally.rejects += 1;
                            // The server closes rejected connections;
                            // reconnect before the next request.
                            client = Client::connect(&addr).ok();
                        }
                        if is_update {
                            tally.update_errors += 1;
                        }
                    }
                    Err(_) => {
                        tally.errors += 1;
                        if is_update {
                            tally.update_errors += 1;
                        }
                        client = None; // connection is poisoned; fail fast
                    }
                }
            }
            (hist.snapshot(), tally)
        }));
    }
    let mut latency = HistogramSnapshot::default();
    let mut total = ThreadTally::default();
    let mut slowest: Vec<(f64, Option<String>)> = Vec::new();
    for h in handles {
        let (snap, tally) = h
            .join()
            .unwrap_or((HistogramSnapshot::default(), ThreadTally::default()));
        latency.merge(&snap);
        for (ms, trace) in tally.slowest {
            push_slowest(&mut slowest, ms, trace);
        }
        total.errors += tally.errors;
        total.rejects += tally.rejects;
        total.updates_ok += tally.updates_ok;
        total.update_errors += tally.update_errors;
        total.scatter_requests += tally.scatter_requests;
        total.shards_scattered += tally.shards_scattered;
        total.fanout_max = total.fanout_max.max(tally.fanout_max);
        total.cache_served += tally.cache_served;
    }
    let elapsed = started.elapsed();
    let ok = latency.count() as usize;
    let q = |p: f64| latency.quantile(p) as f64 / 1e3;
    LoadReport {
        ok,
        errors: total.errors,
        rejects: total.rejects,
        updates_ok: total.updates_ok,
        update_errors: total.update_errors,
        elapsed,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            ok as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        mean_ms: latency.mean() / 1e3,
        p50_ms: q(0.5),
        p90_ms: q(0.9),
        p99_ms: q(0.99),
        p999_ms: q(0.999),
        latency,
        slowest,
        scatter_requests: total.scatter_requests,
        shards_scattered: total.shards_scattered,
        fanout_max: total.fanout_max,
        cache_served: total.cache_served,
    }
}

impl LoadReport {
    /// Render the report as the `loadgen` binary prints it. One path for
    /// plain and coordinator mode: the shared section — counts, latency
    /// percentiles, and the slowest-10 with their trace ids — is emitted
    /// unconditionally, so no mode can lose the tail-explanation lines;
    /// `coordinator_mode` only *appends* the scatter visibility block.
    pub fn render(&self, coordinator_mode: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "requests_ok      {}", self.ok);
        let _ = writeln!(out, "requests_err     {}", self.errors);
        let _ = writeln!(out, "rejects_503      {}", self.rejects);
        let _ = writeln!(out, "updates_ok       {}", self.updates_ok);
        let _ = writeln!(out, "updates_err      {}", self.update_errors);
        let _ = writeln!(out, "elapsed_s        {:.3}", self.elapsed.as_secs_f64());
        let _ = writeln!(out, "throughput_rps   {:.1}", self.throughput_rps);
        let _ = writeln!(out, "latency_mean_ms  {:.3}", self.mean_ms);
        let _ = writeln!(out, "latency_p50_ms   {:.3}", self.p50_ms);
        let _ = writeln!(out, "latency_p90_ms   {:.3}", self.p90_ms);
        let _ = writeln!(out, "latency_p99_ms   {:.3}", self.p99_ms);
        let _ = writeln!(out, "latency_p999_ms  {:.3}", self.p999_ms);
        // The tail, explained: the worst requests with their trace ids —
        // `curl http://{addr}/trace/{id}` shows the span tree of each.
        for (i, (ms, trace)) in self.slowest.iter().enumerate() {
            let _ = writeln!(
                out,
                "slowest_{i:02}       {ms:.3} ms  trace={}",
                trace.as_deref().unwrap_or("-")
            );
        }
        if coordinator_mode {
            let _ = writeln!(out, "scatter_requests {}", self.scatter_requests);
            let _ = writeln!(out, "cache_served     {}", self.cache_served);
            let _ = writeln!(out, "shards_scattered {}", self.shards_scattered);
            let _ = writeln!(out, "fanout_max       {}", self.fanout_max);
            if self.scatter_requests > 0 {
                let _ = writeln!(
                    out,
                    "fanout_mean      {:.2}",
                    self.shards_scattered as f64 / self.scatter_requests as f64
                );
            }
        }
        out
    }
}

/// Per-thread load counters, merged after the join.
#[derive(Default)]
struct ThreadTally {
    slowest: Vec<(f64, Option<String>)>,
    errors: usize,
    rejects: usize,
    updates_ok: usize,
    update_errors: usize,
    scatter_requests: usize,
    shards_scattered: u64,
    fanout_max: u64,
    cache_served: usize,
}

/// How many of the slowest requests a load run reports.
const SLOWEST_KEPT: usize = 10;

/// Insert into a worst-first top-`SLOWEST_KEPT` list.
fn push_slowest(slowest: &mut Vec<(f64, Option<String>)>, ms: f64, trace: Option<String>) {
    let at = slowest
        .iter()
        .position(|(v, _)| ms > *v)
        .unwrap_or(slowest.len());
    if at < SLOWEST_KEPT {
        slowest.insert(at, (ms, trace));
        slowest.truncate(SLOWEST_KEPT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[5.0], 99.0), 5.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile_ms(&v, 50.0) - 50.0).abs() <= 1.0);
        assert!(percentile_ms(&v, 99.0) >= 99.0);
    }

    #[test]
    fn read_response_parses_status_and_body() {
        let raw = "HTTP/1.1 404 Not Found\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let m = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(m.status, 404);
        assert_eq!(m.body, "{}");
        assert_eq!(m.trace, None);
        assert_eq!(m.shards, None);
    }

    #[test]
    fn read_response_captures_trace_and_shard_headers() {
        let raw = "HTTP/1.1 200 OK\r\nx-hummer-trace: 00000000000000a1\r\n\
                   x-hummer-shards: 4\r\ncontent-length: 2\r\n\r\nok";
        let m = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(m.status, 200);
        assert_eq!(m.body, "ok");
        assert_eq!(m.trace.as_deref(), Some("00000000000000a1"));
        assert_eq!(m.shards, Some(4));
    }

    #[test]
    fn slowest_list_keeps_worst_first_and_bounds_length() {
        let mut slowest = Vec::new();
        for i in 0..50u64 {
            // Interleave so insertion hits both ends.
            let ms = if i % 2 == 0 {
                i as f64
            } else {
                100.0 - i as f64
            };
            push_slowest(&mut slowest, ms, Some(format!("{i:016x}")));
        }
        assert_eq!(slowest.len(), SLOWEST_KEPT);
        for pair in slowest.windows(2) {
            assert!(pair[0].0 >= pair[1].0, "{slowest:?}");
        }
        assert_eq!(slowest[0].0, 99.0);
    }

    #[test]
    fn render_emits_slowest_traces_in_both_modes() {
        let mut report = LoadReport {
            ok: 3,
            errors: 0,
            rejects: 0,
            updates_ok: 0,
            update_errors: 0,
            elapsed: Duration::from_millis(10),
            throughput_rps: 300.0,
            mean_ms: 1.0,
            p50_ms: 1.0,
            p90_ms: 2.0,
            p99_ms: 2.0,
            p999_ms: 2.0,
            latency: HistogramSnapshot::default(),
            slowest: vec![(2.5, Some("00000000000000a1".into())), (1.0, None)],
            scatter_requests: 2,
            shards_scattered: 8,
            fanout_max: 4,
            cache_served: 1,
        };
        let plain = report.render(false);
        let coord = report.render(true);
        // The slowest-10 trace lines are part of the shared section: both
        // modes must carry them (this is the regression the unified path
        // guards against).
        for rendered in [&plain, &coord] {
            assert!(rendered.contains("slowest_00"), "{rendered}");
            assert!(rendered.contains("trace=00000000000000a1"), "{rendered}");
            assert!(rendered.contains("trace=-"), "{rendered}");
        }
        assert!(!plain.contains("scatter_requests"), "{plain}");
        assert!(coord.contains("scatter_requests 2"), "{coord}");
        assert!(coord.contains("fanout_mean      4.00"), "{coord}");
        report.scatter_requests = 0;
        assert!(!report.render(true).contains("fanout_mean"));
    }

    #[test]
    fn read_response_rejects_garbage() {
        assert!(read_response(&mut BufReader::new(&b"NOPE\r\n\r\n"[..])).is_err());
        assert!(read_response(&mut BufReader::new(&b""[..])).is_err());
    }
}
