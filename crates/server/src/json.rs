//! A hand-rolled minimal JSON value, writer, and parser.
//!
//! The server speaks JSON on the wire (query responses, metrics, the bench
//! reports) but the build environment has no registry access, so this module
//! implements the subset of JSON the wire protocol needs — which is all of
//! it, minus any serde niceties: a tagged [`Json`] value, a writer with full
//! string escaping, and a recursive-descent parser with `\uXXXX` (including
//! surrogate pairs) support.
//!
//! Integers and floats are kept apart so row values survive the round trip
//! exactly (`i64` does not fit `f64` above 2^53).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair to an object (panics on non-objects —
    /// builder misuse, not data error).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Builder form of [`Json::push`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation (human-facing reports).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Non-finite floats have no JSON representation; emit `null` like every
/// mainstream serializer.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        let stays_float = s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        // `{}` on a whole float prints no ".0"; add it so the number parses
        // back as a float.
        if !stays_float {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A JSON parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped span in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // `get` (not slicing) so four bytes that land inside a multibyte
        // character are a parse error, not a char-boundary panic.
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| self.err(format!("bad hex digits `{hex}`")))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            position: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_control_quotes_unicode() {
        let s = "quote\" back\\slash\nnew\ttab\u{08}bell\u{0C}feed\u{1}ctl 北😀";
        let j = Json::Str(s.to_string());
        let text = j.to_string_compact();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\t"));
        assert!(text.contains("\\b"));
        assert!(text.contains("\\f"));
        assert!(text.contains("\\u0001"));
        // Multibyte chars pass through raw (JSON is UTF-8).
        assert!(text.contains('北'));
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn malformed_unicode_escape_is_error_not_panic() {
        // Two hex digits followed by a multibyte char: pos+4 lands inside
        // the character — must be a parse error, never a slicing panic.
        assert!(Json::parse("{\"sql\":\"\\u12北\"}").is_err());
        assert!(Json::parse("\"\\u1\"").is_err());
        assert!(Json::parse("\"\\u😀00\"").is_err());
    }

    #[test]
    fn unicode_escapes_and_surrogates_parse() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".into()));
        // 😀 is U+1F600 = 😀.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\uD83D""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\uDE00""#).is_err()); // lone low surrogate
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn nested_round_trip() {
        let doc = Json::object()
            .with("name", "hummer")
            .with("fused", true)
            .with(
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str("John \"JS\" Smith".into()), Json::Int(25)]),
                    Json::Arr(vec![Json::Null, Json::Float(1.5)]),
                ]),
            )
            .with(
                "stats",
                Json::object().with("p50_ms", 0.25).with("count", 42i64),
            );
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(
            Json::parse("9007199254740993").unwrap(),
            Json::Int(9007199254740993)
        );
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // i64 round-trips exactly through the writer.
        assert_eq!(
            Json::Int(i64::MAX).to_string_compact(),
            i64::MAX.to_string()
        );
        // Non-finite floats degrade to null.
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let j = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(j.get("b"), Some(&Json::Null));
    }

    #[test]
    fn accessors() {
        let j = Json::object().with("s", "x").with("i", 3i64).with("f", 2.5);
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("i").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("i").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(j.get("nope"), None);
        assert_eq!(Json::Null.as_str(), None);
    }
}
