//! Request metrics: counts, latency percentiles, per-stage timing
//! aggregates.
//!
//! One [`Metrics`] lives in the shared service; worker threads record into
//! it behind a mutex (the critical section is a few counter bumps and a ring
//! push, so contention stays negligible next to pipeline work). `GET
//! /metrics` renders a [`MetricsSnapshot`].

use hummer_core::StageTimings;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Per-endpoint latency samples kept for percentile estimates. A ring of the
/// most recent samples bounds memory on long-lived servers.
const LATENCY_RING: usize = 8192;

#[derive(Debug, Default)]
struct EndpointStats {
    count: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    next_slot: usize,
}

impl EndpointStats {
    fn record(&mut self, latency: Duration, is_error: bool) {
        self.count += 1;
        if is_error {
            self.errors += 1;
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        if self.latencies_us.len() < LATENCY_RING {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.next_slot] = us;
            self.next_slot = (self.next_slot + 1) % LATENCY_RING;
        }
    }
}

/// Cumulative pipeline-stage time across all queries served.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageAggregate {
    /// Sum over all *prepared* runs (cache misses) of match/transform/detect,
    /// plus every query's fusion time.
    pub totals: StageTimings,
    /// Number of preparation runs (== cache misses that reached the pipeline).
    pub prepares: u64,
    /// Number of fusion queries executed.
    pub fusions: u64,
}

/// A point-in-time view of one endpoint's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSnapshot {
    /// Endpoint label, e.g. `POST /query`.
    pub endpoint: String,
    /// Requests served.
    pub count: u64,
    /// Requests that ended in an error status.
    pub errors: u64,
    /// Median latency in milliseconds over the recent window.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds over the recent window.
    pub p99_ms: f64,
}

/// Cumulative delta-ingestion counters (`POST /tables/{name}/delta`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaAggregate {
    /// Delta batches applied.
    pub deltas: u64,
    /// Rows inserted across all deltas.
    pub rows_inserted: u64,
    /// Rows updated across all deltas.
    pub rows_updated: u64,
    /// Rows deleted across all deltas.
    pub rows_deleted: u64,
    /// Prepared-cache entries *upgraded* in place (not invalidated).
    pub cache_upgrades: u64,
    /// Upgrade attempts that failed (entry dropped, next query re-prepares).
    pub cache_upgrade_failures: u64,
    /// Upgrades that degraded to a full rescore (quantization boundary,
    /// attribute-selection change, non-incremental blocking strategy).
    pub full_rescores: u64,
}

/// A point-in-time view of the whole metrics registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests across endpoints.
    pub total_requests: u64,
    /// Total error responses across endpoints.
    pub total_errors: u64,
    /// Per-endpoint stats, sorted by label.
    pub endpoints: Vec<EndpointSnapshot>,
    /// Pipeline-stage aggregates.
    pub stages: StageAggregate,
    /// Delta-ingestion aggregates.
    pub deltas: DeltaAggregate,
}

/// Thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    endpoints: BTreeMap<String, EndpointStats>,
    stages: StageAggregate,
    deltas: DeltaAggregate,
}

/// Nearest-rank percentile over an unsorted sample; `p` in [0, 100]. The
/// single percentile implementation in this crate — the server's `/metrics`
/// and the loadgen client both report through it, so their p50/p99 can
/// never silently diverge.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// [`percentile`] over microsecond counters.
pub fn percentile_us(values: &[u64], p: f64) -> f64 {
    let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    percentile(&as_f64, p)
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record one served request.
    pub fn record_request(&self, endpoint: &str, latency: Duration, is_error: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .endpoints
            .entry(endpoint.to_string())
            .or_default()
            .record(latency, is_error);
    }

    /// Record a preparation run (cache miss) with its stage timings.
    pub fn record_prepare(&self, timings: &StageTimings) {
        let mut inner = self.inner.lock().unwrap();
        inner.stages.prepares += 1;
        inner.stages.totals.matching += timings.matching;
        inner.stages.totals.transformation += timings.transformation;
        inner.stages.totals.detection += timings.detection;
    }

    /// Record one fusion execution's wall time.
    pub fn record_fusion(&self, fusion: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.stages.fusions += 1;
        inner.stages.totals.fusion += fusion;
    }

    /// Record one applied delta batch and its cache-upgrade outcome.
    pub fn record_delta(
        &self,
        inserted: u64,
        updated: u64,
        deleted: u64,
        upgrades: u64,
        upgrade_failures: u64,
        full_rescores: u64,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.deltas.deltas += 1;
        inner.deltas.rows_inserted += inserted;
        inner.deltas.rows_updated += updated;
        inner.deltas.rows_deleted += deleted;
        inner.deltas.cache_upgrades += upgrades;
        inner.deltas.cache_upgrade_failures += upgrade_failures;
        inner.deltas.full_rescores += full_rescores;
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut endpoints = Vec::with_capacity(inner.endpoints.len());
        let mut total_requests = 0;
        let mut total_errors = 0;
        for (name, stats) in &inner.endpoints {
            total_requests += stats.count;
            total_errors += stats.errors;
            endpoints.push(EndpointSnapshot {
                endpoint: name.clone(),
                count: stats.count,
                errors: stats.errors,
                p50_ms: percentile_us(&stats.latencies_us, 50.0) / 1e3,
                p99_ms: percentile_us(&stats.latencies_us, 99.0) / 1e3,
            });
        }
        MetricsSnapshot {
            total_requests,
            total_errors,
            endpoints,
            stages: inner.stages,
            deltas: inner.deltas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_percentiles() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record_request("POST /query", Duration::from_micros(i * 1000), i % 10 == 0);
        }
        m.record_request("GET /healthz", Duration::from_micros(50), false);
        let snap = m.snapshot();
        assert_eq!(snap.total_requests, 101);
        assert_eq!(snap.total_errors, 10);
        let q = snap
            .endpoints
            .iter()
            .find(|e| e.endpoint == "POST /query")
            .unwrap();
        assert_eq!(q.count, 100);
        assert!((q.p50_ms - 50.0).abs() < 2.0, "p50 {}", q.p50_ms);
        assert!(q.p99_ms >= 98.0, "p99 {}", q.p99_ms);
    }

    #[test]
    fn stage_aggregates_accumulate() {
        let m = Metrics::new();
        let t = StageTimings {
            matching: Duration::from_millis(5),
            transformation: Duration::from_millis(2),
            detection: Duration::from_millis(3),
            fusion: Duration::ZERO,
        };
        m.record_prepare(&t);
        m.record_prepare(&t);
        m.record_fusion(Duration::from_millis(1));
        let s = m.snapshot().stages;
        assert_eq!(s.prepares, 2);
        assert_eq!(s.fusions, 1);
        assert_eq!(s.totals.matching, Duration::from_millis(10));
        assert_eq!(s.totals.fusion, Duration::from_millis(1));
    }

    #[test]
    fn delta_aggregates_accumulate() {
        let m = Metrics::new();
        m.record_delta(2, 1, 0, 1, 0, 0);
        m.record_delta(0, 0, 3, 2, 1, 1);
        let d = m.snapshot().deltas;
        assert_eq!(d.deltas, 2);
        assert_eq!((d.rows_inserted, d.rows_updated, d.rows_deleted), (2, 1, 3));
        assert_eq!(d.cache_upgrades, 3);
        assert_eq!(d.cache_upgrade_failures, 1);
        assert_eq!(d.full_rescores, 1);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7], 99.0), 7.0);
        assert_eq!(percentile_us(&[3, 1, 2], 0.0), 1.0);
        assert_eq!(percentile_us(&[3, 1, 2], 100.0), 3.0);
    }

    #[test]
    fn latency_ring_bounds_memory() {
        let mut stats = EndpointStats::default();
        for i in 0..(LATENCY_RING as u64 + 100) {
            stats.record(Duration::from_micros(i), false);
        }
        assert_eq!(stats.latencies_us.len(), LATENCY_RING);
        assert_eq!(stats.count, LATENCY_RING as u64 + 100);
    }
}
