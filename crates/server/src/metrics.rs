//! Request metrics: counts, latency histograms, per-stage timing
//! aggregates.
//!
//! One [`Metrics`] lives in the shared service. The hot recording paths —
//! request latencies and stage latencies — go through `hummer_obs`'s
//! lock-free log-bucketed [`Histogram`]s (one relaxed `fetch_add` per
//! sample, ~1.6% worst-case quantile error), so worker threads never
//! contend at loadgen concurrency. The endpoint label map sits behind an
//! `RwLock` taken for reading only; the rarely-touched aggregates
//! (per-delta counters, stage total durations) keep a plain mutex.
//!
//! `GET /metrics` renders the same registry as Prometheus text (see
//! `service::metrics_to_prometheus`); `GET /metrics.json` renders a
//! [`MetricsSnapshot`].

use hummer_core::StageTimings;
use hummer_obs::{Histogram, HistogramSnapshot, HistogramVec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Per-endpoint counters and the latency histogram (microsecond samples).
#[derive(Debug, Default)]
pub struct EndpointStats {
    count: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl EndpointStats {
    fn record(&self, latency: Duration, is_error: bool, trace: Option<u64>) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        // The trace id becomes the bucket's exemplar: a slow `/metrics`
        // bucket links directly to a fetchable `GET /trace/{id}`.
        self.latency.record_duration_with_trace(latency, trace);
    }
}

/// Cumulative pipeline-stage time across all queries served.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageAggregate {
    /// Sum over all *prepared* runs (cache misses) of match/transform/detect,
    /// plus every query's fusion time.
    pub totals: StageTimings,
    /// Number of preparation runs (== cache misses that reached the pipeline).
    pub prepares: u64,
    /// Number of fusion queries executed.
    pub fusions: u64,
}

/// A point-in-time view of one endpoint's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSnapshot {
    /// Endpoint label, e.g. `POST /query`.
    pub endpoint: String,
    /// Requests served.
    pub count: u64,
    /// Requests that ended in an error status.
    pub errors: u64,
    /// Median latency in milliseconds (log-bucketed, ≤ ~1.6% high).
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds (log-bucketed, ≤ ~1.6% high).
    pub p99_ms: f64,
}

/// Cumulative delta-ingestion counters (`POST /tables/{name}/delta`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaAggregate {
    /// Delta batches applied.
    pub deltas: u64,
    /// Rows inserted across all deltas.
    pub rows_inserted: u64,
    /// Rows updated across all deltas.
    pub rows_updated: u64,
    /// Rows deleted across all deltas.
    pub rows_deleted: u64,
    /// Prepared-cache entries *upgraded* in place (not invalidated).
    pub cache_upgrades: u64,
    /// Upgrade attempts that failed (entry dropped, next query re-prepares).
    pub cache_upgrade_failures: u64,
    /// Upgrades that degraded to a full rescore (quantization boundary,
    /// attribute-selection change, non-incremental blocking strategy).
    pub full_rescores: u64,
}

/// Scatter-gather counters for coordinator mode and the shard-worker
/// endpoint (the `hummer_shard_*` Prometheus families).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAggregate {
    /// Scatter-gather prepares run by this process as coordinator.
    pub scatters: u64,
    /// Shards planned across all scatters.
    pub shards_planned: u64,
    /// Worker HTTP requests issued (including retries).
    pub worker_requests: u64,
    /// Requests retried on a distinct worker.
    pub worker_retries: u64,
    /// Shard batches that fell back to local execution.
    pub worker_fallbacks: u64,
    /// Worker calls that failed (each failed attempt counts once).
    pub worker_errors: u64,
    /// Shard batches this process executed as a *worker*
    /// (`POST /shard/execute`).
    pub worker_batches: u64,
}

/// Serving-path (event loop / worker pool) health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingSnapshot {
    /// Connections refused with 503 because the live-connection cap was hit.
    pub overload_rejects: u64,
    /// Connections closed with 408 because a started request stalled past
    /// the read deadline.
    pub read_timeouts: u64,
    /// Idle keep-alive connections reclaimed silently.
    pub idle_reclaims: u64,
    /// Requests whose handler panicked (answered 500, connection closed).
    pub worker_panics: u64,
}

/// A point-in-time view of the whole metrics registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests across endpoints.
    pub total_requests: u64,
    /// Total error responses across endpoints.
    pub total_errors: u64,
    /// Per-endpoint stats, sorted by label.
    pub endpoints: Vec<EndpointSnapshot>,
    /// Pipeline-stage aggregates.
    pub stages: StageAggregate,
    /// Delta-ingestion aggregates.
    pub deltas: DeltaAggregate,
    /// Scatter-gather aggregates.
    pub shard: ShardAggregate,
    /// Serving-path health counters.
    pub serving: ServingSnapshot,
}

/// Thread-safe metrics registry. Recording latencies is lock-free after
/// the first request per endpoint label.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: RwLock<BTreeMap<String, Arc<EndpointStats>>>,
    /// Stage latency histograms, labeled `[stage, layout, degree]`.
    stage_hists: HistogramVec,
    /// Per-connection time spent in each lifecycle state (`reading`,
    /// `executing`, `writing`, `idle`), labeled `[state]`; microseconds.
    conn_state_hists: HistogramVec,
    /// Coordinator-side worker-call latencies, labeled `[worker]`;
    /// microseconds.
    shard_worker_hists: HistogramVec,
    stages: Mutex<StageAggregate>,
    deltas: Mutex<DeltaAggregate>,
    shard: Mutex<ShardAggregate>,
    overload_rejects: AtomicU64,
    read_timeouts: AtomicU64,
    idle_reclaims: AtomicU64,
    worker_panics: AtomicU64,
}

/// Nearest-rank percentile over a sample set; `p` in [0, 100]. The single
/// percentile implementation in this crate — the server's `/metrics` and
/// the loadgen client both report through the same log-bucketed
/// [`Histogram`], so their p50/p99 can never silently diverge. Values are
/// bucketed at 1/1000 granularity (milliseconds in, microsecond buckets),
/// so results are exact below 0.064 and within ~1.6% above.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let h = Histogram::new();
    for &v in samples {
        h.record((v.max(0.0) * 1000.0).round() as u64);
    }
    h.snapshot().quantile(p / 100.0) as f64 / 1000.0
}

/// [`percentile`] over already-integer (microsecond) counters: same
/// histogram, no scaling.
pub fn percentile_us(values: &[u64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot().quantile(p / 100.0) as f64
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Shared handle to one endpoint's stats (created on first use).
    fn endpoint(&self, endpoint: &str) -> Arc<EndpointStats> {
        {
            let map = self.endpoints.read().unwrap();
            if let Some(stats) = map.get(endpoint) {
                return Arc::clone(stats);
            }
        }
        let mut map = self.endpoints.write().unwrap();
        Arc::clone(map.entry(endpoint.to_string()).or_default())
    }

    /// Record one served request. `trace` (when the tracer is enabled)
    /// becomes the latency bucket's OpenMetrics exemplar.
    pub fn record_request(
        &self,
        endpoint: &str,
        latency: Duration,
        is_error: bool,
        trace: Option<u64>,
    ) {
        self.endpoint(endpoint).record(latency, is_error, trace);
    }

    /// Record a preparation run (cache miss) with its stage timings, under
    /// the layout/degree labels it ran with.
    pub fn record_prepare(&self, timings: &StageTimings, layout: &str, degree: usize) {
        let degree = degree_label(degree);
        for (stage, d) in [
            ("match", timings.matching),
            ("transform", timings.transformation),
            ("detect", timings.detection),
        ] {
            self.stage_hists
                .with(&[stage, layout, degree])
                .record_duration(d);
        }
        let mut stages = self.stages.lock().unwrap();
        stages.prepares += 1;
        stages.totals.matching += timings.matching;
        stages.totals.transformation += timings.transformation;
        stages.totals.detection += timings.detection;
    }

    /// Record one fusion execution's wall time under its labels.
    pub fn record_fusion(&self, fusion: Duration, layout: &str, degree: usize) {
        self.stage_hists
            .with(&["fuse", layout, degree_label(degree)])
            .record_duration(fusion);
        let mut stages = self.stages.lock().unwrap();
        stages.fusions += 1;
        stages.totals.fusion += fusion;
    }

    /// Record one applied delta batch and its cache-upgrade outcome.
    pub fn record_delta(
        &self,
        inserted: u64,
        updated: u64,
        deleted: u64,
        upgrades: u64,
        upgrade_failures: u64,
        full_rescores: u64,
    ) {
        let mut deltas = self.deltas.lock().unwrap();
        deltas.deltas += 1;
        deltas.rows_inserted += inserted;
        deltas.rows_updated += updated;
        deltas.rows_deleted += deleted;
        deltas.cache_upgrades += upgrades;
        deltas.cache_upgrade_failures += upgrade_failures;
        deltas.full_rescores += full_rescores;
    }

    /// Record one coordinator scatter's shape: shards executed, worker
    /// requests issued, retries, and local fallbacks.
    pub fn record_shard_scatter(&self, shards: u64, requests: u64, retries: u64, fallbacks: u64) {
        let mut shard = self.shard.lock().unwrap();
        shard.scatters += 1;
        shard.shards_planned += shards;
        shard.worker_requests += requests;
        shard.worker_retries += retries;
        shard.worker_fallbacks += fallbacks;
    }

    /// Record one coordinator→worker call under the worker's address label.
    pub fn record_shard_worker_call(&self, worker: &str, latency: Duration, ok: bool) {
        self.shard_worker_hists
            .with(&[worker])
            .record_duration(latency);
        if !ok {
            self.shard.lock().unwrap().worker_errors += 1;
        }
    }

    /// Record one shard batch executed by this process as a worker.
    pub fn record_shard_batch(&self) {
        self.shard.lock().unwrap().worker_batches += 1;
    }

    /// Coordinator worker-call histograms with their `[worker]` labels.
    pub fn shard_worker_histograms(&self) -> Vec<(Vec<String>, HistogramSnapshot)> {
        self.shard_worker_hists.snapshot()
    }

    /// Record the time one connection spent in a lifecycle state
    /// (`reading`, `executing`, `writing`, `idle`).
    pub fn record_conn_state(&self, state: &str, spent: Duration) {
        self.conn_state_hists.with(&[state]).record_duration(spent);
    }

    /// Count a connection refused with 503 at the admission gate.
    pub fn record_overload_reject(&self) {
        self.overload_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a started request that stalled past the read deadline (408).
    pub fn record_read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an idle keep-alive connection reclaimed silently.
    pub fn record_idle_reclaim(&self) {
        self.idle_reclaims.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request whose handler panicked (500 + close).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Serving-path counters only (cheaper than a full [`Metrics::snapshot`]).
    pub fn serving_snapshot(&self) -> ServingSnapshot {
        ServingSnapshot {
            overload_rejects: self.overload_rejects.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            idle_reclaims: self.idle_reclaims.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut endpoints = Vec::new();
        let mut total_requests = 0;
        let mut total_errors = 0;
        for (name, count, errors, latency) in self.endpoint_histograms() {
            total_requests += count;
            total_errors += errors;
            endpoints.push(EndpointSnapshot {
                endpoint: name,
                count,
                errors,
                p50_ms: latency.quantile(0.5) as f64 / 1e3,
                p99_ms: latency.quantile(0.99) as f64 / 1e3,
            });
        }
        MetricsSnapshot {
            total_requests,
            total_errors,
            endpoints,
            stages: *self.stages.lock().unwrap(),
            deltas: *self.deltas.lock().unwrap(),
            shard: *self.shard.lock().unwrap(),
            serving: self.serving_snapshot(),
        }
    }

    /// Connection-state histograms with their `[state]` labels.
    pub fn conn_state_histograms(&self) -> Vec<(Vec<String>, HistogramSnapshot)> {
        self.conn_state_hists.snapshot()
    }

    /// Per-endpoint `(label, count, errors, latency-histogram)` rows,
    /// sorted by label — the Prometheus exposition's request families.
    pub fn endpoint_histograms(&self) -> Vec<(String, u64, u64, HistogramSnapshot)> {
        let map = self.endpoints.read().unwrap();
        map.iter()
            .map(|(name, stats)| {
                (
                    name.clone(),
                    stats.count.load(Ordering::Relaxed),
                    stats.errors.load(Ordering::Relaxed),
                    stats.latency.snapshot(),
                )
            })
            .collect()
    }

    /// Stage latency histograms with their `[stage, layout, degree]`
    /// labels, sorted by label values.
    pub fn stage_histograms(&self) -> Vec<(Vec<String>, HistogramSnapshot)> {
        self.stage_hists.snapshot()
    }
}

/// Static label for a parallelism degree (avoids allocating per record for
/// the common 1–16 range).
fn degree_label(degree: usize) -> &'static str {
    const LABELS: [&str; 17] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16",
    ];
    LABELS.get(degree).copied().unwrap_or("many")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_percentiles() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record_request(
                "POST /query",
                Duration::from_micros(i * 1000),
                i % 10 == 0,
                Some(i),
            );
        }
        m.record_request("GET /healthz", Duration::from_micros(50), false, None);
        let snap = m.snapshot();
        assert_eq!(snap.total_requests, 101);
        assert_eq!(snap.total_errors, 10);
        let q = snap
            .endpoints
            .iter()
            .find(|e| e.endpoint == "POST /query")
            .unwrap();
        assert_eq!(q.count, 100);
        assert!((q.p50_ms - 50.0).abs() < 2.0, "p50 {}", q.p50_ms);
        assert!(q.p99_ms >= 98.0, "p99 {}", q.p99_ms);
    }

    #[test]
    fn stage_aggregates_accumulate() {
        let m = Metrics::new();
        let t = StageTimings {
            matching: Duration::from_millis(5),
            transformation: Duration::from_millis(2),
            detection: Duration::from_millis(3),
            fusion: Duration::ZERO,
        };
        m.record_prepare(&t, "row", 1);
        m.record_prepare(&t, "row", 1);
        m.record_fusion(Duration::from_millis(1), "row", 1);
        let s = m.snapshot().stages;
        assert_eq!(s.prepares, 2);
        assert_eq!(s.fusions, 1);
        assert_eq!(s.totals.matching, Duration::from_millis(10));
        assert_eq!(s.totals.fusion, Duration::from_millis(1));
    }

    #[test]
    fn stage_histograms_are_labeled() {
        let m = Metrics::new();
        let t = StageTimings {
            matching: Duration::from_millis(5),
            transformation: Duration::from_millis(2),
            detection: Duration::from_millis(3),
            fusion: Duration::ZERO,
        };
        m.record_prepare(&t, "columnar", 4);
        m.record_fusion(Duration::from_millis(1), "row", 2);
        let hists = m.stage_histograms();
        let labels: Vec<&[String]> = hists.iter().map(|(l, _)| l.as_slice()).collect();
        assert!(labels.contains(
            &&[
                "detect".to_string(),
                "columnar".to_string(),
                "4".to_string()
            ][..]
        ));
        assert!(labels.contains(&&["fuse".to_string(), "row".to_string(), "2".to_string()][..]));
        for (labels, snap) in &hists {
            assert_eq!(snap.count(), 1, "{labels:?}");
        }
    }

    #[test]
    fn delta_aggregates_accumulate() {
        let m = Metrics::new();
        m.record_delta(2, 1, 0, 1, 0, 0);
        m.record_delta(0, 0, 3, 2, 1, 1);
        let d = m.snapshot().deltas;
        assert_eq!(d.deltas, 2);
        assert_eq!((d.rows_inserted, d.rows_updated, d.rows_deleted), (2, 1, 3));
        assert_eq!(d.cache_upgrades, 3);
        assert_eq!(d.cache_upgrade_failures, 1);
        assert_eq!(d.full_rescores, 1);
    }

    #[test]
    fn serving_counters_accumulate() {
        let m = Metrics::new();
        m.record_overload_reject();
        m.record_overload_reject();
        m.record_read_timeout();
        m.record_idle_reclaim();
        m.record_worker_panic();
        m.record_conn_state("reading", Duration::from_micros(150));
        m.record_conn_state("executing", Duration::from_micros(900));
        let s = m.snapshot().serving;
        assert_eq!(s.overload_rejects, 2);
        assert_eq!(s.read_timeouts, 1);
        assert_eq!(s.idle_reclaims, 1);
        assert_eq!(s.worker_panics, 1);
        let hists = m.conn_state_histograms();
        assert_eq!(hists.len(), 2);
        let labels: Vec<&str> = hists.iter().map(|(l, _)| l[0].as_str()).collect();
        assert!(labels.contains(&"reading") && labels.contains(&"executing"));
    }

    #[test]
    fn shard_aggregates_accumulate() {
        let m = Metrics::new();
        m.record_shard_scatter(4, 2, 0, 0);
        m.record_shard_scatter(8, 3, 1, 1);
        m.record_shard_worker_call("w1:7788", Duration::from_micros(900), true);
        m.record_shard_worker_call("w2:7788", Duration::from_micros(1500), false);
        m.record_shard_batch();
        let s = m.snapshot().shard;
        assert_eq!(s.scatters, 2);
        assert_eq!(s.shards_planned, 12);
        assert_eq!(s.worker_requests, 5);
        assert_eq!(s.worker_retries, 1);
        assert_eq!(s.worker_fallbacks, 1);
        assert_eq!(s.worker_errors, 1);
        assert_eq!(s.worker_batches, 1);
        let hists = m.shard_worker_histograms();
        assert_eq!(hists.len(), 2);
        let labels: Vec<&str> = hists.iter().map(|(l, _)| l[0].as_str()).collect();
        assert!(labels.contains(&"w1:7788") && labels.contains(&"w2:7788"));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7], 99.0), 7.0);
        assert_eq!(percentile_us(&[3, 1, 2], 0.0), 1.0);
        assert_eq!(percentile_us(&[3, 1, 2], 100.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Sub-unit float samples keep millisecond precision through the
        // microsecond-bucket shim.
        assert!((percentile(&[0.003, 0.001, 0.002], 100.0) - 0.003).abs() < 1e-9);
    }

    /// The two shims agree with each other on the same data — the
    /// inconsistency the old sort-based pair allowed (interpolating
    /// differently per caller) is structurally gone.
    #[test]
    fn percentile_shims_agree() {
        let us: Vec<u64> = (1..=500u64).map(|i| i * 37).collect();
        let ms: Vec<f64> = us.iter().map(|&v| v as f64 / 1000.0).collect();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let a = percentile_us(&us, p);
            let b = percentile(&ms, p) * 1000.0;
            assert!((a - b).abs() < 1e-6, "p{p}: {a} vs {b}");
        }
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.record_request("POST /query", Duration::from_micros(i), i % 7 == 0, None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.total_requests, 4000);
        let q = &snap.endpoints[0];
        assert_eq!(q.count, 4000);
    }
}
