//! The fusion service: shared catalog + prepared-pipeline cache + metrics.
//!
//! [`FusionService`] is the transport-independent heart of the server: the
//! HTTP layer, the integration tests, and the exp9 bench all drive this
//! struct. Worker threads share one instance behind an `Arc`; the catalog
//! sits in an `RwLock` so concurrent queries read in parallel, and the
//! tables themselves are `Arc`-shared so a snapshot never copies data.
//!
//! Query semantics for `FUSE FROM`: the full automatic pipeline (DUMAS
//! matching → rename + outer union → duplicate detection → `objectID`
//! annotation) runs over the referenced sources — through the prepared
//! cache — and the query then executes against the annotated union. That
//! means `FUSE BY (objectID)` is available to every client for free, and a
//! repeated query over unchanged sources pays only fusion + projection.

use crate::cache::{CacheStats, PreparedCache, PreparedKey};
use crate::error::{Result, ServerError};
use crate::json::Json;
use crate::metrics::Metrics;
use hummer_core::{
    prepare_tables_traced, ExecutionLayout, HummerConfig, PreparedSources, RowMapping, StageTimings,
};
use hummer_delta::{concat_mappings, DeltaError, TableDelta};
use hummer_engine::{csv, Table, Value};
use hummer_fusion::FunctionRegistry;
use hummer_obs::{EventLog, EventRecord, Histogram, PromText, Span, Tracer};
use hummer_query::{
    execute, execute_combined_par, parse, FuseQuery, QueryOutput, VersionedTableSet,
};
use hummer_shard::{execute_sharded_with, handle_shard_request, CoordinatorConfig, RemoteBackend};
use hummer_store::{CatalogStore, Recovery, SnapshotEntry, StoreStats, WalCommitter, WalTicket};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pipeline (matcher + detector) configuration used for every prepare.
    pub pipeline: HummerConfig,
    /// Prepared-pipeline cache capacity (source sets, not bytes).
    pub cache_capacity: usize,
    /// Enable the fault-injection endpoint `POST /__test/panic` (the
    /// handler panics on purpose). Test/CI only — never expose this on a
    /// real deployment.
    pub debug_panic_route: bool,
    /// Coordinator mode: scatter the prepare pipeline's detection stage
    /// over remote shard workers. `None` (the default) prepares locally.
    pub coordinator: Option<CoordinatorOptions>,
    /// Structured event log (`--log-json` on `hummer-serve`). Disabled by
    /// default; when enabled, one sampled JSON line per request, delta
    /// batch, and shard scatter.
    pub event_log: EventLog,
}

/// Coordinator-mode parameters (`--coordinator workers=...` on
/// `hummer-serve`).
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Shard-worker addresses (`host:port`).
    pub workers: Vec<String>,
    /// Shard-count ceiling K passed to the planner.
    pub shards: usize,
    /// Per-worker request timeout.
    pub timeout: Duration,
    /// Fall back to local execution when a batch fails on both workers.
    pub fallback_local: bool,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            workers: Vec::new(),
            shards: 4,
            timeout: Duration::from_secs(30),
            fallback_local: true,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pipeline: HummerConfig::default(),
            cache_capacity: 64,
            debug_panic_route: false,
            coordinator: None,
            event_log: EventLog::disabled(),
        }
    }
}

impl ServiceConfig {
    /// A configuration tuned for narrow (2–3 column) schemas like the
    /// paper's student example: permissive duplicate sniffing and a lower
    /// duplicate-classification threshold (little evidence mass per tuple).
    pub fn narrow_schema() -> Self {
        use hummer_core::{DetectorConfig, MatcherConfig, SniffConfig};
        ServiceConfig {
            pipeline: HummerConfig {
                matcher: MatcherConfig {
                    sniff: SniffConfig {
                        min_similarity: 0.2,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                detector: DetectorConfig {
                    threshold: 0.7,
                    unsure_threshold: 0.55,
                    ..Default::default()
                },
                ..Default::default()
            },
            cache_capacity: 64,
            debug_panic_route: false,
            coordinator: None,
            event_log: EventLog::disabled(),
        }
    }
}

/// Descriptive facts about one registered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInfo {
    /// Registered name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column names.
    pub columns: Vec<String>,
    /// Content version (bumps on re-upload).
    pub version: u64,
}

/// What one query produced, plus serving metadata.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The executed query's output (final table + fusion by-products).
    pub output: QueryOutput,
    /// `Some(true)` when prepared artifacts came from the cache,
    /// `Some(false)` on a miss, `None` for non-fusion queries.
    pub cache_hit: Option<bool>,
    /// Stage cost of the prepared artifacts used (zero for plain queries).
    /// On a hit this is the *saved* cost, not cost paid by this request.
    pub prepare_timings: StageTimings,
    /// Wall time this request spent executing (fusion + projection; for a
    /// miss this excludes preparation, which is reported separately).
    pub execute_time: Duration,
    /// Shard fan-out of this request's prepare: `Some(k)` when coordinator
    /// mode scattered k shards for a cache miss, `Some(0)` on a
    /// coordinator-mode cache hit, `None` otherwise. Echoed in the
    /// `X-Hummer-Shards` response header for loadgen's coordinator report.
    pub shards: Option<usize>,
}

/// What applying one delta batch did, for the endpoint's response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaApplyResult {
    /// The table's post-delta shape and new content version.
    pub info: TableInfo,
    /// Rows inserted by this batch.
    pub inserted: usize,
    /// Rows updated by this batch.
    pub updated: usize,
    /// Rows deleted by this batch.
    pub deleted: usize,
    /// Prepared-cache entries upgraded in place.
    pub cache_upgrades: u64,
    /// Upgrade attempts that failed (those entries die; next query
    /// re-prepares cold).
    pub cache_upgrade_failures: u64,
    /// Upgrades that internally degraded to a full rescore.
    pub full_rescores: u64,
}

/// Parse the `POST /tables/{name}/delta` JSON body into a [`TableDelta`]:
///
/// ```json
/// {
///   "insert": [["Eve Adams", 30, "Bremen"]],
///   "update": [{"row": 2, "values": ["Mary Jones", 23, "Hamburg"]}],
///   "delete": [4]
/// }
/// ```
///
/// Cell values type like CSV ingestion: JSON strings go through
/// [`Value::infer`] (so `"25"` becomes an integer and `"2005-08-30"` a
/// date), numbers/booleans/null map directly.
pub fn parse_delta(name: &str, body: &str) -> Result<TableDelta> {
    let doc = Json::parse(body)?;
    let mut delta = TableDelta::new(name);
    if let Some(inserts) = doc.get("insert") {
        let rows = inserts
            .as_array()
            .ok_or_else(|| ServerError::BadRequest("`insert` must be an array of rows".into()))?;
        for row in rows {
            delta = delta.insert(json_row(row)?);
        }
    }
    if let Some(updates) = doc.get("update") {
        let entries = updates
            .as_array()
            .ok_or_else(|| ServerError::BadRequest("`update` must be an array".into()))?;
        for entry in entries {
            let row = entry
                .get("row")
                .and_then(Json::as_i64)
                .filter(|r| *r >= 0)
                .ok_or_else(|| {
                    ServerError::BadRequest("`update` entries need a non-negative `row`".into())
                })?;
            let values = entry.get("values").ok_or_else(|| {
                ServerError::BadRequest("`update` entries need a `values` array".into())
            })?;
            delta = delta.update(row as usize, json_row(values)?);
        }
    }
    if let Some(deletes) = doc.get("delete") {
        let rows = deletes
            .as_array()
            .ok_or_else(|| ServerError::BadRequest("`delete` must be an array of rows".into()))?;
        for row in rows {
            let row = row.as_i64().filter(|r| *r >= 0).ok_or_else(|| {
                ServerError::BadRequest("`delete` entries must be non-negative row indices".into())
            })?;
            delta = delta.delete(row as usize);
        }
    }
    if delta.is_empty() {
        return Err(ServerError::BadRequest(
            "delta body carries no `insert`, `update`, or `delete` ops".into(),
        ));
    }
    Ok(delta)
}

/// One JSON row (array of scalars) as engine values.
fn json_row(row: &Json) -> Result<Vec<Value>> {
    let cells = row
        .as_array()
        .ok_or_else(|| ServerError::BadRequest("a delta row must be an array of values".into()))?;
    cells.iter().map(json_value).collect()
}

/// A JSON scalar as an engine value (strings type-inferred like CSV cells).
fn json_value(v: &Json) -> Result<Value> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::infer(s)),
        Json::Arr(_) | Json::Obj(_) => Err(ServerError::BadRequest(
            "delta cell values must be scalars".into(),
        )),
    }
}

/// The shared, thread-safe fusion service.
///
/// With a durable store attached ([`FusionService::with_store`]), every
/// catalog mutation — register, delta, deregister — is *enqueued* to the
/// store's WAL under the catalog write lock (so WAL order always equals
/// version order), applied, and then — after the lock is released — the
/// writer waits for group durability before acking. One fsync covers every
/// writer that queued behind it; a durability failure poisons the store,
/// so no later mutation can commit on top of a non-durable one. Reads
/// never touch the store.
#[derive(Debug)]
pub struct FusionService {
    catalog: RwLock<VersionedTableSet>,
    cache: Mutex<PreparedCache>,
    metrics: Metrics,
    registry: FunctionRegistry,
    config: HummerConfig,
    /// Lock order: `catalog` write lock first, then the store — never the
    /// other way around.
    store: Option<Mutex<CatalogStore>>,
    /// Waits on WAL tickets without holding `store` (or the catalog lock)
    /// — this is what lets concurrent commits share one fsync.
    committer: Option<WalCommitter>,
    /// Fault-injection endpoint toggle (see [`ServiceConfig`]).
    debug_panic_route: bool,
    /// Coordinator-mode parameters; `None` prepares locally.
    coordinator: Option<CoordinatorOptions>,
    /// Sampled structured event log; disabled by default.
    events: EventLog,
}

impl FusionService {
    /// A service with the given configuration and an empty, in-memory-only
    /// catalog.
    pub fn new(config: ServiceConfig) -> Self {
        FusionService {
            catalog: RwLock::new(VersionedTableSet::new()),
            cache: Mutex::new(PreparedCache::new(config.cache_capacity)),
            metrics: Metrics::new(),
            registry: FunctionRegistry::standard(),
            config: config.pipeline,
            store: None,
            committer: None,
            debug_panic_route: config.debug_panic_route,
            coordinator: config.coordinator,
            events: config.event_log,
        }
    }

    /// A durable service: the catalog is seeded from `recovery` — content
    /// versions included, so prepared-pipeline cache keys stay meaningful
    /// across restarts — and every further mutation is logged to `store`
    /// before it is acked.
    pub fn with_store(config: ServiceConfig, store: CatalogStore, recovery: Recovery) -> Self {
        let mut catalog = VersionedTableSet::new();
        for t in recovery.tables {
            catalog.restore(t.alias, t.table, t.version);
        }
        // The log may have assigned versions beyond every *surviving*
        // table's (a deleted table held the highest); never reuse them.
        catalog.advance_version_clock(recovery.last_version);
        let committer = store.committer();
        FusionService {
            catalog: RwLock::new(catalog),
            cache: Mutex::new(PreparedCache::new(config.cache_capacity)),
            metrics: Metrics::new(),
            registry: FunctionRegistry::standard(),
            config: config.pipeline,
            store: Some(Mutex::new(store)),
            committer: Some(committer),
            debug_panic_route: config.debug_panic_route,
            coordinator: config.coordinator,
            events: config.event_log,
        }
    }

    /// Whether the fault-injection endpoint is enabled (test/CI only).
    pub fn debug_panic_route(&self) -> bool {
        self.debug_panic_route
    }

    /// Coordinator-mode parameters, when this server scatters prepares.
    pub fn coordinator(&self) -> Option<&CoordinatorOptions> {
        self.coordinator.as_ref()
    }

    /// Execute a shard batch as a *worker*: decode the binary request from
    /// a coordinator, run it in-process, and return the encoded response
    /// (`POST /shard/execute`).
    pub fn shard_execute(&self, body: &[u8], parent: &Span) -> Result<Vec<u8>> {
        let mut span = parent.child("shard_batch");
        let response = handle_shard_request(body, &self.registry, self.config.parallelism, &span)?;
        span.count("response_bytes", response.len() as u64);
        drop(span);
        self.metrics.record_shard_batch();
        Ok(response)
    }

    /// Wait for an enqueued WAL record to become durable. Call *after*
    /// releasing the catalog write lock and *before* acking the mutation.
    fn wait_durable(&self, ticket: WalTicket) -> Result<()> {
        let committer = self
            .committer
            .as_ref()
            .expect("a WAL ticket implies an attached store");
        committer.wait(ticket)?;
        Ok(())
    }

    /// The metrics registry (workers record; `/metrics` snapshots).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The structured event log (a disabled log when `--log-json` is off).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The service tracer — the same instance the pipeline stages record
    /// into (it rides on `HummerConfig::obs`), so a per-request root span
    /// created here parents every stage span of that request.
    pub fn tracer(&self) -> &Tracer {
        &self.config.obs.tracer
    }

    /// The `stage_seconds` label value for the configured execution layout.
    pub fn layout_label(&self) -> &'static str {
        match self.config.layout {
            ExecutionLayout::Row => "row",
            ExecutionLayout::Columnar => "columnar",
        }
    }

    /// The configured intra-query parallelism degree.
    pub fn degree(&self) -> usize {
        self.config.parallelism.get()
    }

    /// The WAL-commit fsync latency histogram, when a store is attached.
    /// `Arc`-shared so `/metrics` reads it without holding the store lock.
    pub fn store_fsync_histogram(&self) -> Option<Arc<Histogram>> {
        self.store
            .as_ref()
            .map(|s| s.lock().unwrap().fsync_histogram())
    }

    /// The records-per-group-commit histogram, when a store is attached.
    pub fn store_batch_histogram(&self) -> Option<Arc<Histogram>> {
        self.store
            .as_ref()
            .map(|s| s.lock().unwrap().batch_histogram())
    }

    /// Prepared-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Durable-store counters, when a store is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.lock().unwrap().stats())
    }

    /// Roll the WAL into a fresh snapshot if it crossed the threshold.
    /// Called with the catalog write lock held so the snapshot is a
    /// consistent image. Compaction failure is non-fatal (the WAL record
    /// is already durable); it is reported and retried after the next
    /// mutation.
    fn compact_if_needed(&self, catalog: &VersionedTableSet) {
        let Some(store) = &self.store else { return };
        let mut store = store.lock().unwrap();
        if !store.wants_compaction() {
            return;
        }
        let entries = catalog.entries();
        let snapshot: Vec<SnapshotEntry<'_>> = entries
            .iter()
            .map(|e| SnapshotEntry {
                alias: e.table.name(),
                version: e.version,
                table: e.table.as_ref(),
            })
            .collect();
        if let Err(e) = store.compact(&snapshot) {
            eprintln!("hummer-server: WAL compaction failed (will retry): {e}");
        }
    }

    /// Parse and register CSV under `name` (re-upload replaces and bumps the
    /// version, invalidating cached pipelines over the table). When durable,
    /// the registration is WAL-logged before the catalog changes.
    pub fn put_table(&self, name: &str, csv_text: &str) -> Result<TableInfo> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ServerError::BadRequest(format!(
                "table name `{name}` must be non-empty and alphanumeric/underscore/dash"
            )));
        }
        let table = csv::read_csv_str(name, csv_text)?;
        let info_columns: Vec<String> = table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows = table.len();
        let (version, ticket) = {
            let mut catalog = self.catalog.write().unwrap();
            let version = catalog.upcoming_version();
            let ticket = match &self.store {
                Some(store) => Some(
                    store
                        .lock()
                        .unwrap()
                        .enqueue_register(name, version, &table)?,
                ),
                None => None,
            };
            let assigned = catalog.register(name, table);
            debug_assert_eq!(assigned, version);
            self.compact_if_needed(&catalog);
            (assigned, ticket)
        };
        if let Some(ticket) = ticket {
            self.wait_durable(ticket)?;
        }
        Ok(TableInfo {
            name: name.to_string(),
            rows,
            columns: info_columns,
            version,
        })
    }

    /// Remove a table from the catalog; returns its final shape. When
    /// durable, the removal is WAL-logged before it is applied. Prepared
    /// cache entries over the removed table become unreachable (versions
    /// are never reused) and age out via LRU.
    pub fn delete_table(&self, name: &str) -> Result<TableInfo> {
        let (info, ticket) = {
            let mut catalog = self.catalog.write().unwrap();
            let entry = catalog
                .get(name)
                .ok_or_else(|| ServerError::UnknownTable(name.to_string()))?;
            let info = TableInfo {
                name: entry.table.name().to_string(),
                rows: entry.table.len(),
                columns: entry
                    .table
                    .schema()
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                version: entry.version,
            };
            let ticket = match &self.store {
                Some(store) => Some(store.lock().unwrap().enqueue_deregister(name)?),
                None => None,
            };
            catalog.remove(name);
            self.compact_if_needed(&catalog);
            (info, ticket)
        };
        if let Some(ticket) = ticket {
            self.wait_durable(ticket)?;
        }
        Ok(info)
    }

    /// Apply a parsed delta batch to table `name`: update the catalog (new
    /// content version) and **upgrade** every prepared-pipeline cache entry
    /// that referenced the old version, instead of letting it die. Repeat
    /// fusion queries over the updated sources therefore hit the cache —
    /// no cold re-prepare.
    pub fn apply_delta(&self, name: &str, delta: &TableDelta) -> Result<DeltaApplyResult> {
        self.apply_delta_traced(name, delta, &Span::noop())
    }

    /// [`FusionService::apply_delta`] recording cache-upgrade work as child
    /// spans of `parent` (the HTTP layer's per-request span).
    pub fn apply_delta_traced(
        &self,
        name: &str,
        delta: &TableDelta,
        parent: &Span,
    ) -> Result<DeltaApplyResult> {
        let started = Instant::now();
        let counts = delta.counts();
        // Catalog swap under the write lock (delta application is linear).
        // When durable, the delta is WAL-enqueued — as the TableDelta itself
        // — before the catalog changes, still under the lock, so log order
        // always equals version order; the durability wait happens after
        // the lock is released, so concurrent deltas share one fsync.
        let (lname, old_version, new_table, mapping, info, ticket) = {
            let mut catalog = self.catalog.write().unwrap();
            let entry = catalog
                .get(name)
                .ok_or_else(|| ServerError::UnknownTable(name.to_string()))?;
            // Re-register under the table's canonical alias, not the
            // request's casing: a delta must never rename the table (and
            // WAL replay preserves the registered alias, so anything else
            // would break recovery's identity contract).
            let canonical = entry.table.name().to_string();
            let old_version = entry.version;
            let (new_table, mapping) = delta
                .apply(&entry.table)
                .map_err(|e: DeltaError| ServerError::BadRequest(e.to_string()))?;
            let rows = new_table.len();
            let columns: Vec<String> = new_table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            let upcoming = catalog.upcoming_version();
            let ticket = match &self.store {
                Some(store) => Some(
                    store
                        .lock()
                        .unwrap()
                        .enqueue_delta(&canonical, upcoming, delta)?,
                ),
                None => None,
            };
            let version = catalog.register(canonical.as_str(), new_table);
            debug_assert_eq!(version, upcoming);
            self.compact_if_needed(&catalog);
            let new_table = Arc::clone(&catalog.get(name).expect("just registered").table);
            (
                canonical.to_ascii_lowercase(),
                old_version,
                new_table,
                mapping,
                TableInfo {
                    name: canonical,
                    rows,
                    columns,
                    version,
                },
                ticket,
            )
        };
        if let Some(ticket) = ticket {
            self.wait_durable(ticket)?;
        }

        // Upgrade cached pipelines over the superseded version. The cache
        // lock is not held while upgrading; the eventual insert's stale
        // purge retires the old-version entry.
        let candidates = self
            .cache
            .lock()
            .unwrap()
            .entries_for_source(&lname, old_version);
        let mut upgraded = 0u64;
        let mut failures = 0u64;
        let mut full_rescores = 0u64;
        let mut upgrade_span = parent.child("upgrade");
        for (key, artifacts) in candidates {
            match self.upgrade_entry(
                &key,
                &artifacts,
                &lname,
                info.version,
                &new_table,
                &mapping,
                &upgrade_span,
            ) {
                Ok(Some(full_rescore)) => {
                    upgraded += 1;
                    full_rescores += u64::from(full_rescore);
                }
                Ok(None) => {} // another source in the entry went stale
                Err(_) => failures += 1,
            }
        }
        upgrade_span.count("cache_upgrades", upgraded);
        upgrade_span.count("cache_upgrade_failures", failures);
        upgrade_span.count("full_rescores", full_rescores);
        drop(upgrade_span);
        self.metrics.record_delta(
            counts.inserted as u64,
            counts.updated as u64,
            counts.deleted as u64,
            upgraded,
            failures,
            full_rescores,
        );
        self.events.emit(&EventRecord {
            kind: "delta",
            trace: parent.trace_id(),
            endpoint: &info.name,
            status: 200,
            latency_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            shards: None,
            error: false,
        });
        Ok(DeltaApplyResult {
            info,
            inserted: counts.inserted,
            updated: counts.updated,
            deleted: counts.deleted,
            cache_upgrades: upgraded,
            cache_upgrade_failures: failures,
            full_rescores,
        })
    }

    /// Upgrade one cached entry to the delta'd table. Returns
    /// `Ok(Some(full_rescore))` on success, `Ok(None)` when the entry is
    /// unrecoverably stale (another referenced source changed meanwhile, or
    /// a concurrent delta already superseded `new_version`).
    #[allow(clippy::too_many_arguments)]
    fn upgrade_entry(
        &self,
        key: &PreparedKey,
        artifacts: &Arc<PreparedSources>,
        changed: &str,
        new_version: u64,
        new_table: &Arc<Table>,
        mapping: &RowMapping,
        parent: &Span,
    ) -> Result<Option<bool>> {
        let mut tables: Vec<Arc<Table>> = Vec::with_capacity(key.len());
        let mut per_source: Vec<RowMapping> = Vec::with_capacity(key.len());
        let mut new_key: PreparedKey = Vec::with_capacity(key.len());
        {
            let catalog = self.catalog.read().unwrap();
            for (alias, version) in key {
                if alias == changed {
                    // Key the upgraded artifacts with the version *this*
                    // delta produced — never the catalog's current version:
                    // a concurrent delta may already have moved the table
                    // past ours, and caching our (older) content under the
                    // newest key would serve stale fusions as cache hits.
                    let current = catalog
                        .get(alias)
                        .ok_or_else(|| ServerError::UnknownTable(alias.clone()))?;
                    if current.version != new_version {
                        return Ok(None); // superseded while we upgraded
                    }
                    tables.push(Arc::clone(new_table));
                    per_source.push(mapping.clone());
                    new_key.push((alias.clone(), new_version));
                } else {
                    let current = catalog
                        .get(alias)
                        .ok_or_else(|| ServerError::UnknownTable(alias.clone()))?;
                    if current.version != *version {
                        return Ok(None); // entry stale beyond this delta
                    }
                    tables.push(Arc::clone(&current.table));
                    per_source.push(RowMapping::identity(current.table.len()));
                    new_key.push((alias.clone(), *version));
                }
            }
        }
        let union_mapping = concat_mappings(&per_source)?;
        let refs: Vec<&Table> = tables.iter().map(|t| t.as_ref()).collect();
        let (upgraded, report) =
            artifacts.apply_delta_traced(&refs, &union_mapping, &self.config, parent)?;
        self.cache
            .lock()
            .unwrap()
            .insert(new_key, Arc::new(upgraded));
        Ok(Some(report.detection.full_rescore))
    }

    /// All registered tables, sorted by name.
    pub fn tables(&self) -> Vec<TableInfo> {
        self.catalog
            .read()
            .unwrap()
            .entries()
            .iter()
            .map(|e| TableInfo {
                name: e.table.name().to_string(),
                rows: e.table.len(),
                columns: e
                    .table
                    .schema()
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                version: e.version,
            })
            .collect()
    }

    /// Parse and execute one Fuse By SQL statement.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_traced(sql, &Span::noop())
    }

    /// [`FusionService::query`] recording pipeline stage spans (and
    /// prepared-cache counters) as children of `parent`.
    pub fn query_traced(&self, sql: &str, parent: &Span) -> Result<QueryResult> {
        let q = parse(sql)?;
        if q.from.fuse {
            self.fusion_query(&q, parent)
        } else {
            self.plain_query(&q)
        }
    }

    /// Plain SQL: execute against a catalog snapshot (cheap `Arc` clones, so
    /// the read lock is held only for the clone).
    fn plain_query(&self, q: &FuseQuery) -> Result<QueryResult> {
        let snapshot = self.catalog.read().unwrap().clone();
        let t0 = Instant::now();
        let output = execute(q, &snapshot, &self.registry)?;
        Ok(QueryResult {
            output,
            cache_hit: None,
            prepare_timings: StageTimings::default(),
            execute_time: t0.elapsed(),
            shards: None,
        })
    }

    /// `FUSE FROM`: run (or reuse) the prepared pipeline over the referenced
    /// sources, then execute the query against the annotated union.
    fn fusion_query(&self, q: &FuseQuery, parent: &Span) -> Result<QueryResult> {
        // Snapshot the referenced tables + versions under the read lock.
        let (key, tables): (PreparedKey, Vec<Arc<Table>>) = {
            let catalog = self.catalog.read().unwrap();
            let mut key = Vec::with_capacity(q.from.tables.len());
            let mut tables = Vec::with_capacity(q.from.tables.len());
            for alias in &q.from.tables {
                let entry = catalog
                    .get(alias)
                    .ok_or_else(|| ServerError::UnknownTable(alias.clone()))?;
                key.push((alias.to_ascii_lowercase(), entry.version));
                tables.push(Arc::clone(&entry.table));
            }
            (key, tables)
        };

        let (artifacts, hit, shards) = self.prepared_for(&key, &tables, parent)?;
        let mut fuse_span = parent.child("fuse");
        let t0 = Instant::now();
        // The same per-request degree the prepare stages use: the worker
        // pool provides inter-query concurrency, `config.parallelism`
        // intra-query threads — configure them to multiply to the machine
        // (see `ServerConfig`).
        let output = execute_combined_par(
            q,
            &artifacts.annotated,
            &self.registry,
            self.config.parallelism,
        )?;
        let execute_time = t0.elapsed();
        if fuse_span.is_recording() {
            fuse_span.count("result_rows", output.table.len() as u64);
            if let Some(info) = &output.fusion {
                fuse_span.count("fused_rows", info.fused_table.len() as u64);
                fuse_span.count("conflicts", info.conflict_count as u64);
            }
            fuse_span.count("degree", self.config.parallelism.get() as u64);
        }
        drop(fuse_span);
        self.metrics
            .record_fusion(execute_time, self.layout_label(), self.degree());
        Ok(QueryResult {
            output,
            cache_hit: Some(hit),
            prepare_timings: artifacts.timings,
            execute_time,
            shards,
        })
    }

    /// Cache lookup, computing and inserting on a miss.
    ///
    /// The cache lock is *not* held during preparation — concurrent misses
    /// on the same key may prepare twice, but a slow prepare never blocks
    /// hits on other keys; the duplicate insert is idempotent.
    fn prepared_for(
        &self,
        key: &PreparedKey,
        tables: &[Arc<Table>],
        parent: &Span,
    ) -> Result<(Arc<PreparedSources>, bool, Option<usize>)> {
        let coordinated = self.coordinator.is_some();
        if let Some(found) = self.cache.lock().unwrap().get(key) {
            if parent.is_recording() {
                parent.child("prepare").count("cache_hits", 1);
            }
            return Ok((found, true, coordinated.then_some(0)));
        }
        let refs: Vec<&Table> = tables.iter().map(|t| t.as_ref()).collect();
        let mut prepare_span = parent.child("prepare");
        prepare_span.count("cache_misses", 1);
        let (prepared, shards) = match &self.coordinator {
            Some(co) => {
                // Scatter the prepare: matching + transformation run here,
                // detection fans out to the shard workers, and the combiner
                // rebuilds detection + annotated — bit-identical to the
                // local prepare (the cache entry is interchangeable).
                let backend = RemoteBackend::new(CoordinatorConfig {
                    workers: co.workers.clone(),
                    timeout: co.timeout,
                    fallback_local: co.fallback_local,
                });
                let scatter_started = Instant::now();
                let sharded = execute_sharded_with(
                    &refs,
                    &self.config,
                    co.shards,
                    &[],
                    &self.registry,
                    &backend,
                    &prepare_span,
                )?;
                self.events.emit(&EventRecord {
                    kind: "scatter",
                    trace: parent.trace_id(),
                    endpoint: "prepare",
                    status: 200,
                    latency_us: scatter_started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                    shards: Some(sharded.shards as u64),
                    error: false,
                });
                self.metrics.record_shard_scatter(
                    sharded.stats.shards as u64,
                    sharded.stats.requests as u64,
                    sharded.stats.retries as u64,
                    sharded.stats.fallbacks as u64,
                );
                for call in &sharded.stats.worker_calls {
                    self.metrics
                        .record_shard_worker_call(&call.worker, call.latency, call.ok);
                }
                (Arc::new(sharded.prepared), Some(sharded.shards))
            }
            None => (
                Arc::new(prepare_tables_traced(&refs, &self.config, &prepare_span)?),
                None,
            ),
        };
        drop(prepare_span);
        self.metrics
            .record_prepare(&prepared.timings, self.layout_label(), self.degree());
        self.cache
            .lock()
            .unwrap()
            .insert(key.clone(), Arc::clone(&prepared));
        Ok((prepared, false, shards))
    }
}

/// A cell value as wire JSON.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Text(s) => Json::Str(s.clone()),
        Value::Date(d) => Json::Str(d.to_string()),
    }
}

/// A table as wire JSON: `{"columns": [...], "rows": [[...], ...]}`.
pub fn table_to_json(table: &Table) -> Json {
    let columns: Vec<Json> = table
        .schema()
        .names()
        .iter()
        .map(|n| Json::Str(n.to_string()))
        .collect();
    let rows: Vec<Json> = table
        .rows()
        .iter()
        .map(|r| Json::Arr(r.values().iter().map(value_to_json).collect()))
        .collect();
    Json::object()
        .with("columns", Json::Arr(columns))
        .with("rows", Json::Arr(rows))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The `POST /query` response document.
pub fn query_result_to_json(r: &QueryResult) -> Json {
    let mut doc = Json::object()
        .with("result", table_to_json(&r.output.table))
        .with("row_count", r.output.table.len())
        .with("fused", r.output.fusion.is_some());
    if let Some(info) = &r.output.fusion {
        let sources: Vec<Json> = info
            .lineage
            .all_sources()
            .into_iter()
            .map(Json::Str)
            .collect();
        doc.push(
            "fusion",
            Json::object()
                .with("conflict_count", info.conflict_count)
                .with("fused_rows", info.fused_table.len())
                .with("sources", Json::Arr(sources)),
        );
    }
    doc.push(
        "cache",
        match r.cache_hit {
            Some(true) => Json::Str("hit".into()),
            Some(false) => Json::Str("miss".into()),
            None => Json::Str("n/a".into()),
        },
    );
    doc.push(
        "timings_ms",
        Json::object()
            .with("matching", ms(r.prepare_timings.matching))
            .with("transformation", ms(r.prepare_timings.transformation))
            .with("detection", ms(r.prepare_timings.detection))
            .with("execute", ms(r.execute_time)),
    );
    if let Some(k) = r.shards {
        doc.push("shards", Json::Int(k as i64));
    }
    doc
}

/// The `POST /tables/{name}/delta` response document.
pub fn delta_result_to_json(r: &DeltaApplyResult) -> Json {
    Json::object()
        .with("table", r.info.name.clone())
        .with("rows", r.info.rows)
        .with("version", r.info.version)
        .with(
            "applied",
            Json::object()
                .with("inserted", r.inserted)
                .with("updated", r.updated)
                .with("deleted", r.deleted),
        )
        .with(
            "cache",
            Json::object()
                .with("upgraded", r.cache_upgrades)
                .with("upgrade_failures", r.cache_upgrade_failures)
                .with("full_rescores", r.full_rescores),
        )
}

/// The `GET /metrics` response document.
pub fn metrics_to_json(service: &FusionService) -> Json {
    let snap = service.metrics().snapshot();
    let cache = service.cache_stats();
    let endpoints: Vec<Json> = snap
        .endpoints
        .iter()
        .map(|e| {
            Json::object()
                .with("endpoint", e.endpoint.clone())
                .with("count", e.count)
                .with("errors", e.errors)
                .with("p50_ms", e.p50_ms)
                .with("p99_ms", e.p99_ms)
        })
        .collect();
    let mut doc = Json::object()
        .with("total_requests", snap.total_requests)
        .with("total_errors", snap.total_errors)
        .with("endpoints", Json::Arr(endpoints))
        .with(
            "stages_total_ms",
            Json::object()
                .with("matching", ms(snap.stages.totals.matching))
                .with("transformation", ms(snap.stages.totals.transformation))
                .with("detection", ms(snap.stages.totals.detection))
                .with("fusion", ms(snap.stages.totals.fusion))
                .with("prepares", snap.stages.prepares)
                .with("fusions", snap.stages.fusions),
        )
        .with(
            "prepared_cache",
            Json::object()
                .with("hits", cache.hits)
                .with("misses", cache.misses)
                .with("evictions", cache.evictions)
                .with("entries", cache.entries)
                .with("hit_rate", cache.hit_rate())
                .with("upgrades", snap.deltas.cache_upgrades),
        )
        .with(
            "deltas",
            Json::object()
                .with("applied", snap.deltas.deltas)
                .with("rows_inserted", snap.deltas.rows_inserted)
                .with("rows_updated", snap.deltas.rows_updated)
                .with("rows_deleted", snap.deltas.rows_deleted)
                .with("cache_upgrades", snap.deltas.cache_upgrades)
                .with("cache_upgrade_failures", snap.deltas.cache_upgrade_failures)
                .with("full_rescores", snap.deltas.full_rescores),
        )
        .with(
            "serving",
            Json::object()
                .with("overload_rejects", snap.serving.overload_rejects)
                .with("read_timeouts", snap.serving.read_timeouts)
                .with("idle_reclaims", snap.serving.idle_reclaims)
                .with("worker_panics", snap.serving.worker_panics),
        );
    let workers: Vec<Json> = service
        .metrics()
        .shard_worker_histograms()
        .iter()
        .map(|(labels, hist)| {
            Json::object()
                .with("worker", labels[0].clone())
                .with("calls", hist.count())
                .with("p50_ms", hist.quantile(0.5) as f64 / 1e3)
                .with("p99_ms", hist.quantile(0.99) as f64 / 1e3)
        })
        .collect();
    doc.push(
        "shard",
        Json::object()
            .with("scatters", snap.shard.scatters)
            .with("shards_planned", snap.shard.shards_planned)
            .with("worker_requests", snap.shard.worker_requests)
            .with("worker_retries", snap.shard.worker_retries)
            .with("worker_fallbacks", snap.shard.worker_fallbacks)
            .with("worker_errors", snap.shard.worker_errors)
            .with("worker_batches", snap.shard.worker_batches)
            .with("workers", Json::Arr(workers)),
    );
    if let Some(store) = service.store_stats() {
        doc.push(
            "store",
            Json::object()
                .with("generation", store.generation)
                .with("wal_bytes", store.wal_bytes)
                .with("wal_records", store.wal_records)
                .with("snapshots_written", store.snapshots_written)
                .with("recovery_ms", store.recovery_ms)
                .with("fsync", store.fsync)
                .with("fsyncs", store.fsyncs)
                .with("group_commits", store.group_commits),
        );
    }
    doc
}

/// The `GET /metrics` response body: the whole registry in Prometheus text
/// exposition format — request counters and latency histograms per
/// endpoint, stage histograms labeled `(stage, layout, degree)`,
/// prepared-cache and delta counters, durable-store gauges (including the
/// WAL fsync latency histogram), intra-query fork totals, and the trace
/// ring's occupancy.
pub fn metrics_to_prometheus(service: &FusionService) -> String {
    let mut out = PromText::new();
    let endpoints = service.metrics().endpoint_histograms();

    out.header(
        "hummer_requests_total",
        "Requests served, by endpoint.",
        "counter",
    );
    for (endpoint, count, _, _) in &endpoints {
        out.sample(
            "hummer_requests_total",
            &[("endpoint", endpoint)],
            *count as f64,
        );
    }
    out.header(
        "hummer_request_errors_total",
        "Requests that returned an error status, by endpoint.",
        "counter",
    );
    for (endpoint, _, errors, _) in &endpoints {
        out.sample(
            "hummer_request_errors_total",
            &[("endpoint", endpoint)],
            *errors as f64,
        );
    }
    out.header(
        "hummer_request_seconds",
        "End-to-end request latency, by endpoint.",
        "histogram",
    );
    for (endpoint, _, _, latency) in &endpoints {
        out.histogram_us(
            "hummer_request_seconds",
            &[("endpoint", endpoint)],
            latency,
            None,
        );
    }

    out.header(
        "hummer_stage_seconds",
        "Pipeline stage latency, by stage, execution layout, and parallelism degree.",
        "histogram",
    );
    for (labels, snap) in &service.metrics().stage_histograms() {
        out.histogram_us(
            "hummer_stage_seconds",
            &[
                ("stage", &labels[0]),
                ("layout", &labels[1]),
                ("degree", &labels[2]),
            ],
            snap,
            None,
        );
    }

    out.header(
        "hummer_conn_state_seconds",
        "Time connections spend in each lifecycle state (event loop).",
        "histogram",
    );
    for (labels, snap) in &service.metrics().conn_state_histograms() {
        out.histogram_us(
            "hummer_conn_state_seconds",
            &[("state", &labels[0])],
            snap,
            None,
        );
    }

    let cache = service.cache_stats();
    let snap = service.metrics().snapshot();
    for (name, help, value) in [
        (
            "hummer_overload_rejects_total",
            "Connections refused with 503 at the admission gate.",
            snap.serving.overload_rejects as f64,
        ),
        (
            "hummer_read_timeouts_total",
            "Started requests that stalled past the read deadline (408).",
            snap.serving.read_timeouts as f64,
        ),
        (
            "hummer_idle_reclaims_total",
            "Idle keep-alive connections reclaimed silently.",
            snap.serving.idle_reclaims as f64,
        ),
        (
            "hummer_worker_panics_total",
            "Requests whose handler panicked (answered 500, socket closed).",
            snap.serving.worker_panics as f64,
        ),
        (
            "hummer_prepared_cache_hits_total",
            "Prepared-pipeline cache hits.",
            cache.hits as f64,
        ),
        (
            "hummer_prepared_cache_misses_total",
            "Prepared-pipeline cache misses (cold prepares).",
            cache.misses as f64,
        ),
        (
            "hummer_prepared_cache_evictions_total",
            "Prepared-pipeline cache LRU evictions.",
            cache.evictions as f64,
        ),
        (
            "hummer_prepared_cache_upgrades_total",
            "Prepared entries upgraded in place by deltas.",
            snap.deltas.cache_upgrades as f64,
        ),
        (
            "hummer_prepared_cache_upgrade_failures_total",
            "Delta upgrades that failed (entry dropped).",
            snap.deltas.cache_upgrade_failures as f64,
        ),
        (
            "hummer_deltas_applied_total",
            "Delta batches applied.",
            snap.deltas.deltas as f64,
        ),
        (
            "hummer_deltas_rows_inserted_total",
            "Rows inserted by deltas.",
            snap.deltas.rows_inserted as f64,
        ),
        (
            "hummer_deltas_rows_updated_total",
            "Rows updated by deltas.",
            snap.deltas.rows_updated as f64,
        ),
        (
            "hummer_deltas_rows_deleted_total",
            "Rows deleted by deltas.",
            snap.deltas.rows_deleted as f64,
        ),
        (
            "hummer_deltas_full_rescores_total",
            "Delta upgrades that degraded to a full rescore.",
            snap.deltas.full_rescores as f64,
        ),
        (
            "hummer_par_forks_total",
            "Scoped worker threads forked for intra-query parallelism.",
            hummer_par::forked_threads_total() as f64,
        ),
        (
            "hummer_shard_scatters_total",
            "Coordinator scatter-gather rounds executed.",
            snap.shard.scatters as f64,
        ),
        (
            "hummer_shard_shards_total",
            "Shards executed across all scatters.",
            snap.shard.shards_planned as f64,
        ),
        (
            "hummer_shard_worker_requests_total",
            "HTTP requests issued to shard workers (retries included).",
            snap.shard.worker_requests as f64,
        ),
        (
            "hummer_shard_worker_retries_total",
            "Shard batches retried on a distinct worker.",
            snap.shard.worker_retries as f64,
        ),
        (
            "hummer_shard_worker_fallbacks_total",
            "Shard batches that fell back to local execution.",
            snap.shard.worker_fallbacks as f64,
        ),
        (
            "hummer_shard_worker_errors_total",
            "Worker calls that failed (connect, timeout, bad response).",
            snap.shard.worker_errors as f64,
        ),
        (
            "hummer_shard_worker_batches_total",
            "Shard batches this process executed as a worker.",
            snap.shard.worker_batches as f64,
        ),
        (
            "hummer_events_written_total",
            "Structured event-log lines written (sampler kept them).",
            service.events().written() as f64,
        ),
        (
            "hummer_events_dropped_total",
            "Structured events dropped by the sampler (fast successes).",
            service.events().dropped() as f64,
        ),
    ] {
        out.header(name, help, "counter");
        out.sample(name, &[], value);
    }

    let shard_workers = service.metrics().shard_worker_histograms();
    if !shard_workers.is_empty() {
        out.header(
            "hummer_shard_worker_seconds",
            "Latency of coordinator calls to shard workers, by worker address.",
            "histogram",
        );
        for (labels, hist) in &shard_workers {
            out.histogram_us(
                "hummer_shard_worker_seconds",
                &[("worker", &labels[0])],
                hist,
                None,
            );
        }
    }
    out.header(
        "hummer_prepared_cache_entries",
        "Prepared-pipeline cache live entries.",
        "gauge",
    );
    out.sample("hummer_prepared_cache_entries", &[], cache.entries as f64);

    if let Some(store) = service.store_stats() {
        for (name, help, kind, value) in [
            (
                "hummer_store_generation",
                "Live snapshot generation.",
                "gauge",
                store.generation as f64,
            ),
            (
                "hummer_store_wal_bytes",
                "Current WAL size in bytes.",
                "gauge",
                store.wal_bytes as f64,
            ),
            (
                "hummer_store_wal_records",
                "Records in the current WAL.",
                "gauge",
                store.wal_records as f64,
            ),
            (
                "hummer_store_snapshots_total",
                "Snapshots written by this process (compactions).",
                "counter",
                store.snapshots_written as f64,
            ),
            (
                "hummer_store_recovery_seconds",
                "Wall time of the most recent open+recover.",
                "gauge",
                store.recovery_ms / 1e3,
            ),
            (
                "hummer_store_fsyncs_total",
                "WAL commit fsyncs issued.",
                "counter",
                store.fsyncs as f64,
            ),
            (
                "hummer_store_group_commits_total",
                "WAL group-commit batches written.",
                "counter",
                store.group_commits as f64,
            ),
        ] {
            out.header(name, help, kind);
            out.sample(name, &[], value);
        }
        if let Some(hist) = service.store_fsync_histogram() {
            out.header(
                "hummer_store_fsync_seconds",
                "WAL commit fsync latency.",
                "histogram",
            );
            out.histogram_us("hummer_store_fsync_seconds", &[], &hist.snapshot(), None);
        }
        if let Some(hist) = service.store_batch_histogram() {
            // Records per group-commit batch — raw counts, not seconds, so
            // the histogram goes out with unscaled bucket bounds.
            out.header(
                "hummer_store_group_commit_records",
                "Records per WAL group-commit batch.",
                "histogram",
            );
            out.histogram_raw("hummer_store_group_commit_records", &[], &hist.snapshot());
        }
    }

    let tracer = service.tracer();
    out.header(
        "hummer_trace_spans",
        "Span records currently held in the trace ring.",
        "gauge",
    );
    out.sample("hummer_trace_spans", &[], tracer.span_count() as f64);
    out.header(
        "hummer_trace_spans_dropped_total",
        "Span records evicted from the trace ring.",
        "counter",
    );
    out.sample(
        "hummer_trace_spans_dropped_total",
        &[],
        tracer.dropped_spans() as f64,
    );
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EE_CSV: &str =
        "Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n";
    const CS_CSV: &str = "FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n";

    fn service() -> FusionService {
        let s = FusionService::new(ServiceConfig::narrow_schema());
        s.put_table("EE_Student", EE_CSV).unwrap();
        s.put_table("CS_Students", CS_CSV).unwrap();
        s
    }

    const PAPER_QUERY: &str =
        "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)";

    #[test]
    fn upload_validates_and_versions() {
        let s = service();
        assert!(s.put_table("bad name!", "a\n1\n").is_err());
        assert!(s.put_table("", "a\n1\n").is_err());
        assert_eq!(s.put_table("T", "a,b\n1\n").unwrap_err().status(), 400); // ragged record
        let v1 = s.put_table("T", "a\n1\n").unwrap().version;
        let v2 = s.put_table("T", "a\n2\n").unwrap().version;
        assert!(v2 > v1);
        let names: Vec<String> = s.tables().into_iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["CS_Students", "EE_Student", "T"]);
    }

    #[test]
    fn fusion_query_misses_then_hits() {
        let s = service();
        let cold = s.query(PAPER_QUERY).unwrap();
        assert_eq!(cold.cache_hit, Some(false));
        assert_eq!(cold.output.table.len(), 4);
        let warm = s.query(PAPER_QUERY).unwrap();
        assert_eq!(warm.cache_hit, Some(true));
        assert_eq!(warm.output.table.rows(), cold.output.table.rows());
        // A different query over the same sources still hits.
        let other = s
            .query("SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (objectID)")
            .unwrap();
        assert_eq!(other.cache_hit, Some(true));
        assert_eq!(other.output.table.len(), 4);
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn delta_upgrades_cache_instead_of_invalidating() {
        let s = service();
        let cold = s.query(PAPER_QUERY).unwrap();
        assert_eq!(cold.cache_hit, Some(false));

        // Insert a fifth, distinct student into CS.
        let delta = parse_delta(
            "CS_Students",
            r#"{"insert": [["Grace Hopper", "37", "Arlington"]]}"#,
        )
        .unwrap();
        let outcome = s.apply_delta("CS_Students", &delta).unwrap();
        assert_eq!(outcome.inserted, 1);
        assert_eq!(outcome.cache_upgrades, 1, "{outcome:?}");
        assert_eq!(outcome.cache_upgrade_failures, 0);
        assert_eq!(outcome.info.rows, 4);

        // The very next query hits the *upgraded* entry and sees the change.
        let warm = s.query(PAPER_QUERY).unwrap();
        assert_eq!(warm.cache_hit, Some(true), "upgrade must not invalidate");
        assert_eq!(warm.output.table.len(), 5);
        let stats = s.cache_stats();
        assert_eq!(stats.misses, 1, "no second cold prepare");

        // The upgraded artifacts equal a cold prepare over the new data.
        s.put_table("CS_Check", EE_CSV).unwrap(); // unrelated churn
        let snap = s.metrics().snapshot();
        assert_eq!(snap.deltas.deltas, 1);
        assert_eq!(snap.deltas.rows_inserted, 1);
        assert_eq!(snap.deltas.cache_upgrades, 1);
    }

    #[test]
    fn delta_update_and_delete_reflect_in_queries() {
        let s = service();
        s.query(PAPER_QUERY).unwrap();
        // Update John's CS age to 30; delete Ada.
        let delta = parse_delta(
            "CS_Students",
            r#"{"update": [{"row": 0, "values": ["John Smith", 30, "Berlin"]}], "delete": [2]}"#,
        )
        .unwrap();
        let outcome = s.apply_delta("CS_Students", &delta).unwrap();
        assert_eq!((outcome.updated, outcome.deleted), (1, 1));
        let after = s.query(PAPER_QUERY).unwrap();
        assert_eq!(after.cache_hit, Some(true));
        assert_eq!(after.output.table.len(), 3); // Ada gone
        let age = after.output.table.resolve("Age").unwrap();
        let name = after.output.table.resolve("Name").unwrap();
        let john = after
            .output
            .table
            .rows()
            .iter()
            .find(|r| r[name] == Value::text("John Smith"))
            .unwrap();
        assert_eq!(john[age], Value::Int(30));
    }

    #[test]
    fn delta_validation_and_unknown_table() {
        let s = service();
        assert_eq!(
            s.apply_delta("Ghosts", &TableDelta::new("Ghosts").delete(0))
                .unwrap_err()
                .status(),
            404
        );
        // Bad row index -> 400.
        let delta = TableDelta::new("EE_Student").delete(99);
        assert_eq!(
            s.apply_delta("EE_Student", &delta).unwrap_err().status(),
            400
        );
        // Parse errors.
        assert!(parse_delta("T", "{").is_err());
        assert!(parse_delta("T", "{}").is_err()); // no ops
        assert!(parse_delta("T", r#"{"insert": "nope"}"#).is_err());
        assert!(parse_delta("T", r#"{"update": [{"values": [1]}]}"#).is_err());
        assert!(parse_delta("T", r#"{"delete": [-1]}"#).is_err());
        assert!(parse_delta("T", r#"{"insert": [[{"nested": 1}]]}"#).is_err());
        // Typed parsing: strings infer like CSV cells.
        let d = parse_delta("T", r#"{"insert": [["x", "25", null, true, 1.5]]}"#).unwrap();
        match &d.ops[0] {
            hummer_delta::DeltaOp::Insert(vals) => {
                assert_eq!(vals[1], Value::Int(25));
                assert_eq!(vals[2], Value::Null);
                assert_eq!(vals[3], Value::Bool(true));
                assert_eq!(vals[4], Value::Float(1.5));
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_deltas_never_cache_stale_content() {
        // Regression for a review finding: an upgrade must key its
        // artifacts with the version *its* delta produced, never the
        // catalog's current version — otherwise two racing deltas could
        // cache the older content under the newest version key and serve
        // stale fusions as hits. Here we hammer one table from several
        // threads and then verify the served result equals a cold
        // recompute of the final catalog content.
        let s = Arc::new(service());
        s.query(PAPER_QUERY).unwrap(); // warm
        let threads: Vec<_> = (0i64..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0i64..4 {
                        let delta = TableDelta::new("CS_Students").update(
                            0,
                            vec![
                                Value::text("John Smith"),
                                Value::Int(26 + t + i),
                                Value::text("Berlin"),
                            ],
                        );
                        s.apply_delta("CS_Students", &delta).unwrap();
                        s.query(PAPER_QUERY).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let served = s.query(PAPER_QUERY).unwrap();
        // Cold reference over the *current* catalog content.
        let fresh = FusionService::new(ServiceConfig::narrow_schema());
        for info in s.tables() {
            let table = {
                let catalog = s.catalog.read().unwrap();
                Arc::clone(&catalog.get(&info.name).unwrap().table)
            };
            fresh
                .put_table(&info.name, &csv::write_csv_str(&table))
                .unwrap();
        }
        let reference = fresh.query(PAPER_QUERY).unwrap();
        assert_eq!(
            served.output.table.rows(),
            reference.output.table.rows(),
            "a cached entry served content that does not match the catalog"
        );
    }

    #[test]
    fn delta_json_documents_round_trip() {
        let s = service();
        s.query(PAPER_QUERY).unwrap();
        let delta = parse_delta("EE_Student", r#"{"delete": [2]}"#).unwrap();
        let outcome = s.apply_delta("EE_Student", &delta).unwrap();
        let doc = Json::parse(&delta_result_to_json(&outcome).to_string_compact()).unwrap();
        assert_eq!(doc.get("rows").unwrap().as_i64(), Some(2));
        assert_eq!(
            doc.get("applied").unwrap().get("deleted").unwrap().as_i64(),
            Some(1)
        );
        let m = Json::parse(&metrics_to_json(&s).to_string_compact()).unwrap();
        let deltas = m.get("deltas").unwrap();
        assert_eq!(deltas.get("applied").unwrap().as_i64(), Some(1));
        assert!(m
            .get("prepared_cache")
            .unwrap()
            .get("upgrades")
            .unwrap()
            .as_i64()
            .is_some());
    }

    #[test]
    fn reupload_invalidates_cache() {
        let s = service();
        s.query(PAPER_QUERY).unwrap();
        s.put_table("CS_Students", CS_CSV).unwrap(); // same bytes, new version
        let after = s.query(PAPER_QUERY).unwrap();
        assert_eq!(after.cache_hit, Some(false));
    }

    #[test]
    fn plain_query_bypasses_cache() {
        let s = service();
        let out = s
            .query("SELECT Name FROM EE_Student WHERE Age > 23 ORDER BY Name")
            .unwrap();
        assert_eq!(out.cache_hit, None);
        assert_eq!(out.output.table.len(), 2);
        assert_eq!(s.cache_stats().misses, 0);
    }

    #[test]
    fn unknown_table_and_bad_sql_statuses() {
        let s = service();
        assert_eq!(s.query("SELECT * FROM Ghosts").unwrap_err().status(), 404);
        assert_eq!(
            s.query("SELECT * FUSE FROM Ghosts FUSE BY (x)")
                .unwrap_err()
                .status(),
            404
        );
        assert_eq!(s.query("SELEKT garbage").unwrap_err().status(), 400);
    }

    #[test]
    fn concurrent_queries_share_one_prepare() {
        let s = Arc::new(service());
        s.query(PAPER_QUERY).unwrap(); // warm the cache
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let r = s.query(PAPER_QUERY).unwrap();
                    assert_eq!(r.cache_hit, Some(true));
                    r.output.table.len()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 4);
        }
        assert_eq!(s.cache_stats().misses, 1);
    }

    #[test]
    fn wire_json_round_trips() {
        let s = service();
        let r = s.query(PAPER_QUERY).unwrap();
        let doc = query_result_to_json(&r);
        let parsed = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(parsed.get("row_count").unwrap().as_i64(), Some(4));
        assert_eq!(parsed.get("fused").unwrap(), &Json::Bool(true));
        assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
        let result = parsed.get("result").unwrap();
        assert_eq!(result.get("rows").unwrap().as_array().unwrap().len(), 4);
        let m = Json::parse(&metrics_to_json(&s).to_string_compact()).unwrap();
        assert!(
            m.get("prepared_cache")
                .unwrap()
                .get("misses")
                .unwrap()
                .as_i64()
                .unwrap()
                >= 1
        );
    }

    use hummer_store::StoreOptions;

    fn temp_dir() -> std::path::PathBuf {
        hummer_store::scratch::dir("service")
    }

    fn durable_service(dir: &std::path::Path) -> FusionService {
        let (store, recovery) = CatalogStore::open(dir, StoreOptions::default()).unwrap();
        FusionService::with_store(ServiceConfig::narrow_schema(), store, recovery)
    }

    #[test]
    fn durable_service_recovers_byte_identical_catalog_and_versions() {
        let dir = temp_dir();
        let (before_rows, before_tables) = {
            let s = durable_service(&dir);
            s.put_table("EE_Student", EE_CSV).unwrap();
            s.put_table("CS_Students", CS_CSV).unwrap();
            let delta = parse_delta(
                "CS_Students",
                r#"{"insert": [["Grace Hopper", "37", "Arlington"]]}"#,
            )
            .unwrap();
            s.apply_delta("CS_Students", &delta).unwrap();
            let r = s.query(PAPER_QUERY).unwrap();
            (r.output.table.rows().to_vec(), s.tables())
        }; // dropped mid-flight: a crash, no shutdown hook ran

        let (store, recovery) = CatalogStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovery.replayed_records, 3); // 2 registers + 1 delta
        assert_eq!(recovery.dropped_bytes, 0);
        let s2 = FusionService::with_store(ServiceConfig::narrow_schema(), store, recovery);
        // Tables, shapes, AND content versions survive — cache keys stay
        // meaningful across the restart.
        assert_eq!(s2.tables(), before_tables);
        let after = s2.query(PAPER_QUERY).unwrap();
        assert_eq!(after.output.table.rows(), &before_rows[..]);
        assert_eq!(after.output.table.len(), 5);
        // New registrations continue past recovered versions.
        let v = s2.put_table("T", "a\n1\n").unwrap().version;
        assert!(v > before_tables.iter().map(|t| t.version).max().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_table_is_logged_and_recovered() {
        let dir = temp_dir();
        {
            let s = durable_service(&dir);
            s.put_table("EE_Student", EE_CSV).unwrap(); // v1
            s.put_table("CS_Students", CS_CSV).unwrap(); // v2 — the highest
            let gone = s.delete_table("CS_Students").unwrap();
            assert_eq!(gone.name, "CS_Students");
            assert_eq!(gone.rows, 3);
            assert_eq!(gone.version, 2);
            assert_eq!(s.delete_table("CS_Students").unwrap_err().status(), 404);
        }
        let s2 = durable_service(&dir);
        let names: Vec<String> = s2.tables().into_iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["EE_Student"]);
        // The deleted table held the highest version (2); the recovered
        // clock must resume past it — reusing 2 would let pre-crash cache
        // keys alias fresh content.
        let v = s2.put_table("T", "a\n1\n").unwrap().version;
        assert_eq!(v, 3, "version clock must resume past deleted tables");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_request_casing_never_renames_the_table() {
        let s = service();
        let delta = parse_delta(
            "cs_students", // deliberately not the registered casing
            r#"{"insert": [["Grace Hopper", "37", "Arlington"]]}"#,
        )
        .unwrap();
        let outcome = s.apply_delta("cs_students", &delta).unwrap();
        assert_eq!(outcome.info.name, "CS_Students", "canonical alias kept");
        let names: Vec<String> = s.tables().into_iter().map(|t| t.name).collect();
        assert!(names.contains(&"CS_Students".to_string()), "{names:?}");
        assert!(!names.contains(&"cs_students".to_string()), "{names:?}");
    }

    #[test]
    fn delete_table_works_without_a_store_too() {
        let s = service();
        s.delete_table("EE_Student").unwrap();
        assert_eq!(s.tables().len(), 1);
        assert_eq!(s.query(PAPER_QUERY).unwrap_err().status(), 404);
    }

    #[test]
    fn threshold_compaction_runs_inside_the_service() {
        let dir = temp_dir();
        {
            let (store, recovery) = CatalogStore::open(
                &dir,
                StoreOptions {
                    fsync: true,
                    compact_after_bytes: 256, // tiny: every upload compacts
                    group_commit_window_us: 0,
                },
            )
            .unwrap();
            let s = FusionService::with_store(ServiceConfig::narrow_schema(), store, recovery);
            s.put_table("EE_Student", EE_CSV).unwrap();
            s.put_table("CS_Students", CS_CSV).unwrap();
            let stats = s.store_stats().unwrap();
            assert!(stats.snapshots_written >= 1, "{stats:?}");
        }
        let s2 = durable_service(&dir);
        assert_eq!(s2.tables().len(), 2);
        assert_eq!(s2.query(PAPER_QUERY).unwrap().output.table.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_json_has_store_section_only_when_durable() {
        let plain = service();
        let m = Json::parse(&metrics_to_json(&plain).to_string_compact()).unwrap();
        assert!(m.get("store").is_none());
        assert!(plain.store_stats().is_none());

        let dir = temp_dir();
        let s = durable_service(&dir);
        s.put_table("EE_Student", EE_CSV).unwrap();
        let m = Json::parse(&metrics_to_json(&s).to_string_compact()).unwrap();
        let store = m.get("store").expect("durable service exposes store");
        assert!(store.get("wal_bytes").unwrap().as_i64().unwrap() > 16);
        assert_eq!(store.get("wal_records").unwrap().as_i64(), Some(1));
        assert_eq!(store.get("snapshots_written").unwrap().as_i64(), Some(0));
        assert!(store.get("recovery_ms").unwrap().as_f64().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn values_serialize_by_type() {
        use hummer_engine::Date;
        assert_eq!(value_to_json(&Value::Null), Json::Null);
        assert_eq!(value_to_json(&Value::Int(3)), Json::Int(3));
        assert_eq!(value_to_json(&Value::Float(1.5)), Json::Float(1.5));
        assert_eq!(value_to_json(&Value::Bool(true)), Json::Bool(true));
        assert_eq!(value_to_json(&Value::text("x")), Json::Str("x".into()));
        assert_eq!(
            value_to_json(&Value::Date(Date::new(2005, 8, 30).unwrap())),
            Json::Str("2005-08-30".into())
        );
    }
}
