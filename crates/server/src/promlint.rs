//! A Prometheus text-exposition linter (`std`-only, in-repo).
//!
//! `scripts/server_smoke.sh` runs this against a live `/metrics` scrape via
//! the `promlint` binary, so a malformed exposition — a family without
//! `# HELP`/`# TYPE`, an unescaped label value, a non-monotone `le` ladder,
//! or broken exemplar syntax — fails CI instead of silently confusing the
//! first real Prometheus server pointed at us.
//!
//! Checks, in order of appearance in [`lint`]:
//!
//! 1. **Line shape** — every non-comment line parses as
//!    `name{labels} value [# {exemplar-labels} value]`.
//! 2. **Metadata** — every sample's family has `# TYPE` and `# HELP`
//!    lines, and the `# TYPE` kind is a known one. Histogram suffixes
//!    (`_bucket`, `_sum`, `_count`) resolve to their family name first.
//! 3. **Escaping** — label values contain only the escapes the format
//!    defines (`\\`, `\"`, `\n`); a raw `"` or a stray backslash is an
//!    error at parse time.
//! 4. **Histogram ladders** — per label set, `le` bounds strictly
//!    increase, cumulative counts never decrease, the ladder ends at
//!    `le="+Inf"`, and the `+Inf` count equals the family's `_count`.
//! 5. **Exemplars** — only on `_bucket` lines of histogram families, and
//!    `trace_id` values are exactly 16 lowercase hex digits (what
//!    `GET /trace/{id}` accepts).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    /// Labels in document order (duplicates are a lint error).
    labels: Vec<(String, String)>,
    value: f64,
    /// Exemplar labels + value, when the line carries one.
    exemplar: Option<(Vec<(String, String)>, f64)>,
}

/// What a lint run found.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Sample lines parsed.
    pub samples: usize,
    /// Distinct metric families seen (after suffix folding).
    pub families: usize,
    /// Exemplars seen on bucket lines.
    pub exemplars: usize,
    /// Everything wrong, with 1-based line numbers.
    pub errors: Vec<String>,
}

impl LintReport {
    /// Did the exposition pass?
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Lint a full exposition body.
pub fn lint(text: &str) -> LintReport {
    let mut report = LintReport::default();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, labels-without-le) → ladder of (le, cumulative, line_no).
    #[allow(clippy::type_complexity)]
    let mut ladders: BTreeMap<(String, String), Vec<(f64, f64, usize)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut families: BTreeSet<String> = BTreeSet::new();

    for (idx, line) in text.lines().enumerate() {
        let no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(spec) = rest.strip_prefix("HELP ") {
                match spec.split_once(' ') {
                    Some((name, _)) if is_metric_name(name) => {
                        helps.insert(name.to_string());
                    }
                    _ => report
                        .errors
                        .push(format!("line {no}: malformed HELP line: {line}")),
                }
            } else if let Some(spec) = rest.strip_prefix("TYPE ") {
                match spec.split_once(' ') {
                    Some((name, kind)) if is_metric_name(name) => {
                        if !matches!(
                            kind,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        ) {
                            report
                                .errors
                                .push(format!("line {no}: unknown TYPE kind `{kind}` for {name}"));
                        }
                        if types.insert(name.to_string(), kind.to_string()).is_some() {
                            report
                                .errors
                                .push(format!("line {no}: duplicate TYPE for {name}"));
                        }
                    }
                    _ => report
                        .errors
                        .push(format!("line {no}: malformed TYPE line: {line}")),
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        if line.starts_with('#') {
            report
                .errors
                .push(format!("line {no}: comment without `# ` prefix: {line}"));
            continue;
        }

        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(e) => {
                report.errors.push(format!("line {no}: {e}"));
                continue;
            }
        };
        report.samples += 1;
        let family = family_of(&sample.name);
        families.insert(family.to_string());

        let is_bucket = sample.name.ends_with("_bucket");
        if is_bucket {
            let le = sample.labels.iter().find(|(k, _)| k == "le");
            match le {
                None => report
                    .errors
                    .push(format!("line {no}: _bucket sample without an le label")),
                Some((_, bound)) => {
                    let bound = if bound == "+Inf" {
                        f64::INFINITY
                    } else {
                        match bound.parse::<f64>() {
                            Ok(b) => b,
                            Err(_) => {
                                report
                                    .errors
                                    .push(format!("line {no}: unparseable le bound `{bound}`"));
                                continue;
                            }
                        }
                    };
                    let key = (family.to_string(), labels_key(&sample.labels, true));
                    ladders
                        .entry(key)
                        .or_default()
                        .push((bound, sample.value, no));
                }
            }
        } else if sample.name.ends_with("_count") {
            counts.insert(
                (family.to_string(), labels_key(&sample.labels, false)),
                sample.value,
            );
        }

        if let Some((ex_labels, _)) = &sample.exemplar {
            report.exemplars += 1;
            if !is_bucket {
                report.errors.push(format!(
                    "line {no}: exemplar on a non-bucket sample {}",
                    sample.name
                ));
            }
            for (k, v) in ex_labels {
                if k == "trace_id"
                    && !(v.len() == 16
                        && v.bytes()
                            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()))
                {
                    report.errors.push(format!(
                        "line {no}: exemplar trace_id `{v}` is not 16 lowercase hex digits"
                    ));
                }
            }
        }
    }

    // Metadata: every sampled family needs TYPE + HELP; suffixed samples
    // must belong to a histogram/summary family.
    for family in &families {
        if !types.contains_key(family) {
            report
                .errors
                .push(format!("family {family}: sampled without a # TYPE line"));
        }
        if !helps.contains(family) {
            report
                .errors
                .push(format!("family {family}: sampled without a # HELP line"));
        }
    }

    // Ladder checks per (family, label set).
    for ((family, labels), ladder) in &ladders {
        if types.get(family).map(String::as_str) != Some("histogram") {
            report.errors.push(format!(
                "family {family}: has _bucket samples but TYPE is not histogram"
            ));
        }
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(bound, cum, no) in ladder {
            if bound <= prev_bound {
                report.errors.push(format!(
                    "line {no}: le ladder of {family}{{{labels}}} not strictly increasing \
                     ({prev_bound} then {bound})"
                ));
            }
            if cum < prev_cum {
                report.errors.push(format!(
                    "line {no}: cumulative count of {family}{{{labels}}} decreases \
                     ({prev_cum} then {cum})"
                ));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        match ladder.last() {
            Some(&(bound, cum, _)) if bound.is_infinite() => {
                if let Some(&count) = counts.get(&(family.clone(), labels.clone())) {
                    if (cum - count).abs() > f64::EPSILON {
                        report.errors.push(format!(
                            "family {family}{{{labels}}}: +Inf bucket {cum} != _count {count}"
                        ));
                    }
                } else {
                    report.errors.push(format!(
                        "family {family}{{{labels}}}: histogram without a _count sample"
                    ));
                }
            }
            _ => report.errors.push(format!(
                "family {family}{{{labels}}}: le ladder does not end at +Inf"
            )),
        }
    }

    report.families = families.len();
    report
}

/// Fold histogram/summary suffixes back onto the family name `# TYPE`
/// announces.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if !base.is_empty() {
                return base;
            }
        }
    }
    name
}

/// Canonical key for a label set, optionally dropping `le` (so every rung
/// of one ladder groups together).
fn labels_key(labels: &[(String, String)], drop_le: bool) -> String {
    let mut sorted: Vec<&(String, String)> = labels
        .iter()
        .filter(|(k, _)| !(drop_le && k == "le"))
        .collect();
    sorted.sort();
    let mut out = String::new();
    for (k, v) in sorted {
        let _ = write!(out, "{k}={v:?},");
    }
    out
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `name{labels} value [# {labels} value]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, rest) = split_metric_name(line)?;
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(body)?
    } else {
        (Vec::new(), rest)
    };
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("missing space before value in `{line}`"))?;
    // Value runs to the exemplar separator or end of line.
    let (value_text, exemplar_text) = match rest.split_once(" # ") {
        Some((v, e)) => (v, Some(e)),
        None => (rest, None),
    };
    let value = parse_value(value_text.trim_end())?;
    let exemplar = match exemplar_text {
        None => None,
        Some(e) => {
            let body = e
                .strip_prefix('{')
                .ok_or_else(|| format!("exemplar without label braces: `{e}`"))?;
            let (ex_labels, after) = parse_labels(body)?;
            let after = after
                .strip_prefix(' ')
                .ok_or_else(|| format!("exemplar without a value: `{e}`"))?;
            // OpenMetrics allows a trailing timestamp; we emit none, but
            // accept `value [timestamp]`.
            let mut parts = after.split(' ');
            let v = parse_value(parts.next().unwrap_or(""))?;
            if let Some(ts) = parts.next() {
                parse_value(ts).map_err(|_| format!("bad exemplar timestamp `{ts}`"))?;
            }
            if parts.next().is_some() {
                return Err(format!("trailing garbage after exemplar: `{e}`"));
            }
            Some((ex_labels, v))
        }
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
    })
}

fn split_metric_name(line: &str) -> Result<(&str, &str), String> {
    let end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let (name, rest) = line.split_at(end);
    if !is_metric_name(name) {
        return Err(format!("invalid metric name at `{line}`"));
    }
    Ok((name, rest))
}

/// Parsed `name="value"` pairs, in exposition order.
type Labels = Vec<(String, String)>;

/// Parse a `name="value",...}` body (after the opening `{`), validating
/// escapes; returns the labels and the remainder after the closing brace.
fn parse_labels(mut body: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    loop {
        if let Some(rest) = body.strip_prefix('}') {
            break Ok((labels, rest));
        }
        let eq = body
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{body}`"))?;
        let name = &body[..eq];
        if !is_label_name(name) {
            return Err(format!("invalid label name `{name}`"));
        }
        if labels.iter().any(|(k, _)| k == name) {
            return Err(format!("duplicate label `{name}`"));
        }
        body = body[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted value for label `{name}`"))?;
        let mut value = String::new();
        let mut chars = body.char_indices();
        let after_quote = loop {
            match chars.next() {
                None => return Err(format!("unterminated value for label `{name}`")),
                Some((i, '"')) => break i + 1,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "invalid escape `\\{}` in label `{name}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ))
                    }
                },
                Some((_, c)) => value.push(c),
            }
        };
        labels.push((name.to_string(), value));
        body = &body[after_quote..];
        if let Some(rest) = body.strip_prefix(',') {
            body = rest;
        } else if !body.starts_with('}') {
            return Err(format!("expected `,` or `}}` after label `{name}`"));
        }
    }
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        t => t
            .parse::<f64>()
            .map_err(|_| format!("unparseable value `{t}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_servers_own_exposition() {
        use crate::server::{HummerServer, ServerConfig};
        use crate::service::metrics_to_prometheus;
        // A real service with traffic recorded: the linter must pass what
        // `GET /metrics` actually serves.
        let config = ServerConfig::default();
        let server = HummerServer::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        })
        .expect("bind");
        let service = server.service();
        service.metrics().record_request(
            "POST /query",
            std::time::Duration::from_millis(3),
            false,
            Some(0xa1),
        );
        service.metrics().record_request(
            "rejected",
            std::time::Duration::from_micros(40),
            true,
            Some(0xa2),
        );
        let text = metrics_to_prometheus(service);
        let report = lint(&text);
        assert!(report.ok(), "lint errors: {:#?}", report.errors);
        assert!(report.samples > 20, "{}", report.samples);
        assert!(report.exemplars >= 1, "exemplar missing from exposition");
        server.shutdown_handle().shutdown();
    }

    #[test]
    fn flags_missing_metadata_and_bad_ladders() {
        // No HELP/TYPE at all.
        let r = lint("orphan_total 1\n");
        assert!(
            r.errors.iter().any(|e| e.contains("# TYPE")),
            "{:?}",
            r.errors
        );
        assert!(
            r.errors.iter().any(|e| e.contains("# HELP")),
            "{:?}",
            r.errors
        );

        // Non-monotone cumulative counts and a ladder missing +Inf.
        let text = "\
# HELP h x.
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"0.2\"} 3
h_sum 1
h_count 5
";
        let r = lint(text);
        assert!(
            r.errors.iter().any(|e| e.contains("decreases")),
            "{:?}",
            r.errors
        );
        assert!(
            r.errors.iter().any(|e| e.contains("does not end at +Inf")),
            "{:?}",
            r.errors
        );

        // +Inf disagreeing with _count.
        let text = "\
# HELP h x.
# TYPE h histogram
h_bucket{le=\"0.1\"} 2
h_bucket{le=\"+Inf\"} 4
h_sum 1
h_count 5
";
        let r = lint(text);
        assert!(
            r.errors.iter().any(|e| e.contains("!= _count")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn flags_broken_escaping_and_exemplars() {
        let r = lint("# HELP m x.\n# TYPE m counter\nm{ep=\"a\\qb\"} 1\n");
        assert!(
            r.errors.iter().any(|e| e.contains("invalid escape")),
            "{:?}",
            r.errors
        );

        // Exemplar on a counter line.
        let r = lint("# HELP m x.\n# TYPE m counter\nm 1 # {trace_id=\"00000000000000a1\"} 0.5\n");
        assert!(
            r.errors.iter().any(|e| e.contains("non-bucket")),
            "{:?}",
            r.errors
        );

        // Bad trace id width.
        let text = "\
# HELP h x.
# TYPE h histogram
h_bucket{le=\"0.1\"} 1 # {trace_id=\"a1\"} 0.05
h_bucket{le=\"+Inf\"} 1
h_sum 0.05
h_count 1
";
        let r = lint(text);
        assert!(
            r.errors.iter().any(|e| e.contains("16 lowercase hex")),
            "{:?}",
            r.errors
        );

        // A correct exemplar passes.
        let text = "\
# HELP h x.
# TYPE h histogram
h_bucket{le=\"0.1\"} 1 # {trace_id=\"00000000000000a1\"} 0.05
h_bucket{le=\"+Inf\"} 1
h_sum 0.05
h_count 1
";
        let r = lint(text);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.exemplars, 1);
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let text = "# HELP m x.\n# TYPE m counter\nm{ep=\"a\\\"b\\\\c\\nd\"} 7\n";
        let r = lint(text);
        assert!(r.ok(), "{:?}", r.errors);
        let s = parse_sample("m{ep=\"a\\\"b\\\\c\\nd\"} 7").unwrap();
        assert_eq!(s.labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn histogram_ladders_group_by_label_set() {
        // Two endpoints interleaved: each ladder is checked separately, so
        // the "drop" from endpoint a's +Inf to endpoint b's first rung is
        // not a monotonicity error.
        let text = "\
# HELP h x.
# TYPE h histogram
h_bucket{endpoint=\"a\",le=\"0.1\"} 5
h_bucket{endpoint=\"a\",le=\"+Inf\"} 9
h_sum{endpoint=\"a\"} 1
h_count{endpoint=\"a\"} 9
h_bucket{endpoint=\"b\",le=\"0.1\"} 1
h_bucket{endpoint=\"b\",le=\"+Inf\"} 2
h_sum{endpoint=\"b\"} 1
h_count{endpoint=\"b\"} 2
";
        let r = lint(text);
        assert!(r.ok(), "{:?}", r.errors);
    }
}
