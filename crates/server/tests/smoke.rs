//! End-to-end smoke tests: a real server on a real socket, driven through
//! the loadgen client — upload, query, cache behavior, errors, concurrency,
//! graceful shutdown.

use hummer_server::loadgen::{http_request, run_load, Client, LoadConfig};
use hummer_server::{
    CoordinatorOptions, HummerServer, Json, ObsConfig, ServerConfig, ServiceConfig,
};
use std::thread;

const EE_CSV: &[u8] =
    b"Name,Age,City\nJohn Smith,24,Berlin\nMary Jones,22,Hamburg\nPeter Miller,27,Munich\n";
const CS_CSV: &[u8] =
    b"FullName,Years,Town\nJohn Smith,25,Berlin\nMary Jones,22,Hamburg\nAda Lovelace,28,London\n";
const PAPER_QUERY: &[u8] =
    b"SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)";

/// Start a server on an ephemeral port; returns (addr, shutdown closure).
///
/// Tracing is on (as `hummer-serve` runs by default), so every response
/// carries `X-Hummer-Trace` and the tests exercise the instrumented path.
fn start_server(threads: usize) -> (String, impl FnOnce()) {
    let mut service = ServiceConfig::narrow_schema();
    service.pipeline.obs = ObsConfig::enabled(4096);
    start_server_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        service,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> (String, impl FnOnce()) {
    let server = HummerServer::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run().unwrap());
    (addr, move || {
        handle.shutdown();
        join.join().unwrap();
    })
}

#[test]
fn upload_query_metrics_shutdown() {
    let (addr, stop) = start_server(4);

    // Health.
    let (status, body) = http_request(&addr, "GET", "/healthz", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ok"));

    // Upload the paper's two tables.
    let (status, _) = http_request(&addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
    assert_eq!(status, 200);
    let (status, body) =
        http_request(&addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
    assert_eq!(status, 200);
    let info = Json::parse(&body).unwrap();
    assert_eq!(info.get("rows").unwrap().as_i64(), Some(3));

    // Table listing.
    let (status, body) = http_request(&addr, "GET", "/tables", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    let tables = Json::parse(&body).unwrap();
    assert_eq!(tables.get("tables").unwrap().as_array().unwrap().len(), 2);

    // The paper's query: heterogeneous schemas fused into 4 students.
    let (status, body) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("row_count").unwrap().as_i64(), Some(4));
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(doc.get("fused").unwrap(), &Json::Bool(true));

    // Same sources again: served from the prepared-pipeline cache.
    let (_, body) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));

    // JSON body form.
    let json_body = Json::object()
        .with(
            "sql",
            "SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (objectID)",
        )
        .to_string_compact();
    let (status, body) = http_request(
        &addr,
        "POST",
        "/query",
        "application/json",
        json_body.as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));

    // Metrics reflect all of the above.
    let (status, body) = http_request(&addr, "GET", "/metrics.json", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    let m = Json::parse(&body).unwrap();
    assert!(m.get("total_requests").unwrap().as_i64().unwrap() >= 6);
    let cache = m.get("prepared_cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_i64(), Some(1));
    assert_eq!(cache.get("hits").unwrap().as_i64(), Some(2));

    // The same registry in Prometheus text exposition on /metrics.
    let (status, prom) = http_request(&addr, "GET", "/metrics", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    assert!(
        prom.contains("# TYPE hummer_requests_total counter"),
        "{prom}"
    );
    assert!(prom.contains("hummer_requests_total{endpoint=\"POST /query\"}"));
    assert!(prom.contains("# TYPE hummer_stage_seconds histogram"));
    assert!(prom.contains("hummer_prepared_cache_hits_total 2"));

    stop();
}

#[test]
fn error_statuses_on_the_wire() {
    let (addr, stop) = start_server(2);
    let (status, _) = http_request(&addr, "GET", "/nope", "text/plain", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "DELETE", "/query", "text/plain", b"").unwrap();
    assert_eq!(status, 405);
    let (status, body) = http_request(
        &addr,
        "POST",
        "/query",
        "text/plain",
        b"SELECT * FROM Ghosts",
    )
    .unwrap();
    assert_eq!(status, 404);
    assert!(Json::parse(&body).unwrap().get("error").is_some());
    let (status, _) =
        http_request(&addr, "POST", "/query", "text/plain", b"SELEKT garbage").unwrap();
    assert_eq!(status, 400);
    let (status, _) = http_request(&addr, "PUT", "/tables/Bad", "text/csv", b"a,b\n1\n").unwrap();
    assert_eq!(status, 400);
    stop();
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let (addr, stop) = start_server(2);
    http_request(&addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
    http_request(&addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..10 {
        let (status, body) = client
            .request("POST", "/query", "text/plain", PAPER_QUERY)
            .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"row_count\":4"));
    }

    // Every response carries X-Hummer-Trace; the span tree for that id is
    // immediately fetchable and rooted at the request's endpoint label.
    let (status, _, trace) = client
        .request_traced("POST", "/query", "text/plain", PAPER_QUERY)
        .unwrap();
    assert_eq!(status, 200);
    let trace = trace.expect("response carries X-Hummer-Trace");
    let (status, body) =
        http_request(&addr, "GET", &format!("/trace/{trace}"), "text/plain", b"").unwrap();
    assert_eq!(status, 200, "{body}");
    let tree = Json::parse(&body).unwrap();
    assert_eq!(tree.get("trace").unwrap().as_str(), Some(trace.as_str()));
    assert!(tree.get("span_count").unwrap().as_i64().unwrap() >= 2);
    assert!(body.contains("POST /query"), "{body}");
    stop();
}

#[test]
fn delta_over_http_upgrades_cache_and_mixed_load_runs() {
    let (addr, stop) = start_server(4);
    http_request(&addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
    http_request(&addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
    // Warm the prepared cache.
    let (status, _) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    assert_eq!(status, 200);

    // POST a delta: insert a fifth student into CS.
    let delta = br#"{"insert": [["Grace Hopper", "37", "Arlington"]]}"#;
    let (status, body) = http_request(
        &addr,
        "POST",
        "/tables/CS_Students/delta",
        "application/json",
        delta,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("rows").unwrap().as_i64(), Some(4));
    assert_eq!(
        doc.get("cache").unwrap().get("upgraded").unwrap().as_i64(),
        Some(1)
    );

    // The next query hits the upgraded entry and reflects the insert.
    let (_, body) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("row_count").unwrap().as_i64(), Some(5));
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));

    // Mixed read/update load: every 4th request is a delta update.
    let update_body = Json::object()
        .with(
            "update",
            Json::Arr(vec![Json::object().with("row", 0usize).with(
                "values",
                Json::Arr(vec![
                    Json::Str("John Smith".into()),
                    Json::Int(26),
                    Json::Str("Berlin".into()),
                ]),
            )]),
        )
        .to_string_compact();
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        connections: 4,
        requests: 40,
        sql_pool: vec![String::from_utf8(PAPER_QUERY.to_vec()).unwrap()],
        update_every: 4,
        update_pool: vec![("/tables/CS_Students/delta".into(), update_body)],
    });
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.ok, 40);
    assert_eq!(report.updates_ok, 10);

    // Delta counters surfaced in /metrics.json.
    let (_, body) = http_request(&addr, "GET", "/metrics.json", "text/plain", b"").unwrap();
    let m = Json::parse(&body).unwrap();
    let deltas = m.get("deltas").unwrap();
    assert_eq!(deltas.get("applied").unwrap().as_i64(), Some(11));
    assert!(deltas.get("cache_upgrades").unwrap().as_i64().unwrap() >= 1);
    stop();
}

#[test]
fn concurrent_load_is_consistent() {
    let (addr, stop) = start_server(4);
    http_request(&addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
    http_request(&addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        connections: 8,
        requests: 80,
        sql_pool: vec![String::from_utf8(PAPER_QUERY.to_vec()).unwrap()],
        update_every: 0,
        update_pool: Vec::new(),
    });
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok, 80);
    assert!(report.p99_ms >= report.p50_ms);
    // At most a few cold misses (concurrent first arrivals may race), then
    // everything hits.
    let (_, body) = http_request(&addr, "GET", "/metrics.json", "text/plain", b"").unwrap();
    let m = Json::parse(&body).unwrap();
    let hits = m
        .get("prepared_cache")
        .unwrap()
        .get("hits")
        .unwrap()
        .as_i64()
        .unwrap();
    assert!(
        hits >= 72,
        "expected most requests to hit the cache, got {hits}"
    );
    stop();
}

#[test]
fn durable_server_recovers_catalog_across_restart() {
    let dir = std::env::temp_dir().join(format!("hummer_smoke_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let durable_config = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        service: ServiceConfig::narrow_schema(),
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First life: register, delta, query.
    let before = {
        let (addr, stop) = start_server_with(durable_config());
        http_request(&addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
        http_request(&addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
        let delta = br#"{"insert": [["Grace Hopper", "37", "Arlington"]]}"#;
        let (status, _) = http_request(
            &addr,
            "POST",
            "/tables/CS_Students/delta",
            "application/json",
            delta,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (_, body) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
        stop();
        body
    };

    // Second life, same directory: the catalog — including the delta — is
    // back, and the fused result is identical.
    let (addr, stop) = start_server_with(durable_config());
    let (status, tables) = http_request(&addr, "GET", "/tables", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&tables)
            .unwrap()
            .get("tables")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        2
    );
    let (_, after) = http_request(&addr, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    let result_of = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("result")
            .unwrap()
            .to_string_compact()
    };
    assert_eq!(result_of(&after), result_of(&before));
    assert!(after.contains("\"row_count\":5"), "{after}");

    // The store section (wal_bytes, recovery_ms, ...) is on /metrics.json.
    let (_, body) = http_request(&addr, "GET", "/metrics.json", "text/plain", b"").unwrap();
    let store = Json::parse(&body).unwrap().get("store").cloned().unwrap();
    assert!(store.get("recovery_ms").unwrap().as_f64().is_some());
    assert!(store.get("wal_records").unwrap().as_i64().unwrap() >= 3);

    // DELETE is durable too.
    let (status, _) =
        http_request(&addr, "DELETE", "/tables/EE_Student", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    stop();

    let (addr, stop) = start_server_with(durable_config());
    let (_, tables) = http_request(&addr, "GET", "/tables", "text/plain", b"").unwrap();
    assert_eq!(
        Json::parse(&tables)
            .unwrap()
            .get("tables")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        1
    );
    stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (addr, _stop) = start_server(2);
    let server_thread_addr = addr.clone();
    let (status, _) =
        http_request(&server_thread_addr, "POST", "/shutdown", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    // The listener stops accepting shortly after; poll until connects fail
    // or the responses stop coming.
    let gone = (0..50).any(|_| {
        thread::sleep(std::time::Duration::from_millis(20));
        http_request(&addr, "GET", "/healthz", "text/plain", b"").is_err()
    });
    assert!(gone, "server kept serving after shutdown");
}

#[test]
fn coordinator_scatters_and_survives_worker_death() {
    // Two plain workers (no tables needed — shard requests carry their
    // own data), a plain reference server, and a coordinator.
    let (w1, stop_w1) = start_server(2);
    let (w2, stop_w2) = start_server(2);
    let (plain, stop_plain) = start_server(2);
    let mut service = ServiceConfig::narrow_schema();
    service.pipeline.obs = ObsConfig::enabled(4096);
    service.coordinator = Some(CoordinatorOptions {
        workers: vec![w1.clone(), w2.clone()],
        ..CoordinatorOptions::default()
    });
    let (coord, stop_coord) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        service,
        ..ServerConfig::default()
    });

    for addr in [&coord, &plain] {
        let (status, _) =
            http_request(addr, "PUT", "/tables/EE_Student", "text/csv", EE_CSV).unwrap();
        assert_eq!(status, 200);
        let (status, _) =
            http_request(addr, "PUT", "/tables/CS_Students", "text/csv", CS_CSV).unwrap();
        assert_eq!(status, 200);
    }

    // Cold query: the prepare scatters to the workers and the fused result
    // is identical to the plain (non-coordinated) server's.
    let (status, body) = http_request(&coord, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("miss"));
    assert!(doc.get("shards").unwrap().as_i64().unwrap() >= 1, "{body}");
    let (_, plain_body) =
        http_request(&plain, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    let plain_doc = Json::parse(&plain_body).unwrap();
    assert_eq!(
        doc.get("result").unwrap().to_string_compact(),
        plain_doc.get("result").unwrap().to_string_compact(),
        "coordinated result differs from the plain server"
    );

    // Warm query: a cache hit never scatters — shards reports 0.
    let (_, body) = http_request(&coord, "POST", "/query", "text/plain", PAPER_QUERY).unwrap();
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(doc.get("shards").unwrap().as_i64(), Some(0));

    // The scatter landed in the metrics.
    let (_, body) = http_request(&coord, "GET", "/metrics.json", "text/plain", b"").unwrap();
    let shard = Json::parse(&body).unwrap().get("shard").cloned().unwrap();
    assert!(shard.get("scatters").unwrap().as_i64().unwrap() >= 1);
    assert!(shard.get("worker_requests").unwrap().as_i64().unwrap() >= 1);

    // Kill one worker; a fresh source set forces a cold scatter that must
    // still answer — retry on the survivor or local fallback — and still
    // match the plain server byte for byte.
    stop_w2();
    let alumni: &[u8] = b"Name,Age,City\nJohn Smith,26,Berlin\nGrace Hopper,37,Arlington\n";
    let cold_query: &[u8] =
        b"SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, Alumni FUSE BY (Name)";
    for addr in [&coord, &plain] {
        let (status, _) = http_request(addr, "PUT", "/tables/Alumni", "text/csv", alumni).unwrap();
        assert_eq!(status, 200);
    }
    let (status, body) = http_request(&coord, "POST", "/query", "text/plain", cold_query).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("cache").unwrap().as_str(), Some("miss"));
    let (_, plain_body) = http_request(&plain, "POST", "/query", "text/plain", cold_query).unwrap();
    let plain_doc = Json::parse(&plain_body).unwrap();
    assert_eq!(
        doc.get("result").unwrap().to_string_compact(),
        plain_doc.get("result").unwrap().to_string_compact(),
        "coordinated result differs from the plain server with a worker dead"
    );

    stop_coord();
    stop_plain();
    stop_w1();
}
