//! Adversarial protocol and fault tests against the event-loop serving
//! path: slowloris, oversized frames, half-close, pipelining, idle
//! reclamation, admission control, and mid-request worker panics. Each
//! scenario asserts the exact status/close behavior — and, at the end,
//! that no connection slot leaked (the server still serves sequentially
//! and its counters add up).

use hummer_server::loadgen::http_request;
use hummer_server::{HummerServer, Json, ServerConfig, ServiceConfig, ServingMode};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::thread;
use std::time::Duration;

const CSV: &[u8] = b"Name,City\nJohn Smith,Berlin\nJon Smith,Berlin\n";
const QUERY: &[u8] = b"SELECT Name, City FUSE FROM People FUSE BY (objectID)";

/// An event-mode server with aggressively small timeouts so adversarial
/// clients are punished within test budget.
fn tight_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        service: ServiceConfig::narrow_schema(),
        mode: ServingMode::Event,
        read_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (String, impl FnOnce()) {
    let server = HummerServer::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run().unwrap());
    (addr, move || {
        handle.shutdown();
        join.join().unwrap();
    })
}

/// Read one raw HTTP response: returns (status, lowercased header lines,
/// body). Reads until content-length is satisfied or the peer closes.
/// `residual` carries bytes over-read past this response (pipelined
/// responses arrive batched) into the next call on the same stream.
fn read_response_buffered(
    stream: &mut TcpStream,
    residual: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<String>, Vec<u8>)> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = residual.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk)? {
            0 => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "closed before response head",
                ))
            }
            n => residual.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&residual[..head_end]).to_string();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<String> = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.to_ascii_lowercase())
        .collect();
    let content_length: usize = headers
        .iter()
        .find_map(|h| h.strip_prefix("content-length:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    while residual.len() < head_end + content_length {
        match stream.read(&mut chunk)? {
            0 => break,
            n => residual.extend_from_slice(&chunk[..n]),
        }
    }
    let consumed = (head_end + content_length).min(residual.len());
    let body = residual[head_end..consumed].to_vec();
    residual.drain(..consumed);
    Ok((status, headers, body))
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, Vec<String>, Vec<u8>)> {
    read_response_buffered(stream, &mut Vec::new())
}

/// True once the peer has closed: a read returns 0 (FIN) — or a reset
/// (the server dropped the socket with unread client bytes, which the
/// kernel reports as RST) — within the deadline.
fn peer_closed(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return true,
            Ok(_) => continue, // drain whatever the server still had buffered
            Err(e) => {
                return matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                )
            }
        }
    }
}

fn serving_counter(addr: &str, key: &str) -> i64 {
    // Slots freed by a client-side close are reclaimed on the server's
    // next sweep, so this probe can transiently hit the admission cap
    // (503) right after a scenario — retry until admitted.
    let mut response = None;
    for _ in 0..250 {
        if let Ok((200, body)) = http_request(addr, "GET", "/metrics.json", "text/plain", b"") {
            response = Some(body);
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    let body = response.expect("/metrics.json never admitted");
    Json::parse(&body)
        .unwrap()
        .get("serving")
        .and_then(|s| s.get(key))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("serving.{key} missing from /metrics.json"))
}

#[test]
fn slowloris_header_drip_gets_408_and_close() {
    let (addr, stop) = start(tight_config());
    let mut stream = TcpStream::connect(&addr).unwrap();
    // Drip a valid request prefix one byte at a time, never finishing the
    // head. The read deadline (300 ms) must fire even though bytes keep
    // trickling in — it is an absolute whole-request deadline, not an
    // inter-byte one.
    let partial = b"GET /healthz HTTP/1.1\r\nx-slow: ";
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut answered = None;
    'drip: loop {
        for b in partial {
            if stream.write_all(&[*b]).is_err() {
                break 'drip; // server already slammed the door
            }
            thread::sleep(Duration::from_millis(10));
            if std::time::Instant::now() > deadline {
                break 'drip;
            }
        }
        // Poke for a response without blocking the drip forever.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(n) if n > 0 => {
                answered = Some(String::from_utf8_lossy(&chunk[..n]).to_string());
                break 'drip;
            }
            _ => {}
        }
    }
    let head = answered.unwrap_or_else(|| {
        // The write failed first; the response is still in the socket.
        let mut s = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = stream.read_to_string(&mut s);
        s
    });
    assert!(
        head.starts_with("HTTP/1.1 408"),
        "slowloris expected 408, got: {head:?}"
    );
    assert!(peer_closed(&mut stream), "server must close after 408");
    assert!(serving_counter(&addr, "read_timeouts") >= 1);
    stop();
}

#[test]
fn oversized_header_block_gets_400_and_close() {
    let (addr, stop) = start(tight_config());
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    // Grow the head past MAX_HEAD_BYTES without ever sending the blank
    // line; chunked header lines keep each line legal so only the
    // whole-head cap can trip.
    let line = format!("x-fill: {}\r\n", "a".repeat(1000));
    let mut sent = 0usize;
    while sent <= hummer_server::http::MAX_HEAD_BYTES {
        if stream.write_all(line.as_bytes()).is_err() {
            break; // server closed mid-flood; response is buffered
        }
        sent += line.len();
    }
    let (status, headers, _) = read_response(&mut stream).expect("400 response");
    assert_eq!(status, 400);
    assert!(headers.iter().any(|h| h.contains("connection: close")));
    assert!(peer_closed(&mut stream));
    stop();
}

#[test]
fn oversized_body_declaration_gets_400() {
    let (addr, stop) = start(tight_config());
    let mut stream = TcpStream::connect(&addr).unwrap();
    let request = format!(
        "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        hummer_server::http::MAX_BODY_BYTES + 1
    );
    stream.write_all(request.as_bytes()).unwrap();
    let (status, headers, _) = read_response(&mut stream).expect("400 response");
    assert_eq!(status, 400);
    assert!(headers.iter().any(|h| h.contains("connection: close")));
    assert!(peer_closed(&mut stream));
    stop();
}

#[test]
fn half_close_mid_request_gets_400_complete_request_still_served() {
    let (addr, stop) = start(tight_config());

    // EOF halfway through the head: the request can never complete — 400.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /healthz HTT").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let (status, _, _) = read_response(&mut stream).expect("400 response");
    assert_eq!(status, 400);
    assert!(peer_closed(&mut stream));

    // EOF after a complete request: the buffered request is served, then
    // the connection closes (no keep-alive with a half-closed peer).
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let (status, _, body) = read_response(&mut stream).expect("served response");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("ok"));
    assert!(peer_closed(&mut stream));

    // EOF exactly at a request boundary: silent close, nothing to answer.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    assert!(peer_closed(&mut stream));
    stop();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (addr, stop) = start(tight_config());
    http_request(&addr, "PUT", "/tables/People", "text/csv", CSV).unwrap();

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut pipelined = Vec::new();
    pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    pipelined.extend_from_slice(
        format!(
            "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            QUERY.len()
        )
        .as_bytes(),
    );
    pipelined.extend_from_slice(QUERY);
    pipelined.extend_from_slice(b"GET /tables HTTP/1.1\r\n\r\n");
    stream.write_all(&pipelined).unwrap();

    // Responses arrive batched; the residual buffer carries over-read
    // bytes from one response into the next.
    let mut residual = Vec::new();
    let (status, _, body) = read_response_buffered(&mut stream, &mut residual).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("ok"));
    let (status, _, body) = read_response_buffered(&mut stream, &mut residual).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"row_count\""));
    let (status, _, body) = read_response_buffered(&mut stream, &mut residual).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"tables\""));
    assert!(residual.is_empty(), "trailing bytes: {residual:?}");

    // The connection is still keep-alive: a fourth, unpipelined request
    // on the same socket works.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, _, _) = read_response_buffered(&mut stream, &mut residual).unwrap();
    assert_eq!(status, 200);
    stop();
}

#[test]
fn idle_connections_are_reclaimed() {
    let (addr, stop) = start(tight_config());
    let mut idle = TcpStream::connect(&addr).unwrap();
    // Send nothing. After the 300 ms idle timeout the server closes the
    // socket silently (no 408 — there is no request to answer).
    assert!(peer_closed(&mut idle), "idle connection never reclaimed");
    assert!(serving_counter(&addr, "idle_reclaims") >= 1);
    assert_eq!(serving_counter(&addr, "read_timeouts"), 0);
    stop();
}

#[test]
fn admission_control_rejects_beyond_max_connections_and_recovers() {
    let mut config = tight_config();
    config.max_connections = 3;
    config.idle_timeout = Duration::from_secs(30); // keep occupants alive
    config.read_timeout = Duration::from_secs(30);
    let (addr, stop) = start(config);

    // Fill every slot with held-open connections.
    let occupants: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = TcpStream::connect(&addr).unwrap();
            // A started-but-unfinished request marks the slot busy.
            s.write_all(b"GET /healthz HTT").unwrap();
            s
        })
        .collect();
    thread::sleep(Duration::from_millis(100)); // let the loop adopt them

    // The next arrival is turned away at the door: 503 + Retry-After.
    let mut rejected = TcpStream::connect(&addr).unwrap();
    rejected
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let (status, headers, body) = read_response(&mut rejected).expect("503 response");
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert!(
        headers.iter().any(|h| h.starts_with("retry-after:")),
        "503 must carry Retry-After: {headers:?}"
    );
    assert!(peer_closed(&mut rejected));

    // Slots free as occupants leave; the same client is admitted again.
    drop(occupants);
    let mut admitted = None;
    for _ in 0..100 {
        thread::sleep(Duration::from_millis(20));
        if let Ok((status, body)) = http_request(&addr, "GET", "/healthz", "text/plain", b"") {
            admitted = Some((status, body));
            break;
        }
    }
    let (status, _) = admitted.expect("slots never freed after occupants left");
    assert_eq!(status, 200);
    assert!(serving_counter(&addr, "overload_rejects") >= 1);
    stop();
}

#[test]
fn no_connection_slot_leaks_after_adversarial_traffic() {
    let mut config = tight_config();
    config.max_connections = 4;
    let (addr, stop) = start(config);

    // A wave of badly-behaved clients, several times the slot budget.
    for round in 0..12 {
        let mut s = TcpStream::connect(&addr).unwrap();
        match round % 4 {
            0 => drop(s), // connect-and-vanish
            1 => {
                let _ = s.write_all(b"GET /hea"); // torn head, then vanish
            }
            2 => {
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let (status, _, _) = read_response(&mut s).unwrap();
                assert_eq!(status, 200); // well-behaved, then vanish
            }
            _ => {
                let _ = s.write_all(b"\r\n\r\n"); // garbage head
                let _ = read_response(&mut s); // 400, ignore
            }
        }
        // Pace the wave so abandoned sockets are reaped between rounds —
        // this test is about leaks, not about racing the sweep cadence.
        thread::sleep(Duration::from_millis(10));
    }
    // Give torn connections time to hit the read deadline and be reaped.
    thread::sleep(Duration::from_millis(500));

    // Every slot must be back: with max_connections = 4, four concurrent
    // well-behaved clients all get through.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let (status, _) =
                    http_request(&addr, "GET", "/healthz", "text/plain", b"").unwrap();
                status
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().unwrap(), 200);
    }
    stop();
}

/// A handler panic mid-request must not leave the client hanging: the
/// connection closes (the client sees EOF, not a stall) and the server
/// keeps serving. Exercised in both serving modes — the fix lives in the
/// shared `execute_request` path.
fn panic_scenario(mode: ServingMode) {
    let mut config = tight_config();
    config.mode = mode;
    config.service.debug_panic_route = true;
    config.read_timeout = Duration::from_secs(30);
    config.idle_timeout = Duration::from_secs(30);
    let (addr, stop) = start(config);

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"POST /__test/panic HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let (status, headers, _) = read_response(&mut stream).expect("panic must still answer");
    assert_eq!(status, 500);
    assert!(
        headers.iter().any(|h| h.contains("connection: close")),
        "panicked handler must close: {headers:?}"
    );
    assert!(peer_closed(&mut stream), "client left hanging after panic");

    // The worker (blocking) / event loop slot is recycled: fresh
    // connections still serve.
    let (status, _) = http_request(&addr, "GET", "/healthz", "text/plain", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(serving_counter(&addr, "worker_panics"), 1);
    stop();
}

#[test]
fn worker_panic_closes_connection_event_mode() {
    panic_scenario(ServingMode::Event);
}

#[test]
fn worker_panic_closes_connection_blocking_mode() {
    panic_scenario(ServingMode::Blocking);
}
