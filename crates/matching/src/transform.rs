//! The data-transformation phase: rename matched attributes to the
//! preferred schema, tag every table with a `sourceID`, and compute the
//! full outer union (paper §2.2-§2.3 and §3).

use crate::correspondence::MatchResult;
use hummer_engine::ops::{outer_union, outer_union_columnar};
use hummer_engine::{
    Column, ColumnData, ColumnType, ColumnarBatch, ExecutionLayout, Result, Schema, Table, Value,
};

/// Name of the provenance column added to every table before the union.
/// It stores the source alias and is what `CHOOSE(source)` and the lineage
/// color-coding are built on.
pub const SOURCE_ID_COLUMN: &str = "sourceID";

/// Rename the matched columns of `table` to the preferred names recorded in
/// `result` (which must have been produced with `table` on the right side).
///
/// If a rename target collides with an *unmatched* existing column of the
/// same table, that unmatched column is first moved aside to
/// `<table>_<name>` so the transformation stays total; the collision is
/// rare (it means the table reused a preferred name for something else).
pub fn apply_renames(table: &Table, result: &MatchResult) -> Result<Table> {
    let renames = result.rename_map();
    let mut out = table.clone();
    for (from, to) in &renames {
        if from.eq_ignore_ascii_case(to) {
            continue; // already carries the preferred name
        }
        if out.schema().contains(to) && !renames.contains_key(to) {
            // Unmatched column squats on the preferred name: move it aside.
            let aside = format!("{}_{}", table.name(), to);
            out = hummer_engine::ops::rename_column(&out, to, &aside)?;
        }
        out = hummer_engine::ops::rename_column(&out, from, to)?;
    }
    Ok(out)
}

/// Add the `sourceID` column carrying `alias` to every row.
pub fn add_source_id(table: &Table, alias: &str) -> Result<Table> {
    let mut out = table.clone();
    out.add_column(Column::new(SOURCE_ID_COLUMN, ColumnType::Text), |_, _| {
        Value::text(alias)
    })?;
    Ok(out)
}

/// Run the entire transformation for a set of tables: the first table is
/// the preferred schema; `matches[i]` must be the match result of
/// `tables[0]` vs `tables[i + 1]`. Produces the `sourceID`-tagged full
/// outer union, named `name`.
pub fn integrate(tables: &[&Table], matches: &[MatchResult], name: &str) -> Result<Table> {
    assert_eq!(
        matches.len() + 1,
        tables.len().max(1),
        "need one match result per non-preferred table"
    );
    let mut transformed: Vec<Table> = Vec::with_capacity(tables.len());
    for (i, t) in tables.iter().enumerate() {
        let renamed = if i == 0 {
            (*t).clone()
        } else {
            apply_renames(t, &matches[i - 1])?
        };
        transformed.push(add_source_id(&renamed, t.name())?);
    }
    let refs: Vec<&Table> = transformed.iter().collect();
    outer_union(&refs, name)
}

/// The schema [`apply_renames`] would produce, computed without touching
/// any rows: the renames run on a row-less shell of the table, so every
/// rule (case-insensitive skip, move-aside on collision) is *the* same
/// code path and the result can never drift from the row transform.
fn renamed_schema(table: &Table, result: &MatchResult) -> Result<Schema> {
    let shell = Table::empty(table.name(), table.schema().clone());
    Ok(apply_renames(&shell, result)?.schema().clone())
}

/// [`integrate`] in columnar form: renames are applied to schemas only,
/// each source's cells are read into columns exactly once, the constant
/// `sourceID` column is materialized directly, and the outer union splices
/// whole columns instead of cloning per cell. Output is **bit-identical**
/// to [`integrate`] (same schema, same rows, same order).
pub fn integrate_columnar(tables: &[&Table], matches: &[MatchResult], name: &str) -> Result<Table> {
    assert_eq!(
        matches.len() + 1,
        tables.len().max(1),
        "need one match result per non-preferred table"
    );
    let mut batches: Vec<ColumnarBatch> = Vec::with_capacity(tables.len());
    for (i, t) in tables.iter().enumerate() {
        let schema = if i == 0 {
            t.schema().clone()
        } else {
            renamed_schema(t, &matches[i - 1])?
        };
        let schema = schema.with_column(Column::new(SOURCE_ID_COLUMN, ColumnType::Text))?;
        let len = t.len();
        let mut columns: Vec<ColumnData> = (0..t.schema().len())
            .map(|c| ColumnData::from_values(t.rows().iter().map(|r| r[c].clone()).collect()))
            .collect();
        columns.push(ColumnData::Text {
            values: vec![t.name().to_string(); len],
            validity: vec![true; len],
        });
        batches.push(ColumnarBatch::from_columns(t.name(), schema, columns)?);
    }
    outer_union_columnar(batches, name)?.into_table()
}

/// Dispatch between [`integrate`] and [`integrate_columnar`] — one knob
/// for the pipeline; both layouts produce bit-identical output.
pub fn integrate_with_layout(
    tables: &[&Table],
    matches: &[MatchResult],
    name: &str,
    layout: ExecutionLayout,
) -> Result<Table> {
    match layout {
        ExecutionLayout::Row => integrate(tables, matches, name),
        ExecutionLayout::Columnar => integrate_columnar(tables, matches, name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dumas::SniffConfig;
    use crate::matcher::{match_tables, MatcherConfig};
    use hummer_engine::table;

    fn cfg() -> MatcherConfig {
        MatcherConfig {
            sniff: SniffConfig {
                min_similarity: 0.2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn ee() -> Table {
        table! {
            "EE" => ["Name", "Age"];
            ["John Smith", 24],
            ["Mary Jones", 22],
        }
    }

    fn cs() -> Table {
        table! {
            "CS" => ["FullName", "Years", "Semester"];
            ["John Smith", 24, 5],
            ["Marie Curie", 31, 9],
        }
    }

    #[test]
    fn renames_to_preferred_schema() {
        let m = match_tables(&ee(), &cs(), &cfg());
        let renamed = apply_renames(&cs(), &m).unwrap();
        assert!(renamed.schema().contains("Name"));
        assert!(renamed.schema().contains("Age"));
        assert!(renamed.schema().contains("Semester")); // unmatched survives
    }

    #[test]
    fn source_id_added_with_alias() {
        let t = add_source_id(&ee(), "EE").unwrap();
        assert!(t.schema().contains(SOURCE_ID_COLUMN));
        assert_eq!(t.cell(0, 2), &Value::text("EE"));
    }

    #[test]
    fn integrate_produces_aligned_outer_union() {
        let e = ee();
        let c = cs();
        let m = match_tables(&e, &c, &cfg());
        let u = integrate(&[&e, &c], &[m], "Students").unwrap();
        // Preferred names + unmatched extras + sourceID.
        assert!(u.schema().contains("Name"));
        assert!(u.schema().contains("Age"));
        assert!(u.schema().contains("Semester"));
        assert!(u.schema().contains(SOURCE_ID_COLUMN));
        assert_eq!(u.len(), 4);
        // EE rows have NULL semester; CS rows have values.
        let name_idx = u.resolve("Name").unwrap();
        let sem_idx = u.resolve("Semester").unwrap();
        let sid_idx = u.resolve(SOURCE_ID_COLUMN).unwrap();
        for row in u.rows() {
            if row[sid_idx] == Value::text("EE") {
                assert!(row[sem_idx].is_null());
            } else {
                assert!(!row[name_idx].is_null());
            }
        }
    }

    #[test]
    fn collision_with_unmatched_column_moves_it_aside() {
        // Right table has "Name" (address label, unmatched) and "Person"
        // (actual name). Person→Name must not clobber the squatter.
        let l = table! { "L" => ["Name"]; ["John Smith"], ["Mary Jones"] };
        let r = table! {
            "R" => ["Person", "Name"];
            ["John Smith", "12 Main St"],
            ["Mary Jones", "34 Side Rd"],
        };
        let mut m = match_tables(&l, &r, &cfg());
        // Force the correspondence we are testing (instance data may or may
        // not find it alone).
        m.correspondences.clear();
        m.add("Name", "Person", 0.9);
        let out = apply_renames(&r, &m).unwrap();
        assert!(out.schema().contains("Name"));
        assert!(out.schema().contains("R_Name"));
        let name_idx = out.resolve("Name").unwrap();
        assert_eq!(out.cell(0, name_idx), &Value::text("John Smith"));
    }

    #[test]
    fn integrate_columnar_matches_row_integrate() {
        let e = ee();
        let c = cs();
        let m = match_tables(&e, &c, &cfg());
        let matches = std::slice::from_ref(&m);
        let row_u = integrate(&[&e, &c], matches, "Students").unwrap();
        let col_u = integrate_columnar(&[&e, &c], matches, "Students").unwrap();
        assert_eq!(row_u.schema(), col_u.schema());
        assert_eq!(row_u.rows(), col_u.rows());
        assert_eq!(row_u.name(), col_u.name());
        for layout in [ExecutionLayout::Row, ExecutionLayout::Columnar] {
            let u = integrate_with_layout(&[&e, &c], matches, "Students", layout).unwrap();
            assert_eq!(u.rows(), row_u.rows());
        }
    }

    #[test]
    fn integrate_single_table_just_tags_source() {
        let e = ee();
        let u = integrate(&[&e], &[], "U").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.schema().contains(SOURCE_ID_COLUMN));
    }

    #[test]
    #[should_panic(expected = "one match result per")]
    fn integrate_wrong_match_count_panics() {
        let e = ee();
        let c = cs();
        let _ = integrate(&[&e, &c], &[], "U");
    }
}
