//! The DUMAS schema matcher: from sniffed duplicates to pruned 1:1
//! attribute correspondences.

use crate::correspondence::{Correspondence, MatchResult};
use crate::dumas::{sniff_duplicates_par, SniffConfig};
use crate::hungarian::max_weight_matching;
use crate::matrix::SimilarityMatrix;
use hummer_engine::{Table, Value};
use hummer_par::{par_map, Parallelism};
use hummer_textsim::jaro::jaro_winkler;
use hummer_textsim::softtfidf::SoftTfIdf;
use hummer_textsim::tfidf::Corpus;
use hummer_textsim::tokenize::word_tokens;

/// Configuration of the schema matcher.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// How duplicates are sniffed (top-k, minimum tuple similarity, 1:1).
    pub sniff: SniffConfig,
    /// SoftTFIDF secondary-similarity threshold θ for field comparison.
    pub soft_theta: f64,
    /// Correspondences with an averaged score below this are pruned
    /// (§2.2: "correspondences with a similarity score below a given
    /// threshold are pruned").
    pub prune_threshold: f64,
    /// Blend factor `λ ∈ [0, 1]` for column-*label* similarity
    /// (Jaro-Winkler of attribute names): the matrix entry becomes
    /// `(1−λ)·instance + λ·label`. DUMAS is purely instance-based, so the
    /// faithful default is 0; the ablation benches sweep it.
    pub label_weight: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            sniff: SniffConfig::default(),
            soft_theta: 0.9,
            prune_threshold: 0.35,
            label_weight: 0.0,
        }
    }
}

/// Tokenized view of every cell of a table, plus NULL flags.
fn tokenized_cells(t: &Table) -> Vec<Vec<Option<Vec<String>>>> {
    t.rows()
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Null => None,
                    other => Some(word_tokens(&other.to_string())),
                })
                .collect()
        })
        .collect()
}

/// Match two tables' schemas by comparing the fields of sniffed duplicates.
///
/// Implements §2.2 of the paper end to end:
/// 1. sniff the most similar tuple pairs (TF-IDF over whole tuples),
/// 2. compare each pair field-wise with SoftTFIDF → one matrix per pair,
/// 3. average the matrices,
/// 4. maximum-weight bipartite matching → 1:1 correspondences,
/// 5. prune below `prune_threshold`.
///
/// # Example
///
/// ```
/// use hummer_engine::table;
/// use hummer_matching::{match_tables, MatcherConfig, SniffConfig};
///
/// // Same people, different attribute labels and column order.
/// let ee = table! {
///     "EE_Student" => ["Name", "Age"];
///     ["John Smith", 24],
///     ["Mary Jones", 22],
/// };
/// let cs = table! {
///     "CS_Students" => ["Years", "FullName"];
///     [24, "John Smith"],
///     [22, "Mary Jones"],
/// };
/// let cfg = MatcherConfig {
///     sniff: SniffConfig { min_similarity: 0.2, ..Default::default() },
///     ..Default::default()
/// };
/// let result = match_tables(&ee, &cs, &cfg);
/// // The rename map aligns the right table to the left (preferred) schema.
/// let renames = result.rename_map();
/// assert_eq!(renames.get("FullName").unwrap(), "Name");
/// assert_eq!(renames.get("Years").unwrap(), "Age");
/// ```
pub fn match_tables(left: &Table, right: &Table, cfg: &MatcherConfig) -> MatchResult {
    match_tables_par(left, right, cfg, Parallelism::sequential())
}

/// [`match_tables`] with up to `par.get()` threads: duplicate sniffing
/// scores left rows concurrently, and the per-duplicate field-similarity
/// matrices (the expensive SoftTFIDF comparisons) are computed one
/// duplicate pair per task before the single-threaded Hungarian assignment.
///
/// Output is bit-identical to [`match_tables`] for every degree: matrices
/// merge in duplicate order, and the mean/assignment steps see the same
/// numbers either way.
pub fn match_tables_par(
    left: &Table,
    right: &Table,
    cfg: &MatcherConfig,
    par: Parallelism,
) -> MatchResult {
    let duplicates = sniff_duplicates_par(left, right, &cfg.sniff, par);

    let n_l = left.schema().len();
    let n_r = right.schema().len();

    // Field corpus: every non-null cell of either table is one document, so
    // SoftTFIDF weights reflect how identifying a field value is.
    let left_cells = tokenized_cells(left);
    let right_cells = tokenized_cells(right);
    let corpus = Corpus::from_documents(
        left_cells
            .iter()
            .chain(right_cells.iter())
            .flatten()
            .flatten(),
    );
    let soft = SoftTfIdf::with_theta(&corpus, cfg.soft_theta);

    // One similarity matrix per duplicate pair — computed in parallel (the
    // corpus and cell caches are shared read-only) — then averaged.
    let per_pair: Vec<SimilarityMatrix> = par_map(par, &duplicates, |d| {
        let lrow = &left_cells[d.left];
        let rrow = &right_cells[d.right];
        SimilarityMatrix::from_fn(n_l, n_r, |i, j| match (&lrow[i], &rrow[j]) {
            (Some(a), Some(b)) => soft.similarity(a, b),
            _ => 0.0,
        })
    });
    let mut matrix =
        SimilarityMatrix::mean(&per_pair).unwrap_or_else(|| SimilarityMatrix::zeros(n_l, n_r));

    // Optional label-similarity blend (ablation knob; default off).
    if cfg.label_weight > 0.0 {
        let lam = cfg.label_weight.clamp(0.0, 1.0);
        let lnames = left.schema().names();
        let rnames = right.schema().names();
        for (i, lname) in lnames.iter().enumerate().take(n_l) {
            for (j, rname) in rnames.iter().enumerate().take(n_r) {
                let label = jaro_winkler(&lname.to_lowercase(), &rname.to_lowercase());
                let inst = matrix.get(i, j);
                matrix.set(i, j, (1.0 - lam) * inst + lam * label);
            }
        }
    }

    let assignments = max_weight_matching(&matrix.to_nested());
    let correspondences: Vec<Correspondence> = assignments
        .into_iter()
        .filter(|a| a.weight >= cfg.prune_threshold)
        .map(|a| Correspondence {
            left_column: left.schema().column(a.left).name.clone(),
            right_column: right.schema().column(a.right).name.clone(),
            score: a.weight,
        })
        .collect();

    MatchResult {
        left_table: left.name().to_string(),
        right_table: right.name().to_string(),
        correspondences,
        duplicates_used: duplicates,
        matrix,
    }
}

/// Match every non-preferred table against the preferred (first) one — the
/// star alignment HumMer uses when a query fuses more than two relations
/// ("HumMer is able to display correspondences simultaneously over many
/// relations", §2.2; renaming favors "the first source mentioned in the
/// query", §3).
pub fn match_star(tables: &[&Table], cfg: &MatcherConfig) -> Vec<MatchResult> {
    match_star_par(tables, cfg, Parallelism::sequential())
}

/// [`match_star`] with intra-pair parallelism: each preferred-vs-other
/// match runs through [`match_tables_par`] with the given degree.
pub fn match_star_par(
    tables: &[&Table],
    cfg: &MatcherConfig,
    par: Parallelism,
) -> Vec<MatchResult> {
    match tables.split_first() {
        None => Vec::new(),
        Some((preferred, rest)) => rest
            .iter()
            .map(|t| match_tables_par(preferred, t, cfg, par))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    /// Two student tables with permuted, relabeled schemas and three
    /// overlapping students (with small value variations).
    fn ee() -> Table {
        table! {
            "EE_Student" => ["Name", "Age", "City"];
            ["John Smith", 24, "Berlin"],
            ["Mary Jones", 22, "Hamburg"],
            ["Peter Miller", 27, "Munich"],
            ["Ada Lovelace", 28, "London"],
        }
    }

    fn cs() -> Table {
        table! {
            "CS_Students" => ["Town", "FullName", "Years"];
            ["Berlin", "John Smith", 24],
            ["Hamburg", "Mary Jones", 23],
            ["Paris", "Marie Curie", 31],
        }
    }

    fn cfg() -> MatcherConfig {
        MatcherConfig {
            sniff: SniffConfig {
                min_similarity: 0.2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_expected_correspondences() {
        let r = match_tables(&ee(), &cs(), &cfg());
        let map = r.rename_map();
        assert_eq!(map.get("FullName").map(String::as_str), Some("Name"));
        assert_eq!(map.get("Town").map(String::as_str), Some("City"));
        // Age/Years corresponds via equal numbers in the duplicates.
        assert_eq!(map.get("Years").map(String::as_str), Some("Age"));
    }

    #[test]
    fn correspondences_are_one_to_one() {
        let r = match_tables(&ee(), &cs(), &cfg());
        let mut lefts: Vec<&str> = r
            .correspondences
            .iter()
            .map(|c| c.left_column.as_str())
            .collect();
        let mut rights: Vec<&str> = r
            .correspondences
            .iter()
            .map(|c| c.right_column.as_str())
            .collect();
        let n = r.correspondences.len();
        lefts.sort_unstable();
        lefts.dedup();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(lefts.len(), n);
        assert_eq!(rights.len(), n);
    }

    #[test]
    fn no_duplicates_no_correspondences() {
        let a = table! { "A" => ["x"]; ["aaa bbb ccc"] };
        let b = table! { "B" => ["y"]; ["ddd eee fff"] };
        let r = match_tables(&a, &b, &MatcherConfig::default());
        assert!(r.duplicates_used.is_empty());
        assert!(r.correspondences.is_empty());
    }

    #[test]
    fn pruning_threshold_filters_weak_matches() {
        let mut c = cfg();
        c.prune_threshold = 0.99;
        let r = match_tables(&ee(), &cs(), &c);
        // Nothing is that certain on noisy data.
        assert!(r.correspondences.iter().all(|cc| cc.score >= 0.99));
    }

    #[test]
    fn label_blend_can_rescue_instance_less_case() {
        // No instance overlap at all, but identical labels.
        let a = table! { "A" => ["Name", "City"]; ["aaa", "bbb"] };
        let b = table! { "B" => ["Name", "City"]; ["ccc", "ddd"] };
        let pure = match_tables(&a, &b, &MatcherConfig::default());
        assert!(pure.correspondences.is_empty());
        let blended = match_tables(
            &a,
            &b,
            &MatcherConfig {
                label_weight: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(blended.correspondences.len(), 2);
    }

    #[test]
    fn star_matches_all_against_first() {
        let t1 = ee();
        let t2 = cs();
        let t3 = table! {
            "Registry" => ["Person", "Residence"];
            ["John Smith", "Berlin"],
            ["Ada Lovelace", "London"],
        };
        let results = match_star(&[&t1, &t2, &t3], &cfg());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].right_table, "CS_Students");
        assert_eq!(results[1].right_table, "Registry");
        let m3 = results[1].rename_map();
        assert_eq!(m3.get("Person").map(String::as_str), Some("Name"));
        assert_eq!(m3.get("Residence").map(String::as_str), Some("City"));
    }

    #[test]
    fn matrix_shape_matches_schemas() {
        let r = match_tables(&ee(), &cs(), &cfg());
        assert_eq!(r.matrix.rows(), 3);
        assert_eq!(r.matrix.cols(), 3);
    }

    #[test]
    fn scores_bounded() {
        let r = match_tables(&ee(), &cs(), &cfg());
        for c in &r.correspondences {
            assert!((0.0..=1.0).contains(&c.score));
        }
    }
}
