//! # hummer-matching — DUMAS instance-based schema matching
//!
//! Implements the first automated phase of HumMer (paper §2.2): bridging
//! schematic heterogeneity *without* relying on attribute labels, by
//! exploiting the duplicates the dirty sources are assumed to contain:
//!
//! 1. [`dumas`] *sniffs* a few duplicate tuples across two unaligned tables
//!    by ranking tuple pairs with TF-IDF cosine over the tuple-as-one-string
//!    rendering,
//! 2. [`matcher`] compares each duplicate pair field-wise with SoftTFIDF,
//!    averages the per-pair [`matrix::SimilarityMatrix`]s,
//! 3. [`hungarian`] computes the maximum-weight bipartite matching over the
//!    averaged matrix, yielding 1:1 [`correspondence::Correspondence`]s,
//!    pruned by threshold,
//! 4. [`transform`] renames matched attributes to the preferred schema,
//!    adds the `sourceID` column, and computes the full outer union.
//!
//! The expensive comparisons parallelize: [`match_tables_par`] /
//! [`match_star_par`] score sniff candidates and per-duplicate matrices on
//! up to [`Parallelism::get`] threads with output bit-identical to the
//! sequential entry points.
//!
//! ## Example
//!
//! ```
//! use hummer_engine::table;
//! use hummer_matching::{match_tables, MatcherConfig, SniffConfig};
//!
//! let ee = table! {
//!     "EE_Student" => ["Name", "Age"];
//!     ["John Smith", 24],
//!     ["Mary Jones", 22],
//!     ["Pete Miller", 27],
//! };
//! let cs = table! {
//!     "CS_Students" => ["FullName", "Years"];
//!     ["John Smith", 24],
//!     ["Mary Jones", 22],
//! };
//! let cfg = MatcherConfig {
//!     sniff: SniffConfig { min_similarity: 0.2, ..Default::default() },
//!     ..Default::default()
//! };
//! let result = match_tables(&ee, &cs, &cfg);
//! let renames = result.rename_map();
//! assert_eq!(renames.get("FullName").unwrap(), "Name");
//! assert_eq!(renames.get("Years").unwrap(), "Age");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod correspondence;
pub mod dumas;
pub mod hungarian;
pub mod matcher;
pub mod matrix;
pub mod transform;

pub use correspondence::{Correspondence, MatchResult};
pub use dumas::{sniff_duplicates, sniff_duplicates_par, SniffConfig, TupleMatch};
pub use hummer_par::Parallelism;
pub use hungarian::{max_weight_matching, Assignment};
pub use matcher::{match_star, match_star_par, match_tables, match_tables_par, MatcherConfig};
pub use matrix::SimilarityMatrix;
pub use transform::{
    add_source_id, apply_renames, integrate, integrate_columnar, integrate_with_layout,
    SOURCE_ID_COLUMN,
};
