//! Attribute-pair similarity matrices.
//!
//! For each sniffed duplicate pair, DUMAS compares the two tuples
//! "field-wise using the SoftTFIDF similarity measure, resulting in a matrix
//! containing similarity scores for each attribute combination. The matrices
//! of each duplicate are averaged" (paper §2.2). This module holds that
//! matrix type and its averaging.

use std::fmt;

/// A dense `left-attributes × right-attributes` similarity matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SimilarityMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = SimilarityMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows (left attributes).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right attributes).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read a cell.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Write a cell.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Element-wise accumulate another matrix (shapes must agree).
    pub fn add_assign(&mut self, other: &SimilarityMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shapes must agree"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale all entries.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// The element-wise mean of several matrices (all the same shape).
    /// Returns `None` for an empty slice.
    pub fn mean(matrices: &[SimilarityMatrix]) -> Option<SimilarityMatrix> {
        let first = matrices.first()?;
        let mut acc = SimilarityMatrix::zeros(first.rows, first.cols);
        for m in matrices {
            acc.add_assign(m);
        }
        acc.scale(1.0 / matrices.len() as f64);
        Some(acc)
    }

    /// Borrow as the row-major nested vec the Hungarian solver expects.
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j)).collect())
            .collect()
    }
}

impl fmt::Display for SimilarityMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:.3}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = SimilarityMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn mean_averages() {
        let a = SimilarityMatrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = SimilarityMatrix::from_fn(2, 2, |_, _| 0.5);
        let m = SimilarityMatrix::mean(&[a, b]).unwrap();
        assert_eq!(m.get(0, 0), 0.75);
        assert_eq!(m.get(0, 1), 0.25);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(SimilarityMatrix::mean(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "shapes must agree")]
    fn shape_mismatch_panics() {
        let mut a = SimilarityMatrix::zeros(1, 2);
        let b = SimilarityMatrix::zeros(2, 1);
        a.add_assign(&b);
    }

    #[test]
    fn display_is_row_major() {
        let m = SimilarityMatrix::from_fn(1, 2, |_, j| j as f64);
        assert_eq!(m.to_string(), "0.000 1.000\n");
    }

    #[test]
    fn to_nested_round_trips() {
        let m = SimilarityMatrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let n = m.to_nested();
        assert_eq!(n[1][0], 1.0);
        assert_eq!(n[1][1], 2.0);
    }
}
