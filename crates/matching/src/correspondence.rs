//! Attribute correspondences — the output of schema matching.

use crate::dumas::TupleMatch;
use crate::matrix::SimilarityMatrix;
use std::collections::HashMap;
use std::fmt;

/// A 1:1 correspondence between an attribute of the preferred (left) schema
/// and an attribute of a non-preferred (right) schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Attribute name in the left (preferred) schema.
    pub left_column: String,
    /// Attribute name in the right schema.
    pub right_column: String,
    /// Averaged field-similarity score supporting the correspondence.
    pub score: f64,
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ≈ {} ({:.3})",
            self.left_column, self.right_column, self.score
        )
    }
}

/// The full result of matching one table pair, kept rich enough for the
/// demo's "adjust matching" step: users may delete false correspondences or
/// add missed ones before transformation runs (paper §2.2: "the
/// correspondences are presented, allowing to manually add missing or delete
/// false correspondences").
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Name of the left (preferred) table.
    pub left_table: String,
    /// Name of the right table.
    pub right_table: String,
    /// The pruned 1:1 correspondences, sorted by descending score.
    pub correspondences: Vec<Correspondence>,
    /// The duplicate tuple pairs the correspondences were derived from.
    pub duplicates_used: Vec<TupleMatch>,
    /// The averaged attribute-similarity matrix (for inspection / GUI).
    pub matrix: SimilarityMatrix,
}

impl MatchResult {
    /// Number of 1:1 correspondences this match found — the `match` stage
    /// span and `/metrics` report the sum of this over all table pairs.
    pub fn correspondence_count(&self) -> usize {
        self.correspondences.len()
    }

    /// Map from right-schema column name to the preferred left-schema name
    /// it should be renamed to.
    pub fn rename_map(&self) -> HashMap<String, String> {
        self.correspondences
            .iter()
            .map(|c| (c.right_column.clone(), c.left_column.clone()))
            .collect()
    }

    /// Manually add a correspondence (user override). Any existing
    /// correspondence touching either column is replaced — the set stays 1:1.
    pub fn add(&mut self, left: impl Into<String>, right: impl Into<String>, score: f64) {
        let left = left.into();
        let right = right.into();
        self.correspondences.retain(|c| {
            !c.left_column.eq_ignore_ascii_case(&left)
                && !c.right_column.eq_ignore_ascii_case(&right)
        });
        self.correspondences.push(Correspondence {
            left_column: left,
            right_column: right,
            score,
        });
        self.correspondences
            .sort_by(|a, b| b.score.total_cmp(&a.score));
    }

    /// Manually delete the correspondence involving `left` and `right`,
    /// returning whether one was removed.
    pub fn remove(&mut self, left: &str, right: &str) -> bool {
        let before = self.correspondences.len();
        self.correspondences.retain(|c| {
            !(c.left_column.eq_ignore_ascii_case(left)
                && c.right_column.eq_ignore_ascii_case(right))
        });
        self.correspondences.len() != before
    }

    /// The correspondence for a given left column, if any.
    pub fn for_left(&self, left: &str) -> Option<&Correspondence> {
        self.correspondences
            .iter()
            .find(|c| c.left_column.eq_ignore_ascii_case(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> MatchResult {
        MatchResult {
            left_table: "L".into(),
            right_table: "R".into(),
            correspondences: vec![
                Correspondence {
                    left_column: "Name".into(),
                    right_column: "Person".into(),
                    score: 0.9,
                },
                Correspondence {
                    left_column: "City".into(),
                    right_column: "Ort".into(),
                    score: 0.8,
                },
            ],
            duplicates_used: vec![],
            matrix: SimilarityMatrix::zeros(2, 2),
        }
    }

    #[test]
    fn rename_map_direction() {
        let m = result().rename_map();
        assert_eq!(m.get("Person").unwrap(), "Name");
        assert_eq!(m.get("Ort").unwrap(), "City");
    }

    #[test]
    fn add_replaces_conflicts_keeping_one_to_one() {
        let mut r = result();
        r.add("Name", "Label", 0.95); // replaces Name≈Person
        assert_eq!(r.correspondences.len(), 2);
        assert_eq!(r.for_left("Name").unwrap().right_column, "Label");
    }

    #[test]
    fn remove_by_pair() {
        let mut r = result();
        assert!(r.remove("city", "ort")); // case-insensitive
        assert!(!r.remove("city", "ort"));
        assert_eq!(r.correspondences.len(), 1);
    }

    #[test]
    fn display_format() {
        let c = Correspondence {
            left_column: "A".into(),
            right_column: "B".into(),
            score: 0.5,
        };
        assert_eq!(c.to_string(), "A ≈ B (0.500)");
    }
}
