//! Duplicate *sniffing* across unaligned tables — the first half of DUMAS.
//!
//! "Duplicate detection in unaligned databases is more difficult than in the
//! usual setting, because attribute correspondences are missing. [...] the
//! goal of this phase is not to detect all duplicates, but only as many as
//! required for schema matching. DUMAS considers a tuple as one string and
//! applies a string similarity measure to extract the most similar tuple
//! pairs." (paper §2.2)
//!
//! Tuples become TF-IDF weight vectors over word tokens; pairs are ranked by
//! cosine similarity using an inverted index so only token-sharing pairs are
//! scored (never the full n×m cross product).

use hummer_engine::Table;
use hummer_par::{par_chunks, Parallelism};
use hummer_textsim::tfidf::{Corpus, TfIdfVector};
use hummer_textsim::tokenize::word_tokens;
use std::collections::HashMap;

/// A candidate duplicate pair across two tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleMatch {
    /// Row index in the left table.
    pub left: usize,
    /// Row index in the right table.
    pub right: usize,
    /// TF-IDF cosine similarity of the two tuples rendered as strings.
    pub similarity: f64,
}

/// Configuration for duplicate sniffing.
#[derive(Debug, Clone)]
pub struct SniffConfig {
    /// How many top pairs to return (the `k` duplicates used for matching).
    pub top_k: usize,
    /// Minimum tuple cosine similarity for a pair to qualify at all.
    pub min_similarity: f64,
    /// When true (default), each row may appear in at most one returned
    /// pair (greedy 1:1 filter by descending similarity), which stops one
    /// hub tuple from dominating the sample.
    pub one_to_one: bool,
}

impl Default for SniffConfig {
    fn default() -> Self {
        SniffConfig {
            top_k: 10,
            min_similarity: 0.5,
            one_to_one: true,
        }
    }
}

/// The tuple-as-document view of every row of a table.
fn row_documents(t: &Table) -> Vec<Vec<String>> {
    t.rows()
        .iter()
        .map(|r| word_tokens(&r.as_document()))
        .collect()
}

/// Find the most similar tuple pairs between two unaligned tables.
///
/// Corpus statistics (document frequencies) are computed over *both* tables
/// so a token common in either source is appropriately discounted.
///
/// Single-threaded; [`sniff_duplicates_par`] fans the per-row scoring out
/// over threads with identical output.
pub fn sniff_duplicates(left: &Table, right: &Table, cfg: &SniffConfig) -> Vec<TupleMatch> {
    sniff_duplicates_par(left, right, cfg, Parallelism::sequential())
}

/// [`sniff_duplicates`] with up to `par.get()` threads scoring left rows
/// concurrently against a shared inverted index over the right table.
///
/// Each left row's accumulation is independent, and the final total order
/// (similarity desc, then row indices) makes the result deterministic
/// regardless of degree — the output is bit-identical to the sequential
/// path.
pub fn sniff_duplicates_par(
    left: &Table,
    right: &Table,
    cfg: &SniffConfig,
    par: Parallelism,
) -> Vec<TupleMatch> {
    let left_docs = row_documents(left);
    let right_docs = row_documents(right);
    let corpus = Corpus::from_documents(left_docs.iter().chain(right_docs.iter()));

    let left_vecs: Vec<TfIdfVector> = left_docs.iter().map(|d| corpus.weight_vector(d)).collect();
    let right_vecs: Vec<TfIdfVector> = right_docs.iter().map(|d| corpus.weight_vector(d)).collect();

    // Inverted index over the right table: token -> [(row, weight)].
    let mut index: HashMap<&str, Vec<(usize, f64)>> = HashMap::new();
    for (j, v) in right_vecs.iter().enumerate() {
        for (tok, w) in v.iter() {
            index.entry(tok).or_default().push((j, w));
        }
    }

    // Accumulate dot products per left row, visiting only shared tokens.
    // Chunks of left rows score in parallel (the index is shared
    // read-only); each chunk reuses one accumulator map across its rows.
    let mut pairs: Vec<TupleMatch> = par_chunks(par, &left_vecs, |offset, chunk| {
        let mut out: Vec<TupleMatch> = Vec::new();
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for (k, v) in chunk.iter().enumerate() {
            let i = offset + k;
            acc.clear();
            for (tok, w) in v.iter() {
                if let Some(posting) = index.get(tok) {
                    for &(j, wj) in posting {
                        *acc.entry(j).or_insert(0.0) += w * wj;
                    }
                }
            }
            for (&j, &dot) in &acc {
                let sim = dot.clamp(0.0, 1.0);
                if sim >= cfg.min_similarity {
                    out.push(TupleMatch {
                        left: i,
                        right: j,
                        similarity: sim,
                    });
                }
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();

    pairs.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });

    if cfg.one_to_one {
        let mut used_l = vec![false; left.len()];
        let mut used_r = vec![false; right.len()];
        pairs.retain(|p| {
            if used_l[p.left] || used_r[p.right] {
                false
            } else {
                used_l[p.left] = true;
                used_r[p.right] = true;
                true
            }
        });
    }
    pairs.truncate(cfg.top_k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummer_engine::table;

    fn left() -> Table {
        table! {
            "L" => ["Name", "City", "Age"];
            ["John Smith", "Chicago", 34],
            ["Mary Jones", "Berlin", 28],
            ["Peter Miller", "Paris", 45],
        }
    }

    fn right() -> Table {
        // Different schema order and labels; overlapping entities.
        table! {
            "R" => ["Ort", "Person"];
            ["Chicago", "John Smith"],
            ["Roma", "Giulia Rossi"],
            ["Berlin", "Mary Jones"],
        }
    }

    #[test]
    fn finds_true_duplicates_first() {
        let pairs = sniff_duplicates(&left(), &right(), &SniffConfig::default());
        assert!(pairs.len() >= 2);
        // The two overlapping people rank on top, in some order.
        let top2: Vec<(usize, usize)> = pairs.iter().take(2).map(|p| (p.left, p.right)).collect();
        assert!(top2.contains(&(0, 0)), "John Smith pair in top 2: {top2:?}");
        assert!(top2.contains(&(1, 2)), "Mary Jones pair in top 2: {top2:?}");
    }

    #[test]
    fn similarity_is_bounded() {
        let pairs = sniff_duplicates(&left(), &right(), &SniffConfig::default());
        for p in pairs {
            assert!((0.0..=1.0).contains(&p.similarity));
        }
    }

    #[test]
    fn min_similarity_prunes() {
        let cfg = SniffConfig {
            min_similarity: 0.99,
            ..Default::default()
        };
        let pairs = sniff_duplicates(&left(), &right(), &cfg);
        assert!(pairs.is_empty(), "no pair is ~identical: {pairs:?}");
    }

    #[test]
    fn top_k_truncates() {
        let cfg = SniffConfig {
            top_k: 1,
            min_similarity: 0.1,
            ..Default::default()
        };
        let pairs = sniff_duplicates(&left(), &right(), &cfg);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn one_to_one_suppresses_hub_rows() {
        // Right row 0 is similar to both left rows; 1:1 keeps only the best.
        let l = table! {
            "L" => ["a"];
            ["john smith chicago"],
            ["john smith chicago illinois"],
        };
        let r = table! {
            "R" => ["b"];
            ["john smith chicago"],
        };
        let strict = sniff_duplicates(
            &l,
            &r,
            &SniffConfig {
                min_similarity: 0.1,
                ..Default::default()
            },
        );
        assert_eq!(strict.len(), 1);
        let lax = sniff_duplicates(
            &l,
            &r,
            &SniffConfig {
                min_similarity: 0.1,
                one_to_one: false,
                ..Default::default()
            },
        );
        assert_eq!(lax.len(), 2);
    }

    #[test]
    fn disjoint_tables_no_pairs() {
        let l = table! { "L" => ["a"]; ["aaa bbb"] };
        let r = table! { "R" => ["b"]; ["ccc ddd"] };
        let pairs = sniff_duplicates(
            &l,
            &r,
            &SniffConfig {
                min_similarity: 0.0,
                ..Default::default()
            },
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn empty_tables() {
        let l = table! { "L" => ["a"]; };
        let pairs = sniff_duplicates(&l, &right(), &SniffConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn deterministic_order_on_ties() {
        let l = table! { "L" => ["a"]; ["x y"], ["x y"] };
        let r = table! { "R" => ["b"]; ["x y"], ["x y"] };
        let cfg = SniffConfig {
            min_similarity: 0.1,
            one_to_one: false,
            top_k: 10,
        };
        let p1 = sniff_duplicates(&l, &r, &cfg);
        let p2 = sniff_duplicates(&l, &r, &cfg);
        assert_eq!(p1, p2);
    }
}
