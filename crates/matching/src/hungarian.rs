//! Maximum-weight bipartite matching (Kuhn-Munkres / Hungarian algorithm).
//!
//! DUMAS derives attribute correspondences by computing "the maximum weight
//! matching" over the averaged field-similarity matrix (paper §2.2). The
//! matrix is rectangular in general (schemas have different widths); we pad
//! to a square with zero weights, solve, and drop pad assignments.

/// One assignment in a matching: left index, right index, and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Row (left-schema attribute) index.
    pub left: usize,
    /// Column (right-schema attribute) index.
    pub right: usize,
    /// The matched weight.
    pub weight: f64,
}

/// Compute a maximum-weight matching of the bipartite graph given as a
/// dense `weights[left][right]` matrix (all weights must be finite;
/// negative weights are treated as 0 — never worth matching).
///
/// Returns one [`Assignment`] per matched pair with strictly positive
/// weight, sorted by descending weight. Runs the O(n³) potentials variant
/// of the Hungarian algorithm.
pub fn max_weight_matching(weights: &[Vec<f64>]) -> Vec<Assignment> {
    let n_rows = weights.len();
    let n_cols = weights.first().map_or(0, |r| r.len());
    if n_rows == 0 || n_cols == 0 {
        return Vec::new();
    }
    debug_assert!(
        weights.iter().all(|r| r.len() == n_cols),
        "weight matrix must be rectangular"
    );
    let n = n_rows.max(n_cols);

    // Build a square *cost* matrix for minimization: cost = max_w - w, with
    // zero-padding rows/columns carrying cost max_w (equivalent to w = 0).
    let max_w = weights
        .iter()
        .flatten()
        .fold(0.0_f64, |acc, &w| acc.max(w.max(0.0)));
    let cost = |i: usize, j: usize| -> f64 {
        if i < n_rows && j < n_cols {
            max_w - weights[i][j].max(0.0)
        } else {
            max_w
        }
    };

    // Hungarian algorithm with row/column potentials.
    // Indices are 1-based internally; 0 is the virtual root.
    let mut u = vec![0.0_f64; n + 1]; // row potentials
    let mut v = vec![0.0_f64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out: Vec<Assignment> = Vec::new();
    for (j, &i) in p.iter().enumerate().skip(1).take(n) {
        if i == 0 {
            continue;
        }
        let (li, rj) = (i - 1, j - 1);
        if li < n_rows && rj < n_cols && weights[li][rj] > 0.0 {
            out.push(Assignment {
                left: li,
                right: rj,
                weight: weights[li][rj],
            });
        }
    }
    out.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    out
}

/// Total weight of a matching.
pub fn matching_weight(assignments: &[Assignment]) -> f64 {
    assignments.iter().map(|a| a.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(w: &[&[f64]]) -> Vec<Assignment> {
        let m: Vec<Vec<f64>> = w.iter().map(|r| r.to_vec()).collect();
        max_weight_matching(&m)
    }

    #[test]
    fn identity_matrix_matches_diagonal() {
        let m = solve(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(m.len(), 2);
        assert!(m.iter().any(|a| a.left == 0 && a.right == 0));
        assert!(m.iter().any(|a| a.left == 1 && a.right == 1));
    }

    #[test]
    fn prefers_total_weight_over_greedy() {
        // Greedy would take (0,0)=0.9 then be stuck with (1,1)=0.1 → 1.0.
        // Optimal is (0,1)=0.8 + (1,0)=0.8 → 1.6.
        let m = solve(&[&[0.9, 0.8], &[0.8, 0.1]]);
        let total = matching_weight(&m);
        assert!((total - 1.6).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn rectangular_wide() {
        // 2 rows, 3 columns: best is (0,2) and (1,0).
        let m = solve(&[&[0.2, 0.1, 0.9], &[0.8, 0.3, 0.85]]);
        assert_eq!(m.len(), 2);
        let total = matching_weight(&m);
        assert!((total - 1.7).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn rectangular_tall() {
        let m = solve(&[&[0.9], &[0.8], &[0.1]]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left, 0);
        assert_eq!(m[0].right, 0);
    }

    #[test]
    fn zero_weights_not_matched() {
        let m = solve(&[&[0.0, 0.0], &[0.0, 0.7]]);
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].left, m[0].right), (1, 1));
    }

    #[test]
    fn negative_weights_treated_as_zero() {
        let m = solve(&[&[-0.5, 0.3], &[0.2, -0.9]]);
        let total = matching_weight(&m);
        assert!((total - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_weight_matching(&[]).is_empty());
        assert!(max_weight_matching(&[vec![]]).is_empty());
    }

    #[test]
    fn matching_is_one_to_one() {
        let w = vec![
            vec![0.5, 0.6, 0.7, 0.2],
            vec![0.9, 0.4, 0.3, 0.8],
            vec![0.1, 0.95, 0.2, 0.6],
        ];
        let m = max_weight_matching(&w);
        let mut lefts: Vec<_> = m.iter().map(|a| a.left).collect();
        let mut rights: Vec<_> = m.iter().map(|a| a.right).collect();
        lefts.sort_unstable();
        lefts.dedup();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(lefts.len(), m.len());
        assert_eq!(rights.len(), m.len());
    }

    #[test]
    fn sorted_by_descending_weight() {
        let m = solve(&[&[0.3, 0.0], &[0.0, 0.9]]);
        assert!(m[0].weight >= m[1].weight);
    }

    #[test]
    fn beats_brute_force_on_random_small_matrices() {
        // Exhaustive check on all permutations for 4x4 matrices.
        let w = vec![
            vec![0.11, 0.74, 0.35, 0.52],
            vec![0.63, 0.22, 0.81, 0.17],
            vec![0.29, 0.58, 0.44, 0.93],
            vec![0.77, 0.31, 0.66, 0.05],
        ];
        let m = max_weight_matching(&w);
        let hungarian_total = matching_weight(&m);
        // Brute force over permutations of columns.
        let mut best = 0.0_f64;
        let idx = [0usize, 1, 2, 3];
        let mut perm = idx;
        // Heap's algorithm, iterative.
        let mut c = [0usize; 4];
        let score = |p: &[usize; 4]| -> f64 { (0..4).map(|i| w[i][p[i]]).sum() };
        best = best.max(score(&perm));
        let mut i = 0;
        while i < 4 {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                best = best.max(score(&perm));
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        assert!(
            (hungarian_total - best).abs() < 1e-9,
            "{hungarian_total} vs {best}"
        );
    }
}
