//! Executor for parsed Fuse By queries.
//!
//! Execution order mirrors the paper's semantics:
//!
//! 1. fetch the referenced tables from the catalog,
//! 2. combine them — `FUSE FROM` tags each table with `sourceID` and takes
//!    the **full outer union** (columns aligned by name; the full pipeline
//!    in `hummer-core` runs schema matching first so corresponding columns
//!    already share names), plain `FROM` takes the cross product (join
//!    predicates live in `WHERE`),
//! 3. apply `WHERE`,
//! 4. `FUSE BY` runs the fusion operator with the `RESOLVE` specifications
//!    from the select list (default `COALESCE`), or plain `GROUP BY` runs
//!    SQL aggregation,
//! 5. apply `HAVING`, then `ORDER BY`,
//! 6. project the select list (wildcard expands to all source attributes —
//!    bookkeeping columns are kept out of `*` for fusion queries).

use crate::ast::{FuseQuery, SelectItem};
use crate::catalog::Catalog;
use crate::error::{QueryError, Result};
use crate::parser::parse;
use hummer_engine::ops::{
    cross_product, group_by, outer_union, select as filter_rows, sort, AggFunc, Aggregate, SortKey,
};
use hummer_engine::{Column, ColumnType, Expr, Table, Value};
use hummer_fusion::{
    fuse as run_fusion, FunctionRegistry, FusionSpec, Lineage, Parallelism, ResolutionSpec,
    SampleConflict,
};
use std::collections::HashMap;

/// Bookkeeping columns excluded from `*` expansion in fusion queries.
const BOOKKEEPING: [&str; 2] = ["sourceID", "objectID"];

/// Detailed fusion by-products of a query (intermediate fused table,
/// lineage, conflict samples) — what the demo GUI visualizes.
#[derive(Debug, Clone)]
pub struct FusionInfo {
    /// The fused table before `HAVING`/`ORDER BY`/projection.
    pub fused_table: Table,
    /// Per-cell lineage of `fused_table`.
    pub lineage: Lineage,
    /// Sampled conflicts.
    pub sample_conflicts: Vec<SampleConflict>,
    /// Total resolved conflicts.
    pub conflict_count: usize,
}

/// Result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The final result table.
    pub table: Table,
    /// Fusion by-products, when the query fused.
    pub fusion: Option<FusionInfo>,
}

/// Parse and execute a Fuse By query against a catalog.
pub fn run_query(
    sql: &str,
    catalog: &dyn Catalog,
    registry: &FunctionRegistry,
) -> Result<QueryOutput> {
    let q = parse(sql)?;
    execute(&q, catalog, registry)
}

/// Execute a parsed query.
pub fn execute(
    query: &FuseQuery,
    catalog: &dyn Catalog,
    registry: &FunctionRegistry,
) -> Result<QueryOutput> {
    // 1. Fetch tables.
    let mut tables: Vec<Table> = Vec::with_capacity(query.from.tables.len());
    for alias in &query.from.tables {
        let t = catalog
            .table(alias)
            .ok_or_else(|| QueryError::UnknownTable(alias.clone()))?;
        tables.push(t.clone());
    }
    let combined = combine_tables(query, &tables)?;
    execute_combined(query, &combined, registry)
}

/// Step 2 of execution: combine the fetched tables — `FUSE FROM` tags each
/// with `sourceID` and takes the full outer union, plain `FROM` takes the
/// cross product.
///
/// Exposed so callers that materialize the combination elsewhere (e.g. a
/// serving layer with a prepared-pipeline cache) can hand an
/// already-integrated table straight to [`execute_combined`].
pub fn combine_tables(query: &FuseQuery, tables: &[Table]) -> Result<Table> {
    if tables.is_empty() {
        return Err(QueryError::Semantic("query references no tables".into()));
    }
    let combined: Table = if query.from.fuse {
        // FUSE FROM: sourceID + full outer union.
        let tagged: Vec<Table> = tables
            .iter()
            .map(|t| {
                if t.schema().contains("sourceID") {
                    Ok(t.clone())
                } else {
                    let mut c = t.clone();
                    c.add_column(Column::new("sourceID", ColumnType::Text), |_, _| {
                        Value::text(t.name())
                    })?;
                    Ok::<Table, QueryError>(c)
                }
            })
            .collect::<Result<_>>()?;
        let refs: Vec<&Table> = tagged.iter().collect();
        outer_union(&refs, tables[0].name())?
    } else {
        let mut acc = tables[0].clone();
        for t in &tables[1..] {
            acc = cross_product(&acc, t)?;
        }
        acc
    };
    Ok(combined)
}

/// Steps 3–6 of execution, starting from an already-combined table: `WHERE`,
/// `FUSE BY`/`GROUP BY`, `HAVING`, `ORDER BY`, projection.
///
/// `combined` must carry the columns the query references; for fusion
/// queries that is the `sourceID`-tagged outer union (extra bookkeeping
/// columns such as a precomputed `objectID` are welcome — they stay out of
/// `*` expansion and are available as `FUSE BY` keys). Borrowed, not owned:
/// a serving layer replays many queries against one cached table, and the
/// hot (cache-hit) path must not pay an O(rows × cols) copy per query.
pub fn execute_combined(
    query: &FuseQuery,
    combined: &Table,
    registry: &FunctionRegistry,
) -> Result<QueryOutput> {
    execute_combined_par(query, combined, registry, Parallelism::sequential())
}

/// [`execute_combined`] with intra-query parallelism: a `FUSE BY` clause
/// resolves disjoint duplicate clusters on up to `par.get()` threads
/// (identical output for every degree; see `hummer_par`'s determinism
/// contract). This is the knob a serving layer sets per request so its
/// worker pool and intra-query threads compose without oversubscription.
pub fn execute_combined_par(
    query: &FuseQuery,
    combined: &Table,
    registry: &FunctionRegistry,
    par: Parallelism,
) -> Result<QueryOutput> {
    // 3. WHERE.
    let filtered;
    let combined: &Table = match &query.where_clause {
        Some(pred) => {
            filtered = filter_rows(combined, pred)?;
            &filtered
        }
        None => combined,
    };

    // Alias map: select-list alias → underlying column name (for HAVING /
    // ORDER BY references).
    let alias_map = build_alias_map(query);

    // 4. FUSE BY or GROUP BY.
    let mut fusion_info: Option<FusionInfo> = None;
    let mut current: Table;
    if let Some(keys) = &query.fuse_by {
        let mut spec = FusionSpec::by_key(keys.clone()).with_parallelism(par);
        let mut resolved_cols: Vec<String> = Vec::new();
        for (col, rspec) in query.resolutions() {
            let key = col.to_ascii_lowercase();
            if resolved_cols.contains(&key) {
                return Err(QueryError::Semantic(format!(
                    "column `{col}` is RESOLVEd more than once; a fused column \
                     has exactly one resolution function"
                )));
            }
            resolved_cols.push(key);
            let rs = rspec
                .cloned()
                .unwrap_or_else(|| ResolutionSpec::named("coalesce"));
            spec = spec.resolve(col, rs);
        }
        let fused = run_fusion(combined, &spec, registry)?;
        fusion_info = Some(FusionInfo {
            fused_table: fused.table.clone(),
            lineage: fused.lineage,
            sample_conflicts: fused.sample_conflicts,
            conflict_count: fused.conflict_count,
        });
        current = fused.table;
    } else if !query.group_by.is_empty() {
        let aggs = collect_aggregates(query)?;
        let keys: Vec<&str> = query.group_by.iter().map(String::as_str).collect();
        current = group_by(combined, &keys, &aggs)?;
    } else if query
        .select
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    {
        // Global aggregation without GROUP BY.
        let aggs = collect_aggregates(query)?;
        current = group_by(combined, &[], &aggs)?;
    } else {
        // Plain pass-through (incl. FUSE FROM without FUSE BY: the aligned
        // outer union itself); `HAVING`/`ORDER BY` below need ownership.
        current = combined.clone();
    }

    // 5. HAVING, then ORDER BY (aliases resolved against the select list).
    if let Some(having) = &query.having {
        let rewritten = rewrite_aliases(having, &alias_map, &current);
        current = filter_rows(&current, &rewritten)?;
    }
    if !query.order_by.is_empty() {
        let keys: Vec<SortKey> = query
            .order_by
            .iter()
            .map(|k| {
                let col = resolve_name(&k.column, &alias_map, &current);
                SortKey {
                    column: col,
                    ascending: k.ascending,
                }
            })
            .collect();
        current = sort(&current, &keys)?;
    }

    // 6. Projection.
    let table = project_select(query, &current)?;
    Ok(QueryOutput {
        table,
        fusion: fusion_info,
    })
}

/// alias (lowercase) → underlying column name.
fn build_alias_map(query: &FuseQuery) -> HashMap<String, String> {
    let mut m = HashMap::new();
    for item in &query.select {
        match item {
            SelectItem::Column {
                name,
                alias: Some(a),
            } => {
                m.insert(a.to_ascii_lowercase(), name.clone());
            }
            SelectItem::Resolve {
                column,
                alias: Some(a),
                ..
            } => {
                m.insert(a.to_ascii_lowercase(), column.clone());
            }
            SelectItem::Aggregate {
                function,
                column,
                alias: Some(a),
            } => {
                m.insert(
                    a.to_ascii_lowercase(),
                    default_agg_name(function, column.as_deref()),
                );
            }
            _ => {}
        }
    }
    m
}

/// Resolve a possibly-aliased name against the current table.
fn resolve_name(name: &str, aliases: &HashMap<String, String>, table: &Table) -> String {
    if table.schema().contains(name) {
        return name.to_string();
    }
    aliases
        .get(&name.to_ascii_lowercase())
        .cloned()
        .unwrap_or_else(|| name.to_string())
}

/// Rewrite column references in an expression through the alias map when
/// the column does not exist in the table directly.
fn rewrite_aliases(expr: &Expr, aliases: &HashMap<String, String>, table: &Table) -> Expr {
    use Expr::*;
    match expr {
        Column(name) => Column(resolve_name(name, aliases, table)),
        Literal(v) => Literal(v.clone()),
        Cmp(op, l, r) => Cmp(
            *op,
            Box::new(rewrite_aliases(l, aliases, table)),
            Box::new(rewrite_aliases(r, aliases, table)),
        ),
        Arith(op, l, r) => Arith(
            *op,
            Box::new(rewrite_aliases(l, aliases, table)),
            Box::new(rewrite_aliases(r, aliases, table)),
        ),
        And(l, r) => And(
            Box::new(rewrite_aliases(l, aliases, table)),
            Box::new(rewrite_aliases(r, aliases, table)),
        ),
        Or(l, r) => Or(
            Box::new(rewrite_aliases(l, aliases, table)),
            Box::new(rewrite_aliases(r, aliases, table)),
        ),
        Not(e) => Not(Box::new(rewrite_aliases(e, aliases, table))),
        IsNull(e) => IsNull(Box::new(rewrite_aliases(e, aliases, table))),
        IsNotNull(e) => IsNotNull(Box::new(rewrite_aliases(e, aliases, table))),
        Like(e, p) => Like(Box::new(rewrite_aliases(e, aliases, table)), p.clone()),
        In(e, list) => In(
            Box::new(rewrite_aliases(e, aliases, table)),
            list.iter()
                .map(|i| rewrite_aliases(i, aliases, table))
                .collect(),
        ),
        Call(name, args) => Call(
            name.clone(),
            args.iter()
                .map(|a| rewrite_aliases(a, aliases, table))
                .collect(),
        ),
        Neg(e) => Neg(Box::new(rewrite_aliases(e, aliases, table))),
    }
}

fn default_agg_name(function: &str, column: Option<&str>) -> String {
    match column {
        Some(c) => format!("{function}({c})"),
        None => format!("{function}(*)"),
    }
}

fn collect_aggregates(query: &FuseQuery) -> Result<Vec<Aggregate>> {
    let mut out = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Aggregate {
                function,
                column,
                alias,
            } => {
                let func = match (function.as_str(), column) {
                    ("count", None) => AggFunc::CountAll,
                    (name, _) => AggFunc::parse(name).ok_or_else(|| {
                        QueryError::Semantic(format!("unknown aggregate `{name}`"))
                    })?,
                };
                let alias = alias
                    .clone()
                    .unwrap_or_else(|| default_agg_name(function, column.as_deref()));
                out.push(Aggregate::new(
                    func,
                    column.clone().unwrap_or_default(),
                    alias,
                ));
            }
            SelectItem::Resolve { .. } => {
                return Err(QueryError::Semantic(
                    "RESOLVE requires FUSE BY, not GROUP BY".into(),
                ))
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Apply the select list to the post-fusion/grouping table.
fn project_select(query: &FuseQuery, table: &Table) -> Result<Table> {
    // Pure wildcard on a plain query: keep everything.
    if query.select.len() == 1
        && matches!(query.select[0], SelectItem::Wildcard)
        && !query.is_fusion()
    {
        return Ok(table.clone());
    }
    let mut columns: Vec<(String, Expr)> = Vec::new();
    // `*` skips columns already selected explicitly (SQL would emit
    // duplicate column names; our schemas require uniqueness).
    let explicit: Vec<String> = query
        .select
        .iter()
        .filter_map(|i| match i {
            SelectItem::Column { name, alias }
            | SelectItem::Resolve {
                column: name,
                alias,
                ..
            } => Some(
                alias
                    .clone()
                    .unwrap_or_else(|| short_name(name))
                    .to_ascii_lowercase(),
            ),
            _ => None,
        })
        .collect();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                for name in table.schema().names() {
                    if query.is_fusion() && BOOKKEEPING.iter().any(|b| b.eq_ignore_ascii_case(name))
                    {
                        continue;
                    }
                    if explicit.contains(&name.to_ascii_lowercase()) {
                        continue;
                    }
                    columns.push((name.to_string(), Expr::col(name)));
                }
            }
            SelectItem::Column { name, alias } => {
                let out_name = alias.clone().unwrap_or_else(|| short_name(name));
                columns.push((out_name, Expr::col(name.clone())));
            }
            SelectItem::Resolve { column, alias, .. } => {
                let out_name = alias.clone().unwrap_or_else(|| short_name(column));
                columns.push((out_name, Expr::col(column.clone())));
            }
            SelectItem::Aggregate {
                function,
                column,
                alias,
            } => {
                let name = alias
                    .clone()
                    .unwrap_or_else(|| default_agg_name(function, column.as_deref()));
                columns.push((name.clone(), Expr::col(name)));
            }
        }
    }
    hummer_engine::ops::project(table, &columns).map_err(QueryError::from)
}

/// Strip a table qualifier for output naming (`A.Name` → `Name`).
fn short_name(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((_, tail)) => tail.to_string(),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSet;
    use hummer_engine::table;

    fn catalog() -> TableSet {
        let mut c = TableSet::new();
        c.add(table! {
            "EE_Student" => ["Name", "Age"];
            ["Alice", 22],
            ["Bob", 24],
            ["Carol", 21],
        });
        c.add(table! {
            "CS_Students" => ["Name", "Age", "Semester"];
            ["Alice", 23, 5],
            ["Dora", 19, 1],
        });
        c
    }

    fn run(sql: &str) -> QueryOutput {
        run_query(sql, &catalog(), &FunctionRegistry::standard()).unwrap()
    }

    #[test]
    fn paper_example_executes() {
        // "This statement fuses data on EE- and CS Students, leaving just
        // one tuple per student [...] conflicts in the age [...] resolved by
        // taking the higher age."
        let out =
            run("SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        assert_eq!(out.table.schema().names(), vec!["Name", "Age"]);
        assert_eq!(out.table.len(), 4); // Alice, Bob, Carol, Dora
        let alice = out
            .table
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("Alice"))
            .unwrap();
        assert_eq!(alice[1], Value::Int(23)); // max(22, 23)
        let info = out.fusion.expect("fusion info present");
        assert!(info.conflict_count >= 1);
    }

    #[test]
    fn wildcard_expands_without_bookkeeping() {
        let out = run("SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        assert_eq!(out.table.schema().names(), vec!["Name", "Age", "Semester"]);
    }

    #[test]
    fn fuse_from_is_outer_union_not_cross_product() {
        let out = run("SELECT * FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        assert_eq!(out.table.len(), 4); // not 3 × 2
    }

    #[test]
    fn default_resolution_is_coalesce() {
        let out =
            run("SELECT Name, RESOLVE(Semester) FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        let alice = out
            .table
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("Alice"))
            .unwrap();
        // EE row has NULL semester (column absent there), CS supplies 5.
        assert_eq!(alice[1], Value::Int(5));
    }

    #[test]
    fn where_applies_before_fusion() {
        let out = run(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students \
             WHERE Age >= 22 FUSE BY (Name)",
        );
        // Dora (19) and Carol (21) are filtered before fusion.
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn having_and_order_by() {
        let out = run("SELECT Name, RESOLVE(Age, max) AS oldest \
             FUSE FROM EE_Student, CS_Students FUSE BY (Name) \
             HAVING oldest > 20 ORDER BY oldest DESC");
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.table.cell(0, 0), &Value::text("Bob")); // 24
        assert_eq!(out.table.cell(1, 0), &Value::text("Alice")); // 23
        assert_eq!(out.table.schema().names(), vec!["Name", "oldest"]);
    }

    #[test]
    fn choose_source_resolution() {
        let out = run("SELECT Name, RESOLVE(Age, choose('CS_Students')) \
             FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        let alice = out
            .table
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("Alice"))
            .unwrap();
        assert_eq!(alice[1], Value::Int(23));
    }

    #[test]
    fn plain_select_where_order() {
        let out = run("SELECT Name FROM EE_Student WHERE Age > 21 ORDER BY Name");
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.table.cell(0, 0), &Value::text("Alice"));
        assert!(out.fusion.is_none());
    }

    #[test]
    fn plain_group_by_aggregation() {
        let mut c = catalog();
        c.add(table! {
            "Sales" => ["Region", "Amount"];
            ["n", 10], ["s", 20], ["n", 30],
        });
        let out = run_query(
            "SELECT Region, sum(Amount) AS total, count(*) AS n FROM Sales \
             GROUP BY Region HAVING total > 15 ORDER BY total DESC",
            &c,
            &FunctionRegistry::standard(),
        )
        .unwrap();
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.table.cell(0, 1), &Value::Int(40));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let out = run("SELECT count(*) AS n, avg(Age) FROM EE_Student");
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.table.cell(0, 0), &Value::Int(3));
    }

    #[test]
    fn cross_product_from_multiple_tables() {
        let out =
            run("SELECT * FROM EE_Student, CS_Students WHERE EE_Student.Name = CS_Students.Name");
        assert_eq!(out.table.len(), 1); // only Alice joins
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = run_query(
            "SELECT * FROM Nope",
            &catalog(),
            &FunctionRegistry::standard(),
        );
        assert!(matches!(e, Err(QueryError::UnknownTable(_))));
    }

    #[test]
    fn unknown_resolution_function_is_reported() {
        let e = run_query(
            "SELECT RESOLVE(Age, frobnicate) FUSE FROM EE_Student FUSE BY (Name)",
            &catalog(),
            &FunctionRegistry::standard(),
        );
        assert!(matches!(e, Err(QueryError::Fusion(_))));
    }

    #[test]
    fn resolve_with_group_by_is_semantic_error() {
        let e = run_query(
            "SELECT RESOLVE(Age, max) FROM EE_Student GROUP BY Name",
            &catalog(),
            &FunctionRegistry::standard(),
        );
        assert!(matches!(e, Err(QueryError::Semantic(_))));
    }

    #[test]
    fn fuse_from_without_fuse_by_returns_outer_union() {
        let out = run("SELECT * FUSE FROM EE_Student, CS_Students");
        assert_eq!(out.table.len(), 5); // all rows, aligned
        assert!(out.fusion.is_none());
    }

    #[test]
    fn fusion_lineage_exposed() {
        let out =
            run("SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)");
        let info = out.fusion.unwrap();
        assert_eq!(info.fused_table.len(), 4);
        assert!(info.lineage.conflict_count() >= 1);
        assert!(!info.sample_conflicts.is_empty());
        assert!(info
            .sample_conflicts
            .iter()
            .any(|c| c.column == "Age" && c.values.contains(&"22".to_string())));
    }

    #[test]
    fn execute_combined_accepts_prematerialized_union() {
        // A serving layer materializes the sourceID-tagged union (plus an
        // objectID annotation) once and replays queries against it.
        let q = parse(
            "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)",
        )
        .unwrap();
        let c = catalog();
        let tables: Vec<Table> = vec![
            c.table("EE_Student").unwrap().clone(),
            c.table("CS_Students").unwrap().clone(),
        ];
        let mut combined = combine_tables(&q, &tables).unwrap();
        combined
            .add_column(
                hummer_engine::Column::new("objectID", ColumnType::Int),
                |i, _| Value::Int(i as i64),
            )
            .unwrap();
        let out = execute_combined(&q, &combined, &FunctionRegistry::standard()).unwrap();
        assert_eq!(out.table.len(), 4);
        // objectID stays out of the projection.
        assert_eq!(out.table.schema().names(), vec!["Name", "Age"]);
    }

    #[test]
    fn combine_tables_rejects_empty() {
        let q = parse("SELECT * FROM EE_Student").unwrap();
        assert!(matches!(
            combine_tables(&q, &[]),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn vote_resolution_over_three_sources() {
        let mut c = TableSet::new();
        c.add(table! { "A" => ["K", "V"]; ["k", "x"] });
        c.add(table! { "B" => ["K", "V"]; ["k", "y"] });
        c.add(table! { "C" => ["K", "V"]; ["k", "y"] });
        let out = run_query(
            "SELECT K, RESOLVE(V, vote) FUSE FROM A, B, C FUSE BY (K)",
            &c,
            &FunctionRegistry::standard(),
        )
        .unwrap();
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.table.cell(0, 1), &Value::text("y"));
    }
}
